//! # hetero-contention
//!
//! A reproduction of *"Modeling the Effects of Contention on the
//! Performance of Heterogeneous Applications"* (Figueira & Berman,
//! HPDC 1996) as a Rust workspace:
//!
//! * [`model`] (crate `contention-model`) — the paper's analytical
//!   contention model: slowdown factors for non-dedicated two-machine
//!   heterogeneous platforms;
//! * [`simcore`] — a deterministic discrete-event kernel;
//! * [`hetplat`] — simulated Sun/CM2 and Sun/Paragon platforms (the
//!   substrate standing in for the 1996 hardware);
//! * [`hetload`] — kernels, benchmarks, and contention generators;
//! * [`calibration`] — the system test suite producing the model's
//!   system-dependent parameters;
//! * [`hetsched`] — contention-aware task allocation;
//! * [`experiments`] — regeneration of every table and figure.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use calibration;
pub use contention_model as model;
pub use experiments;
pub use hetload;
pub use hetplat;
pub use hetsched;
pub use simcore;

/// One-stop imports for applications.
pub mod prelude {
    pub use calibration::{
        calibrate_cm2, calibrate_paragon, Cm2CalibrationSpec, DelaySpec, PingPongSpec,
    };
    pub use contention_model::prelude::*;
    pub use hetload::prelude::*;
    pub use hetplat::prelude::*;
    pub use hetsched::prelude::*;
    pub use simcore::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compile() {
        use crate::prelude::*;
        let mix = WorkloadMix::from_fracs(&[0.25, 0.76]);
        assert_eq!(mix.p(), 2);
        let _cfg = PlatformConfig::sun_cm2();
        assert_eq!(cm2_slowdown(3).get(), 4.0);
    }
}
