//! Minimal offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`, and
//! the `prop_assert*` macros. Case generation is deterministic (fixed
//! ChaCha8 seed per test function); failing inputs are reported but NOT
//! shrunk.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategies!(A);
    tuple_strategies!(A, B);
    tuple_strategies!(A, B, C);
    tuple_strategies!(A, B, C, D);
    tuple_strategies!(A, B, C, D, E);
    tuple_strategies!(A, B, C, D, E, F);
    tuple_strategies!(A, B, C, D, E, F, G);
    tuple_strategies!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with `size` in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy drawing uniformly from a fixed list of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly at random.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    /// Deterministic generator behind all strategies.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Run-time configuration for one `proptest!` function.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to generate and check.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The input was rejected by `prop_assume!`; not counted as failure.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Drives a strategy through `config.cases` checks.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed seed so test runs are reproducible.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config, rng: TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15) }
        }

        /// Checks `test` against freshly generated inputs. Returns a message
        /// describing the first failing case, if any.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let repr = format!("{value:?}");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                match outcome {
                    Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
                    Ok(Err(TestCaseError::Fail(msg))) => {
                        return Err(format!("proptest case {case} failed: {msg}\n  input: {repr}"));
                    }
                    Err(payload) => {
                        eprintln!("proptest case {case} panicked\n  input: {repr}");
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirroring the real crate's `prop::` alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property-test functions. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            let result = runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
            if let Err(msg) = result {
                panic!("{}", msg);
            }
        }
    )*};
}

/// Fails the current case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `(left != right)`\n  both: {:?}", l);
    }};
}

/// Rejects the current case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and multiple args parse.
        fn vec_lengths_respect_range(
            v in prop::collection::vec(0.0f64..=1.0, 2..5),
            k in prop::sample::select(vec![10u64, 20, 30]),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert!(k % 10 == 0);
            prop_assert_eq!(k % 10, 0);
        }
    }

    proptest! {
        fn tuples_and_ranges(pair in (1u32..5, 0.5f64..2.0), n in 0usize..3) {
            prop_assert!(pair.0 >= 1 && pair.0 < 5);
            prop_assert!(pair.1 >= 0.5 && pair.1 < 2.0);
            prop_assert!(n < 3);
        }
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(16));
        let result = runner.run(&(0u32..10,), |(x,)| {
            if x < 100 {
                return Err(crate::test_runner::TestCaseError::fail("always"));
            }
            Ok(())
        });
        let msg = result.unwrap_err();
        assert!(msg.contains("always"), "{msg}");
        assert!(msg.contains("input:"), "{msg}");
    }
}
