//! Minimal offline stand-in for `rand_chacha` (see `vendor/README.md`).
//!
//! Implements a genuine ChaCha8 block function behind the vendored
//! [`rand::RngCore`]/[`rand::SeedableRng`] traits, including the 64-bit
//! `set_stream` selector. The byte stream is deterministic per
//! (seed, stream) pair but is not guaranteed to match the real
//! `rand_chacha` crate's output.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds: fast, statistically strong, seekable streams.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects one of 2^64 independent streams for the same key.
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            // Restart output from the current counter on the new stream.
            self.index = 16;
        }
    }

    /// Returns the current stream selector.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let input = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }

        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, stream: 0, buf: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_of_values() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
        // Re-selecting the same stream is a no-op.
        let mut c = ChaCha8Rng::seed_from_u64(7);
        c.set_stream(0);
        assert_eq!(a.get_stream(), 0);
        let mut a2 = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(a2.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_block_changes_every_refill() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn uniformish_f64() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
