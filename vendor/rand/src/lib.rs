//! Minimal offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides the trait surface this workspace consumes: [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension with `gen`, `gen_range`,
//! and `gen_bool`. Distributions are uniform; there is no `thread_rng`.

use std::ops::{Range, RangeInclusive};

/// Core interface for random number generators.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, like the real crate.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Values samplable uniformly from all bit patterns (the `Standard`
/// distribution in the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`. Panics on empty ranges.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // 53 uniform bits in [0, 1], endpoints included.
                let unit = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(1..=3);
            assert!((1..=3).contains(&a));
            let b = rng.gen_range(0.2f64..2.0);
            assert!((0.2..2.0).contains(&b));
            let c = rng.gen_range(100..=600u64);
            assert!((100..=600).contains(&c));
            let u: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
