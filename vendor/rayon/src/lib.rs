//! Minimal offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! Covers the surface this workspace uses: `into_par_iter()` /
//! `par_iter()` producing an iterator with `map(...).collect()`, plus
//! [`join`]. The implementation is eager — `collect` splits the items
//! into contiguous chunks, runs one scoped thread per chunk, and
//! re-concatenates in order, so results are deterministic and identical
//! to the sequential order. There is no work-stealing or lazy adaptor
//! chaining beyond a single `map`.

use std::num::NonZeroUsize;

/// Number of worker threads used for a batch of `n` items.
fn thread_count(n: usize) -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(n).max(1)
}

/// Applies `f` to every item on a pool of scoped threads, preserving order.
fn par_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = thread_count(n);
    let chunk_size = n.div_ceil(threads);

    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }

    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("rayon stand-in worker panicked"));
        }
        out
    })
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon stand-in join arm panicked"))
    })
}

/// A materialized sequence of items awaiting a parallel `map`.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Chains a per-item transform, applied in parallel at `collect` time.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> Map<T, F> {
        Map { items: self.items, f }
    }

    /// Collects the items unchanged.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A pending parallel map over materialized items.
pub struct Map<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> Map<T, F> {
    /// Runs the map across threads and gathers results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator, mirroring rayon's trait.
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Materializes `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par!(usize, u32, u64, i32, i64);

/// Borrowing conversion: `v.par_iter()` over slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced by the iterator (a shared reference).
    type Item: Send + 'a;

    /// Materializes shared references into a [`ParIter`].
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<u64> = (0u64..1000).map(|i| i * i).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn par_iter_borrows() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(none.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
