//! Minimal offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the API surface used by `crates/bench`: `Criterion` with
//! `warm_up_time`/`measurement_time`/`sample_size`, `bench_function`,
//! `benchmark_group` (+ `bench_with_input`, `finish`), `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Timing is a plain `Instant` loop: warm up, pick an iteration count,
//! take samples, report mean and minimum ns/iter to stdout. There is no
//! statistical analysis, HTML report, or saved baseline.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Default)]
struct CliOpts {
    /// `cargo test --benches` passes `--test`: run each routine once.
    test_mode: bool,
    /// First free argument: substring filter on benchmark names.
    filter: Option<String>,
}

static CLI: OnceLock<CliOpts> = OnceLock::new();

fn cli() -> &'static CliOpts {
    CLI.get_or_init(|| {
        let mut opts = CliOpts::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                opts.test_mode = true;
            } else if arg.starts_with('-') {
                // --bench and friends: accepted, ignored.
            } else if opts.filter.is_none() {
                opts.filter = Some(arg);
            }
        }
        opts
    })
}

/// Identifier for one benchmark: either a plain name or `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{function}/{parameter}") }
    }

    /// Uses just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { full: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { full: name }
    }
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets how many timing samples to take.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark routine.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.into().full;
        self.run_one(&name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    fn run_one(&self, name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &cli().filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size,
            test_mode: cli().test_mode,
            report: None,
        };
        f(&mut b);
        match b.report {
            _ if cli().test_mode => println!("{name:<56} ... ok (test mode)"),
            Some(r) => println!(
                "{name:<56} time: {:>10}  (min {:>10}, {} samples x {} iters)",
                format_ns(r.mean_ns),
                format_ns(r.min_ns),
                r.samples,
                r.iters_per_sample,
            ),
            None => println!("{name:<56} ... no measurement (b.iter never called)"),
        }
    }
}

/// Summary of one benchmark's measurement.
#[derive(Clone, Copy, Debug)]
struct Report {
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of benchmarks sharing a name prefix and optional sample override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a routine registered under `group_name/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().full);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, samples, f);
        self
    }

    /// Runs a routine that borrows a fixed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (No-op; provided for API compatibility.)
    pub fn finish(self) {}
}

/// Passed to each routine; `iter` times the supplied closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Split the measurement budget into `sample_size` samples.
        let sample_budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);

        let mut total = Duration::ZERO;
        let mut min_sample = Duration::MAX;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            min_sample = min_sample.min(elapsed);
        }

        let denom = (self.sample_size as u64 * iters_per_sample) as f64;
        self.report = Some(Report {
            mean_ns: total.as_nanos() as f64 / denom,
            min_ns: min_sample.as_nanos() as f64 / iters_per_sample as f64,
            samples: self.sample_size,
            iters_per_sample,
        });
    }
}

/// Bundles benchmark routines under one function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3)
    }

    #[test]
    fn bench_function_measures() {
        let mut c = fast_config();
        c.bench_function("unit/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    #[test]
    fn groups_and_ids() {
        let mut c = fast_config();
        let mut g = c.benchmark_group("unit/group");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert!(format_ns(1_500.0).contains("\u{b5}s"));
        assert!(format_ns(2_500_000.0).contains("ms"));
        assert!(format_ns(3_000_000_000.0).ends_with(" s"));
    }
}
