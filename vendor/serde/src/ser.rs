//! The `Serialize` trait and impls for std types.

use crate::value::Value;

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
