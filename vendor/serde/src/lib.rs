//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small API-compatible subset of the crates it needs (see
//! `vendor/README.md`). This crate keeps the parts of serde the workspace
//! actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums without
//!   generics or field attributes;
//! * `serde_json::{to_string, to_string_pretty, from_str}` round-trips.
//!
//! Instead of serde's visitor architecture, everything funnels through a
//! self-describing [`value::Value`] tree: `Serialize` renders a value into
//! the tree, `Deserialize` reads one back out. The JSON encoding produced
//! by the companion `serde_json` stand-in matches real serde_json for the
//! shapes used here (externally tagged enums, transparent newtypes), so
//! artifacts written by this implementation stay readable if the real
//! crates are ever restored.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::Value;

// Derive macros, same names as the traits (resolved by namespace, exactly
// like real serde).
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}
