//! The `Deserialize` trait and impls for std types.

use crate::value::Value;
use crate::Error;

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err(expected: &str, got: &Value) -> Error {
    Error::msg(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| type_err("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64().ok_or_else(|| type_err("unsigned integer", v))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let u = u64::from_value(v)?;
        usize::try_from(u).map_err(|_| Error::msg("integer out of range"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| type_err("number", v))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(type_err("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(type_err("string", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(type_err("array", v)),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(type_err("2-element array", v)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(type_err("3-element array", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}
