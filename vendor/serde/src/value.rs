//! The self-describing value tree both traits funnel through.

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// A `Value` serializes to itself, so hand-built trees can be passed to
/// any sink that accepts `impl Serialize` (e.g. `serde_json::to_string`).
impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// A `Value` deserializes from itself (identity), mirroring the
/// `Serialize` impl.
impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, crate::Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_and_coercions() {
        let v = Value::Map(vec![("a".into(), Value::Int(3)), ("b".into(), Value::Float(2.5))]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("a").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_u64(), None);
        assert!(v.get("c").is_none());
    }
}
