//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The real serde_derive depends on `syn`/`quote`, which are unavailable
//! offline, so this macro parses the derive input with a small hand-rolled
//! cursor over `proc_macro::TokenTree` and emits the impls as formatted
//! source strings. Supported shapes — everything this workspace derives:
//!
//! * structs with named fields, tuple structs (newtypes serialize
//!   transparently, like serde), unit structs;
//! * enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, like serde's default).
//!
//! Generic types and `#[serde(...)]` field attributes are intentionally
//! unsupported and fail with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item).parse().expect("generated impl must parse")
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item).parse().expect("generated impl must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attributes (including doc comments) and visibility.
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next(); // '#'
                    self.next(); // the [...] group
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    self.next(); // 'pub'
                    if let Some(TokenTree::Group(g)) = self.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            self.next(); // '(crate)' etc.
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }
}

fn parse(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs_and_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in: generic types are not supported (type `{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: expected struct or enum, got `{other}`"),
    }
}

/// Parses `name: Type, ...` out of a brace group, skipping attributes,
/// visibility, and type tokens (commas inside `<...>` don't split fields).
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        if c.peek().is_none() {
            break;
        }
        fields.push(c.expect_ident());
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        skip_type(&mut c);
    }
    fields
}

/// Consumes type tokens up to (and including) the next top-level comma.
fn skip_type(c: &mut Cursor) {
    let mut angle_depth = 0i32;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0usize;
    loop {
        c.skip_attrs_and_vis();
        if c.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut c);
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.next();
                Fields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                c.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        // Consume the trailing comma (discriminants like `= 3` unsupported).
        match c.next() {
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, fields });
            }
            other => panic!("serde_derive: unexpected token after variant: {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::ser::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::value::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::ser::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::ser::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::value::Value::Seq(::std::vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::value::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::value::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::value::Value::Map(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::ser::Serialize::to_value(f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::ser::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::value::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::value::Value::Seq(::std::vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::ser::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::value::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::value::Value::Map(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::ser::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn named_fields_ctor(path: &str, fields: &[String], src: &str, ctx: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::de::Deserialize::from_value({src}.get({f:?})\
                 .ok_or_else(|| ::serde::Error::msg(\
                 concat!(\"missing field `\", {f:?}, \"` in \", {ctx:?})))?)?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn tuple_ctor(path: &str, n: usize, items: &str) -> String {
    let inits: Vec<String> =
        (0..n).map(|i| format!("::serde::de::Deserialize::from_value(&{items}[{i}])?")).collect();
    format!("{path}({})", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let ctor = named_fields_ctor(name, fs, "v", name);
                    format!("::std::result::Result::Ok({ctor})")
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::de::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => format!(
                    "match v {{\n\
                         ::serde::value::Value::Seq(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({ctor}),\n\
                         other => ::std::result::Result::Err(::serde::Error::msg(\
                             format!(\"expected {n}-element array for {name}, found {{}}\", \
                             other.kind()))),\n\
                     }}",
                    ctor = tuple_ctor(name, *n, "items"),
                ),
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::de::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{})", v.name, v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    let body = match &v.fields {
                        Fields::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{vn}(\
                             ::serde::de::Deserialize::from_value(inner)?))"
                        ),
                        Fields::Tuple(n) => format!(
                            "match inner {{\n\
                                 ::serde::value::Value::Seq(items) if items.len() == {n} => \
                                     ::std::result::Result::Ok({ctor}),\n\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     format!(\"expected {n}-element array for {name}::{vn}, \
                                     found {{}}\", other.kind()))),\n\
                             }}",
                            ctor = tuple_ctor(&format!("{name}::{vn}"), *n, "items"),
                        ),
                        Fields::Named(fs) => {
                            let ctor = named_fields_ctor(
                                &format!("{name}::{vn}"),
                                fs,
                                "inner",
                                &format!("{name}::{vn}"),
                            );
                            format!("::std::result::Result::Ok({ctor})")
                        }
                        Fields::Unit => unreachable!(),
                    };
                    format!(
                        "if let ::std::option::Option::Some(inner) = v.get({vn:?}) {{ {body} }}"
                    )
                })
                .collect();
            let str_arm = format!(
                "::serde::value::Value::Str(s) => match s.as_str() {{\n\
                     {unit},\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    format!(
                        "_unreachable if false => ::std::result::Result::Err(\
                         ::serde::Error::msg(::std::string::String::from(\"no unit variants in {name}\")))"
                    )
                } else {
                    unit_arms.join(",\n")
                },
            );
            let map_arm = format!(
                "::serde::value::Value::Map(_) => {{\n\
                     {payload} {{ ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::string::String::from(\"unknown payload variant of {name}\"))) }}\n\
                 }}",
                payload =
                    payload_arms.iter().map(|a| format!("{a} else ")).collect::<Vec<_>>().join(""),
            );
            format!(
                "impl ::serde::de::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             {str_arm},\n\
                             {map_arm},\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"expected variant of {name}, found {{}}\", \
                                 other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
