//! Minimal offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Supports the workspace's usage: `to_string`, `to_string_pretty`, and
//! `from_str` over types deriving the vendored serde traits. The encoding
//! matches real serde_json for the shapes used in this repository.

use serde::value::Value;
use serde::{Deserialize, Serialize};

pub use serde::Error;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as compact JSON appended to `out`, reusing the
/// caller's buffer instead of allocating a fresh `String` per call —
/// the hot-path variant servers use to build newline-delimited replies.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) {
    write_value(out, &value.to_value(), None, 0);
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    use std::fmt::Write as _;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip Display, written straight into
                // `out`; force a fraction so the value re-parses as a float.
                let start = out.len();
                let _ = write!(out, "{f}");
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json rejects non-finite floats; emit null like its
                // lossy writers do.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_seq(out, items.iter(), items.len(), indent, depth, ('[', ']'), |o, it, d| {
                write_value(o, it, indent, d)
            })
        }
        Value::Map(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, it), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, it, indent, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    // Copy clean runs wholesale; only escape characters go through the
    // per-char match.
    let mut rest = s;
    while let Some(idx) = rest.find(|c: char| matches!(c, '"' | '\\') || (c as u32) < 0x20) {
        out.push_str(&rest[..idx]);
        let c = rest[idx..].chars().next().expect("found above");
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
        }
        rest = &rest[idx + c.len_utf8()..];
    }
    out.push_str(rest);
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        // Fast path: most strings have no escapes, so scan straight to
        // the closing quote and copy the slice in one shot (validating
        // its UTF-8 exactly once). Fall back to the escape-aware loop
        // from the first backslash onward.
        let start = self.pos;
        let mut i = self.pos;
        while let Some(&b) = self.bytes.get(i) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..i])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    self.pos = i + 1;
                    return Ok(s.to_string());
                }
                b'\\' => break,
                _ => i += 1,
            }
        }
        let mut out = String::from(
            std::str::from_utf8(&self.bytes[start..i]).map_err(|_| Error::msg("invalid UTF-8"))?,
        );
        self.pos = i;
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole clean run up to the next quote or
                    // escape in one validated push.
                    let run = self.pos;
                    let mut j = self.pos;
                    while let Some(&b) = self.bytes.get(j) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        j += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[run..j])
                            .map_err(|_| Error::msg("invalid UTF-8"))?,
                    );
                    self.pos = j;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&3.5f64).unwrap(), "3.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1.0f64, 2.5], vec![]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1.0,2.5],[]]");
        assert_eq!(from_str::<Vec<Vec<f64>>>(&s).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn pretty_indents() {
        let s = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_and_escapes_parse() {
        assert_eq!(from_str::<String>(r#""A\té""#).unwrap(), "A\té");
        assert_eq!(to_string(&"\u{1}".to_string()).unwrap(), "\"\\u0001\"");
    }
}
