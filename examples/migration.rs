//! Task migration under changing load (the paper's §4 future work).
//!
//! A long solve is running on the front-end when a batch of CPU-bound
//! jobs arrives. The migration module weighs finishing in place (slowed
//! by the new mix, possibly until the batch departs) against paying a
//! state transfer to continue on the idle back-end. The load profiles
//! come from the phased extension; the slowdown factors from the base
//! model.
//!
//! ```text
//! cargo run --example migration
//! ```

use hetero_contention::model::phased::cm2_timeline;
use hetero_contention::prelude::*;
use hetsched::migrate::{decide, InFlightTask, MigrationDecision};

fn main() {
    // The task was placed locally while the machine was idle. Halfway
    // through, 3 CPU-bound jobs arrive and are expected to run for a
    // while (the resource manager knows the batch queue, as the paper
    // assumes).
    let remaining_local = 30.0; // dedicated seconds left here
    let remaining_remote = 9.0; // the back-end algorithm is faster
                                // Migration ships a 2 M-word state over the link.
    let link = LinearCommModel::new(secs(1.6e-3), BytesPerSec::from_words_per_sec(79_000.0));
    let migration_cost = link.dcomm(&[DataSet::burst(2_000, 1_000)]).get();

    println!("remaining work: {remaining_local:.0}s local / {remaining_remote:.0}s remote");
    println!("migration cost: {migration_cost:.1}s\n");
    println!(
        "{:<44} {:>10} {:>10}  verdict",
        "scenario (hog batch on the front-end)", "stay", "migrate"
    );

    let scenarios: Vec<(&str, LoadTimeline)> = vec![
        ("no contention", LoadTimeline::dedicated()),
        ("3 hogs, indefinitely", cm2_timeline(&[(Seconds::INFINITY, 3)])),
        ("3 hogs for 10s, then idle", cm2_timeline(&[(secs(10.0), 3), (Seconds::INFINITY, 0)])),
        ("3 hogs for 60s, then idle", cm2_timeline(&[(secs(60.0), 3), (Seconds::INFINITY, 0)])),
        (
            "load ramps: 1 hog 10s, 3 hogs 20s, idle",
            cm2_timeline(&[(secs(10.0), 1), (secs(20.0), 3), (Seconds::INFINITY, 0)]),
        ),
    ];

    let remote = LoadTimeline::dedicated(); // the back-end partition is ours
    for (what, here) in scenarios {
        let task = InFlightTask {
            remaining_here: remaining_local,
            remaining_there: remaining_remote,
            migration_cost,
        };
        let stay = here.completion_time(secs(task.remaining_here), Seconds::ZERO).get();
        let mig = task.migration_cost
            + remote.completion_time(secs(task.remaining_there), secs(task.migration_cost)).get();
        let d = decide(&task, &here, &remote);
        let verdict = match d {
            MigrationDecision::Stay { .. } => "stay",
            MigrationDecision::Migrate { .. } => "MIGRATE",
        };
        println!("{what:<44} {stay:>9.1}s {mig:>9.1}s  {verdict}");
    }
}
