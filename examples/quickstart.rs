//! Quickstart: the contention model in five minutes.
//!
//! Builds predictors from hand-set parameters (no simulation) and shows
//! how contention flips an off-load decision — the paper's core story.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hetero_contention::prelude::*;

/// A linear model from `(alpha seconds, beta words/sec)`.
fn linear(alpha: f64, beta_words_per_sec: f64) -> LinearCommModel {
    LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_words_per_sec))
}

fn main() {
    // -- Sun/CM2 ---------------------------------------------------------
    // Dedicated transfer models (α in seconds, β in words/second) — in a
    // real deployment these come from `calibration::calibrate_cm2`.
    let cm2 =
        Cm2Predictor { comm_to: linear(500e-6, 500_000.0), comm_from: linear(800e-6, 250_000.0) };

    // A task: 30 s on the workstation, or 4 s of CM2 pipeline plus a
    // 0.5 s serial stream, moving a 600×600 matrix each way.
    let task = Cm2Task {
        costs: Cm2TaskCosts::new(secs(30.0), secs(3.8), secs(0.2), secs(0.5)),
        to_backend: vec![DataSet::matrix_rows(600, 600)],
        from_backend: vec![DataSet::matrix_rows(600, 600)],
    };

    println!("Sun/CM2 off-load decision vs. front-end load:");
    println!("{:>3} {:>10} {:>10} {:>10} {:>10}  verdict", "p", "T_sun", "T_cm2", "C_to", "C_from");
    for p in 0..=5 {
        let d = cm2.decide(&task, p);
        println!(
            "{p:>3} {:>10.2} {:>10.2} {:>10.2} {:>10.2}  {:?}",
            d.t_front, d.t_back, d.c_to, d.c_from, d.placement
        );
    }

    // -- Sun/Paragon -------------------------------------------------------
    // Piecewise dedicated models plus measured delay tables (here made up;
    // `calibration::calibrate_paragon` produces real ones).
    let paragon = ParagonPredictor {
        comm_to: PiecewiseCommModel::new(1024, linear(1.6e-3, 79_000.0), linear(5.6e-3, 104_000.0)),
        comm_from: PiecewiseCommModel::new(
            1024,
            linear(1.5e-3, 149_000.0),
            linear(1.0e-3, 83_000.0),
        ),
        comm_delays: CommDelayTable::new(vec![0.27, 0.61, 1.02], vec![0.19, 0.49, 0.81]),
        comp_delays: CompDelayTable::new(
            vec![1, 500, 1000],
            vec![vec![0.22, 0.37, 0.37], vec![0.66, 1.15, 1.59], vec![1.68, 3.59, 5.52]],
        ),
    };

    // The run-time workload description: two other applications share the
    // front-end, communicating 25% and 76% of the time with 200-word
    // messages. O(p) to extend when another job arrives.
    let mut mix = WorkloadMix::from_fracs(&[0.25, 0.76]);
    let j_words = 200;

    let task = ParagonTask {
        dcomp_sun: secs(12.0),
        t_paragon: secs(1.5),
        to_backend: vec![DataSet::burst(1000, 512)],
        from_backend: vec![DataSet::burst(1000, 512)],
    };
    let d = paragon.decide(&task, &mix, j_words);
    println!("\nSun/Paragon under the 25%/76% mix:");
    println!(
        "  T_sun = {:.2}s, T_p + C = {:.2}s  → {:?}",
        d.t_front,
        d.t_back + d.c_to + d.c_from,
        d.placement
    );

    // A third, communication-heavy job arrives: update in O(p) and re-rank.
    mix.add(prob(0.9));
    let d = paragon.decide(&task, &mix, j_words);
    println!("After a 90%-communication job arrives (p = {}):", mix.p());
    println!(
        "  T_sun = {:.2}s, T_p + C = {:.2}s  → {:?}",
        d.t_front,
        d.t_back + d.c_to + d.c_from,
        d.placement
    );
}
