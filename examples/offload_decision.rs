//! End-to-end Sun/CM2 off-load decision, validated against simulation.
//!
//! The workload is Gaussian elimination (the paper's benchmark; think of
//! the molecular-structure or climate codes the introduction cites). The
//! pipeline is the paper's own:
//!
//! 1. calibrate the dedicated transfer models with the system test suite;
//! 2. decompose the task's dedicated costs (front-end time, CM2 pipeline,
//!    serial stream, data sets);
//! 3. predict `T_sun` vs `T_cm2 + C` under the current load and decide;
//! 4. (here) validate by actually simulating both placements.
//!
//! ```text
//! cargo run --release --example offload_decision
//! ```

use hetero_contention::prelude::*;

fn main() {
    let cfg = {
        let mut c = PlatformConfig::sun_cm2();
        c.frontend = FrontendParams::processor_sharing();
        c
    };
    let seed = 42;

    // 1. System test suite → dedicated transfer models.
    let spec = Cm2CalibrationSpec { bandwidth_elements: 200_000, startup_count: 10_000 };
    let predictor = calibrate_cm2(cfg, spec, seed);
    println!(
        "calibrated: α = {:.1} µs, β_sun = {:.0} w/s, β_cm2 = {:.0} w/s\n",
        predictor.comm_to.alpha * 1e6,
        predictor.comm_to.beta.words_per_sec(),
        predictor.comm_from.beta.words_per_sec()
    );

    let rates = MachineRates::default();
    let params = Cm2ProgramParams::default();

    println!(
        "{:>5} {:>3} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "M", "p", "pred local", "pred offld", "decision", "sim best", "agree"
    );
    for m in [100u64, 200, 300] {
        for p in [0u32, 3] {
            let program = gauss_program(m, &params);

            // 2. Dedicated cost decomposition. The serial/parallel split
            // comes from the program structure; didle from one dedicated
            // simulation (a calibration-time activity).
            let dserial = program.serial_total(cfg.cm2.instr_dispatch).as_secs_f64();
            let dcomp_cm2 = program.parallel_total().as_secs_f64();
            let t_ded = simulate(cfg, seed, cm2_program_app("ge", program.clone()), 0);
            let didle = (t_ded - dcomp_cm2).max(0.0).min(dserial);
            let task = Cm2Task {
                costs: Cm2TaskCosts::new(
                    secs(rates.gauss_sun_demand(m).as_secs_f64()),
                    secs(dcomp_cm2),
                    secs(didle),
                    secs(dserial),
                ),
                to_backend: vec![DataSet::matrix_rows(m, m + 1)],
                from_backend: vec![DataSet::single(m)],
            };

            // 3. Predict and decide.
            let d = predictor.decide(&task, p);
            let pred_local = d.t_front.get();
            let pred_off = (d.t_back + d.c_to + d.c_from).get();

            // 4. Validate: simulate both placements under p hogs.
            let sim_local =
                simulate(cfg, seed ^ m, sun_task_app("local", rates.gauss_sun_demand(m)), p);
            let sim_off = simulate(
                cfg,
                seed ^ m ^ 1,
                cm2_offloaded_task("offld", (m, m + 1), program, (1, m)),
                p,
            );
            let sim_best =
                if sim_local < sim_off { Placement::FrontEnd } else { Placement::BackEnd };
            println!(
                "{m:>5} {p:>3} {pred_local:>12.2} {pred_off:>12.2} {:>10} {:>12.2} {:>10}",
                label(d.placement),
                sim_local.min(sim_off),
                if d.placement == sim_best { "yes" } else { "NO" }
            );
        }
    }
}

fn label(p: Placement) -> &'static str {
    match p {
        Placement::FrontEnd => "local",
        Placement::BackEnd => "offload",
    }
}

/// Simulates one app against `p` CPU hogs; returns its elapsed seconds.
fn simulate(cfg: PlatformConfig, seed: u64, app: ScriptedApp, p: u32) -> f64 {
    let mut plat = Platform::new(cfg, seed);
    for i in 0..p {
        plat.spawn(Box::new(CpuHog::new(format!("hog{i}"))));
    }
    let start = if p == 0 { SimTime::ZERO } else { SimTime::ZERO + SimDuration::from_secs(1) };
    let id = plat.spawn_at(Box::new(app), start);
    plat.run_until_done(id).expect("stalled");
    plat.elapsed(id).expect("finished").as_secs_f64()
}
