//! Contention-aware scheduling as the job mix evolves (Sun/Paragon).
//!
//! A two-task pipeline (preprocess → solve) must be placed on the
//! front-end and the Paragon. Other applications enter and leave the
//! front-end; after every change the slowdown factors are updated — in
//! `O(p)` for an arrival, as the paper prescribes — and the schedule is
//! re-ranked. Watch the best placement flip as the machine loads up.
//!
//! ```text
//! cargo run --release --example adaptive_scheduler
//! ```

use hetero_contention::prelude::*;
use hetsched::adapt::paragon_environment;

fn main() {
    // Calibrated tables would come from `calibrate_paragon`; use
    // representative values so the example runs instantly.
    let comm_delays =
        CommDelayTable::new(vec![0.27, 0.61, 1.02, 1.40], vec![0.19, 0.49, 0.81, 1.10]);
    let comp_delays = CompDelayTable::new(
        vec![1, 500, 1000],
        vec![
            vec![0.22, 0.37, 0.37, 0.37],
            vec![0.66, 1.15, 1.59, 1.90],
            vec![1.68, 3.59, 5.52, 7.00],
        ],
    );

    // The application: preprocess (front-end friendly) feeding a solver
    // (much faster on the Paragon), shipping 1.2 M words between them.
    let comm = Matrix::from_rows(&[vec![0.0, 9.0], vec![10.0, 0.0]]);
    let wf = Workflow::new(vec![
        Task::with_edge("preprocess", vec![8.0, 20.0], comm),
        Task::terminal("solve", vec![60.0, 6.0]),
    ]);

    // The evolving job mix: (event, communication fraction, message words).
    let mut mix = WorkloadMix::new();
    let events: Vec<(&str, f64, u64)> = vec![
        ("job A arrives (20% comm, 100w)", 0.20, 100),
        ("job B arrives (70% comm, 800w)", 0.70, 800),
        ("job C arrives (90% comm, 1000w)", 0.90, 1000),
    ];

    let mut j_words = 1;
    report(&wf, &mix, &comm_delays, &comp_delays, j_words, "machine idle");
    for (what, frac, words) in events {
        mix.add(prob(frac)); // O(p) incremental update
        j_words = j_words.max(words); // paper: j = max message size in use
        report(&wf, &mix, &comm_delays, &comp_delays, j_words, what);
    }

    // Jobs finish in reverse order; the schedule relaxes back.
    while mix.p() > 0 {
        mix.remove(mix.p() - 1);
        report(&wf, &mix, &comm_delays, &comp_delays, j_words, "a job departs");
    }
}

fn report(
    wf: &Workflow,
    mix: &WorkloadMix,
    comm: &CommDelayTable,
    comp: &CompDelayTable,
    j_words: u64,
    what: &str,
) {
    let env = paragon_environment(mix, comm, comp, j_words);
    let best = best_chain_dp(wf, &env);
    let names = ["sun", "paragon"];
    let placed: Vec<String> = wf
        .tasks
        .iter()
        .zip(&best.assignment)
        .map(|(t, &m)| format!("{}→{}", t.name, names[m]))
        .collect();
    println!(
        "p={} | {:<34} | comp ×{:.2} link ×{:.2} | best: {} ({:.1}s)",
        mix.p(),
        what,
        env.comp_slowdown[0],
        env.link_slowdown.get(0, 1),
        placed.join(", "),
        best.makespan
    );
}
