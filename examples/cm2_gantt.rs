//! Visualizing front-end/CM2 interleaving (the paper's Figure 2).
//!
//! Runs a short mixed instruction stream on the simulated Sun/CM2 with
//! tracing enabled and prints an ASCII Gantt chart: `s` = serial
//! instructions on the Sun, `e` = parallel execution on the CM2, `.` =
//! idle. The run also prints the `dserial`/`dcomp`/`didle` decomposition
//! the contention model consumes.
//!
//! ```text
//! cargo run --example cm2_gantt
//! ```

use hetero_contention::prelude::*;

fn main() {
    let ms = SimDuration::from_millis;
    let program = Cm2Program::new(vec![
        Cm2Instr::Serial(ms(20)),
        Cm2Instr::Parallel(ms(30)),
        Cm2Instr::Serial(ms(20)),
        Cm2Instr::Parallel(ms(10)),
        Cm2Instr::Serial(ms(20)),
        Cm2Instr::Parallel(ms(40)), // a reduction the host must wait for
        Cm2Instr::Sync,
        Cm2Instr::Serial(ms(10)),
    ]);

    let mut cfg = PlatformConfig::sun_cm2();
    cfg.frontend = FrontendParams::processor_sharing();

    let mut plat = Platform::new(cfg, 0);
    plat.enable_trace();
    let dserial = program.serial_total(cfg.cm2.instr_dispatch);
    let dcomp = program.parallel_total();
    let id = plat.spawn(Box::new(cm2_program_app("task", program)));
    let end = plat.run_until_done(id).expect("program stalled");

    println!("{}", plat.tracer().render_gantt(72));
    let didle = (end - SimTime::ZERO) - dcomp;
    println!("elapsed      = {end}");
    println!("dserial_cm2  = {dserial}   (front-end serial stream)");
    println!("dcomp_cm2    = {dcomp}   (CM2 execution)");
    println!("didle_cm2    = {didle}   (CM2 idle, always ≤ dserial)");
    println!();
    println!(
        "model: T_cm2(p) = max(dcomp + didle, dserial × (p+1)) → p=3 gives {:.3}s",
        (dcomp + didle).as_secs_f64().max(dserial.as_secs_f64() * 4.0)
    );
}
