//! Integration tests for the §4 future-work extensions working together:
//! time-varying load, memory constraints, migration, and DAG scheduling.

use hetero_contention::model::phased::cm2_timeline;
use hetero_contention::prelude::*;
use hetsched::dag::{Dag, DagTask};
use hetsched::migrate::{decide, InFlightTask, MigrationDecision};

#[test]
fn phased_prediction_matches_simulation_with_timed_hogs() {
    // Hogs during [2s, 8s); probe needs 6s of dedicated work.
    let mut cfg = PlatformConfig::sun_cm2();
    cfg.frontend = FrontendParams::processor_sharing();
    let mut plat = Platform::new(cfg, 3);
    for i in 0..2 {
        plat.spawn_at(
            Box::new(TimedCpuHog::new(
                format!("hog{i}"),
                SimTime::ZERO + SimDuration::from_secs(8),
            )),
            SimTime::ZERO + SimDuration::from_secs(2),
        );
    }
    let probe = plat.spawn(Box::new(sun_task_app("probe", SimDuration::from_secs(6))));
    let actual = plat.run_until_done(probe).expect("stalled").as_secs_f64();

    let timeline = cm2_timeline(&[(secs(2.0), 0), (secs(6.0), 2), (Seconds::INFINITY, 0)]);
    let predicted = timeline.completion_time(secs(6.0), Seconds::ZERO).get();
    let err = (predicted - actual).abs() / actual;
    assert!(err < 0.05, "predicted {predicted:.2} vs actual {actual:.2}");
}

#[test]
fn memory_pressure_changes_the_placement_decision() {
    // A task that would normally stay local gets pushed to the back-end
    // once the front-end's memory is overcommitted.
    let pred = Cm2Predictor {
        comm_to: LinearCommModel::new(secs(1e-3), BytesPerSec::from_words_per_sec(500_000.0)),
        comm_from: LinearCommModel::new(secs(1e-3), BytesPerSec::from_words_per_sec(250_000.0)),
    };
    let task = Cm2Task {
        costs: Cm2TaskCosts::new(secs(10.0), secs(9.5), secs(0.1), secs(0.2)),
        to_backend: vec![DataSet::single(100_000)],
        from_backend: vec![DataSet::single(100_000)],
    };
    let p = 0;
    let base = pred.decide(&task, p);
    assert_eq!(base.placement, Placement::FrontEnd);

    // Resident working sets overflow memory by 60%: paging multiplies the
    // front-end slowdown.
    let mem = MemoryModel::new(8_000_000, 4.0);
    let sets = [9_000_000u64, 3_800_000];
    assert!(!mem.fits(&sets));
    let paged_slowdown = mem.adjust_slowdown(cm2_slowdown(p), &sets);
    let t_front_paged = (task.costs.dcomp_sun * paged_slowdown).get();
    let remote = (base.t_back + base.c_to + base.c_from).get();
    assert!(
        t_front_paged > remote,
        "paged local {t_front_paged:.1}s should exceed remote {remote:.1}s"
    );
}

#[test]
fn migration_decision_consistent_with_phased_predictions() {
    // Validate the migrate module against direct timeline arithmetic.
    let here = cm2_timeline(&[(secs(30.0), 4), (Seconds::INFINITY, 0)]);
    let there = LoadTimeline::dedicated();
    let task = InFlightTask { remaining_here: 12.0, remaining_there: 10.0, migration_cost: 4.0 };
    let d = decide(&task, &here, &there);
    let stay_direct = here.completion_time(secs(12.0), Seconds::ZERO).get();
    let migrate_direct = 4.0 + there.completion_time(secs(10.0), secs(4.0)).get();
    match d {
        MigrationDecision::Stay { finish_in } => {
            assert_eq!(finish_in, stay_direct);
            assert!(stay_direct <= migrate_direct);
        }
        MigrationDecision::Migrate { finish_in } => {
            assert_eq!(finish_in, migrate_direct);
            assert!(migrate_direct < stay_direct);
        }
    }
    // With these numbers migration must win: staying costs 12×5 = 60.
    assert!(matches!(d, MigrationDecision::Migrate { .. }));
}

#[test]
fn dag_scheduler_consumes_model_environments() {
    // A diamond DAG scheduled under a contention-model environment.
    let comm_delays = CommDelayTable::new(vec![0.3, 0.7], vec![0.2, 0.5]);
    let comp_delays = CompDelayTable::new(vec![1, 1000], vec![vec![0.2, 0.4], vec![1.5, 3.0]]);
    let mix = WorkloadMix::from_fracs(&[0.5, 0.5]);
    let env = hetsched::adapt::paragon_environment(&mix, &comm_delays, &comp_delays, 1000);

    let mut comm = Matrix::filled(2, 0.0);
    comm.set(0, 1, 1.0);
    comm.set(1, 0, 1.0);
    let dag = Dag::new(vec![
        DagTask { name: "src".into(), exec: vec![1.0, 2.0], deps: vec![] },
        DagTask { name: "l".into(), exec: vec![6.0, 3.0], deps: vec![(0, comm.clone())] },
        DagTask { name: "r".into(), exec: vec![6.0, 3.0], deps: vec![(0, comm.clone())] },
        DagTask {
            name: "sink".into(),
            exec: vec![1.0, 2.0],
            deps: vec![(1, comm.clone()), (2, comm)],
        },
    ]);
    let (assignment, heft) = dag.schedule_heft(&env);
    let (_, best) = dag.best_exhaustive(&env);
    assert!(heft >= best - 1e-9);
    assert!(heft <= best * 1.3, "heft {heft} vs best {best}");
    // The loaded front-end (slowdown > 2) should repel the heavy tasks.
    assert_eq!(assignment[1], 1);
    assert_eq!(assignment[2], 1);
}

#[test]
fn memory_aware_admission_uses_headroom() {
    let mem = MemoryModel::new(10_000_000, 3.0);
    let resident = [4_000_000u64, 3_000_000];
    let headroom = mem.headroom(&resident);
    assert_eq!(headroom, 3_000_000);
    // Admitting within headroom stays penalty-free; beyond it pages.
    let mut with_ok = resident.to_vec();
    with_ok.push(headroom);
    assert_eq!(mem.paging_multiplier(&with_ok), Slowdown::ONE);
    let mut with_over = resident.to_vec();
    with_over.push(headroom + 5_000_000);
    assert!(mem.paging_multiplier(&with_over) > Slowdown::ONE);
}
