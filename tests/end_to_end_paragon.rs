//! End-to-end Sun/Paragon: calibrate → predict under load → simulate.

use hetero_contention::prelude::*;

fn ps_cfg() -> PlatformConfig {
    let mut c = PlatformConfig::sun_paragon();
    c.frontend = FrontendParams::processor_sharing();
    c
}

fn quick_predictor(cfg: PlatformConfig) -> ParagonPredictor {
    let pingpong =
        PingPongSpec { sizes: vec![1, 64, 256, 512, 768, 1024, 1536, 2048, 4096], burst: 100 };
    let delays = DelaySpec {
        p_max: 2,
        probe_burst: 100,
        probe_sizes: vec![64, 512],
        comp_probe: SimDuration::from_secs(2),
        buckets: vec![1, 500, 1000],
        warmup: SimDuration::from_secs(1),
    };
    calibrate_paragon(cfg, &pingpong, &delays, 23)
}

fn run_probe_with_gens(
    cfg: PlatformConfig,
    probe: ScriptedApp,
    gens: Vec<CommGenerator>,
    seed: u64,
) -> (Platform, simcore::ids::ProcId) {
    let mut plat = Platform::new(cfg, seed);
    for g in gens {
        plat.spawn(Box::new(g));
    }
    let id = plat.spawn_at(Box::new(probe), SimTime::ZERO + SimDuration::from_secs(2));
    plat.run_until_done(id).expect("stalled");
    (plat, id)
}

#[test]
fn dedicated_piecewise_model_is_accurate() {
    let cfg = ps_cfg();
    let pred = quick_predictor(cfg);
    let mix = WorkloadMix::new();
    for words in [100u64, 900, 3000] {
        let sets = [DataSet::burst(100, words)];
        let modeled = pred.comm_cost_to(&sets, &mix).get();
        let (plat, id) = run_probe_with_gens(
            cfg,
            burst_app("probe", 100, words, Direction::ToParagon),
            Vec::new(),
            31 ^ words,
        );
        let actual = plat.phase_time(id, PhaseKind::Send).as_secs_f64();
        let err = (modeled - actual).abs() / actual;
        assert!(err < 0.10, "{words} words: modeled {modeled:.3} actual {actual:.3}");
    }
}

#[test]
fn contended_communication_within_the_papers_stress_band() {
    let cfg = ps_cfg();
    let pred = quick_predictor(cfg);
    let mix = WorkloadMix::from_fracs(&[0.25, 0.76]);
    let gens = || {
        vec![
            CommGenerator::new("g25", 0.25, 200, GenDirection::Alternate, &cfg),
            CommGenerator::new("g76", 0.76, 200, GenDirection::Alternate, &cfg),
        ]
    };
    for words in [100u64, 400] {
        let sets = [DataSet::burst(200, words)];
        let modeled = pred.comm_cost_to(&sets, &mix).get();
        let (plat, id) = run_probe_with_gens(
            cfg,
            burst_app("probe", 200, words, Direction::ToParagon),
            gens(),
            37 ^ words,
        );
        let actual = plat.phase_time(id, PhaseKind::Send).as_secs_f64();
        let err = (modeled - actual).abs() / actual;
        // Paper: 12% typical, ≤30% when contenders communicate heavily.
        assert!(
            err < 0.30,
            "{words} words: modeled {modeled:.3} actual {actual:.3} ({:.0}%)",
            err * 100.0
        );
        // Contention must actually bite (sanity that the scenario works).
        let dedicated = pred.comm_to.dcomm(&sets).get();
        assert!(actual > dedicated * 1.1, "{words} words: no visible contention");
    }
}

#[test]
fn contended_computation_with_size_aware_j_is_accurate() {
    let cfg = ps_cfg();
    let pred = quick_predictor(cfg);
    let mix = WorkloadMix::from_fracs(&[0.5, 0.5]);
    let gens = vec![
        CommGenerator::new("a", 0.5, 500, GenDirection::Alternate, &cfg),
        CommGenerator::new("b", 0.5, 500, GenDirection::Alternate, &cfg),
    ];
    let demand = SimDuration::from_secs(4);
    let modeled = pred.t_sun(secs(demand.as_secs_f64()), &mix, 500).get();
    let (plat, id) = run_probe_with_gens(cfg, sun_task_app("probe", demand), gens, 41);
    let actual = plat.elapsed(id).expect("finished").as_secs_f64();
    let err = (modeled - actual).abs() / actual;
    assert!(err < 0.20, "modeled {modeled:.3} actual {actual:.3} ({:.0}%)", err * 100.0);
    // And the undersized j = 1 must be clearly worse (the paper's point).
    let modeled_j1 = pred.t_sun(secs(demand.as_secs_f64()), &mix, 1).get();
    let err_j1 = (modeled_j1 - actual).abs() / actual;
    assert!(err_j1 > err, "j=1 ({err_j1:.3}) should be worse than j=500 ({err:.3})");
}

#[test]
fn two_hops_path_calibrates_and_predicts() {
    let mut cfg = ps_cfg();
    cfg.paragon.path = CommPath::TwoHops;
    let pingpong = PingPongSpec { sizes: vec![1, 128, 512, 1024, 2048, 4096], burst: 50 };
    let (to, _from) = calibration::calibrate_paragon_comm(cfg, &pingpong, 3);
    let mix = WorkloadMix::new();
    let sets = [DataSet::burst(50, 700)];
    let modeled = contention_model::paragon::comm_cost(
        to.dcomm(&sets),
        &mix,
        &CommDelayTable::new(vec![], vec![]),
    )
    .get();
    let (plat, id) =
        run_probe_with_gens(cfg, burst_app("probe", 50, 700, Direction::ToParagon), Vec::new(), 51);
    let actual = plat.phase_time(id, PhaseKind::Send).as_secs_f64();
    let err = (modeled - actual).abs() / actual;
    assert!(err < 0.10, "modeled {modeled:.3} actual {actual:.3}");
}

#[test]
fn slowdown_recomputation_is_fast_enough_for_scheduling() {
    // The paper stresses that the run-time slowdown calculation must be
    // cheap. Guard the complexity: 10k full evaluations at p = 8 well
    // under a second even in debug builds.
    let pred_delays = CommDelayTable::new(vec![0.3; 8], vec![0.2; 8]);
    let comp =
        CompDelayTable::new(vec![1, 500, 1000], vec![vec![0.2; 8], vec![0.9; 8], vec![1.8; 8]]);
    let start = std::time::Instant::now();
    let mut acc = 0.0;
    for i in 0..10_000 {
        let mut mix = WorkloadMix::from_fracs(&[0.1, 0.3, 0.5, 0.7, 0.2, 0.4, 0.6]);
        mix.add(prob((i % 100) as f64 / 100.0));
        acc += paragon_comm_slowdown(&mix, &pred_delays).get();
        acc += paragon_comp_slowdown(&mix, &comp, 500).get();
    }
    assert!(acc > 0.0);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "slowdown evaluation too slow: {:?}",
        start.elapsed()
    );
}
