//! End-to-end Sun/CM2: calibrate → predict → simulate → compare.

use hetero_contention::prelude::*;

fn ps_cfg() -> PlatformConfig {
    let mut c = PlatformConfig::sun_cm2();
    c.frontend = FrontendParams::processor_sharing();
    c
}

fn quick_calibration(cfg: PlatformConfig) -> Cm2Predictor {
    calibrate_cm2(cfg, Cm2CalibrationSpec { bandwidth_elements: 200_000, startup_count: 5_000 }, 7)
}

/// Simulates one app against `p` hogs; returns elapsed seconds.
fn simulate(cfg: PlatformConfig, seed: u64, app: ScriptedApp, p: u32) -> f64 {
    let mut plat = Platform::new(cfg, seed);
    for i in 0..p {
        plat.spawn(Box::new(CpuHog::new(format!("hog{i}"))));
    }
    let start = if p == 0 { SimTime::ZERO } else { SimTime::ZERO + SimDuration::from_secs(1) };
    let id = plat.spawn_at(Box::new(app), start);
    plat.run_until_done(id).expect("stalled");
    plat.elapsed(id).expect("finished").as_secs_f64()
}

#[test]
fn calibrated_transfer_predictions_track_simulation() {
    let cfg = ps_cfg();
    let pred = quick_calibration(cfg);
    for m in [150u64, 400] {
        for p in [0u32, 2, 4] {
            let sets = [DataSet::matrix_rows(m, m)];
            let modeled = (pred.comm_cost_to(&sets, p) + pred.comm_cost_from(&sets, p)).get();
            let actual = simulate(cfg, 11 ^ m, cm2_matrix_transfer_app("probe", m), p);
            let err = (modeled - actual).abs() / actual;
            assert!(
                err < 0.15,
                "M={m} p={p}: modeled {modeled:.3} vs actual {actual:.3} ({:.1}%)",
                err * 100.0
            );
        }
    }
}

#[test]
fn gauss_offload_prediction_tracks_simulation() {
    let cfg = ps_cfg();
    let params = Cm2ProgramParams::default();
    let rates = MachineRates::default();
    for m in [100u64, 250] {
        let program = gauss_program(m, &params);
        let dserial = program.serial_total(cfg.cm2.instr_dispatch).as_secs_f64();
        let dcomp = program.parallel_total().as_secs_f64();
        let t_ded = simulate(cfg, 5, cm2_program_app("ge", program.clone()), 0);
        let didle = (t_ded - dcomp).max(0.0).min(dserial);
        let costs = Cm2TaskCosts::new(
            secs(rates.gauss_sun_demand(m).as_secs_f64()),
            secs(dcomp),
            secs(didle),
            secs(dserial),
        );
        for p in [1u32, 3] {
            let predicted = costs.t_cm2(p).get();
            let actual = simulate(cfg, 5 ^ m ^ p as u64, cm2_program_app("ge", program.clone()), p);
            let err = (predicted - actual).abs() / actual;
            assert!(err < 0.15, "M={m} p={p}: predicted {predicted:.3} vs actual {actual:.3}");
        }
    }
}

#[test]
fn placement_decision_agrees_with_simulated_ground_truth() {
    let cfg = ps_cfg();
    let pred = quick_calibration(cfg);
    let rates = MachineRates::default();
    let params = Cm2ProgramParams::default();
    // Two sizes spanning the interesting region, three load levels.
    for m in [150u64, 300] {
        for p in [0u32, 2, 4] {
            let program = gauss_program(m, &params);
            let dserial = program.serial_total(cfg.cm2.instr_dispatch).as_secs_f64();
            let dcomp = program.parallel_total().as_secs_f64();
            let t_ded = simulate(cfg, 3, cm2_program_app("ge", program.clone()), 0);
            let didle = (t_ded - dcomp).max(0.0).min(dserial);
            let task = Cm2Task {
                costs: Cm2TaskCosts::new(
                    secs(rates.gauss_sun_demand(m).as_secs_f64()),
                    secs(dcomp),
                    secs(didle),
                    secs(dserial),
                ),
                to_backend: vec![DataSet::matrix_rows(m, m + 1)],
                from_backend: vec![DataSet::single(m)],
            };
            let decision = pred.decide(&task, p);

            let sim_local = simulate(cfg, 77 ^ m, sun_task_app("l", rates.gauss_sun_demand(m)), p);
            let sim_off =
                simulate(cfg, 78 ^ m, cm2_offloaded_task("o", (m, m + 1), program, (1, m)), p);
            // When the margin is comfortable (>10%), prediction and
            // simulation must agree on the placement.
            let margin = (sim_local - sim_off).abs() / sim_local.min(sim_off);
            if margin > 0.10 {
                let sim_best =
                    if sim_local < sim_off { Placement::FrontEnd } else { Placement::BackEnd };
                assert_eq!(
                    decision.placement, sim_best,
                    "M={m} p={p}: sim local {sim_local:.2} vs off {sim_off:.2}"
                );
            }
        }
    }
}

#[test]
fn cm2_transfer_slowdown_follows_p_plus_one_on_rr_scheduler_too() {
    // The realistic quantum round-robin scheduler preserves the p+1 law
    // for the (continuous, CPU-bound) CM2 transfers within a few percent.
    let cfg = PlatformConfig::sun_cm2(); // RR by default
    let t0 = simulate(cfg, 9, cm2_matrix_transfer_app("probe", 300), 0);
    let t3 = simulate(cfg, 9, cm2_matrix_transfer_app("probe", 300), 3);
    let ratio = t3 / t0;
    assert!((3.6..4.4).contains(&ratio), "ratio {ratio}");
}

#[test]
fn sequencer_serializes_competing_cm2_tasks() {
    let cfg = ps_cfg();
    let params = Cm2ProgramParams::default();
    let program = gauss_program(80, &params);
    let mut plat = Platform::new(cfg, 1);
    let a = plat.spawn(Box::new(cm2_program_app("a", program.clone())));
    let b = plat.spawn(Box::new(cm2_program_app("b", program)));
    let ta = plat.run_until_done(a).expect("a stalled");
    let tb = plat.run_until_done(b).expect("b stalled");
    // b can only start after a releases the sequencer.
    assert!(tb.as_secs_f64() > 1.9 * ta.as_secs_f64());
}
