//! Property-based tests on the simulation substrate's invariants.

use hetero_contention::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Work conservation: on a PS CPU with all jobs arriving at t = 0, the
    /// last completion equals the total demand (nanosecond rounding aside).
    #[test]
    fn ps_cpu_conserves_work(demands in prop::collection::vec(1u64..5_000_000, 1..8)) {
        let mut cpu = PsCpu::new();
        for (i, &d) in demands.iter().enumerate() {
            cpu.arrive(SimTime::ZERO, JobId(i as u64), SimDuration::from_nanos(d));
        }
        let mut last = SimTime::ZERO;
        let mut completed = 0;
        while let Some((t, gen)) = cpu.next_event() {
            let done = cpu.on_event(t, gen);
            completed += done.len();
            last = t;
        }
        prop_assert_eq!(completed, demands.len());
        let total: u64 = demands.iter().sum();
        let err = (last.0 as i64 - total as i64).abs();
        prop_assert!(err <= demands.len() as i64 * 2, "end {} vs total {}", last.0, total);
    }

    /// Under PS, job completion order follows demand order for equal
    /// arrivals (smaller jobs finish no later).
    #[test]
    fn ps_cpu_completion_order_is_demand_order(demands in prop::collection::vec(1u64..1_000_000, 2..8)) {
        let mut cpu = PsCpu::new();
        for (i, &d) in demands.iter().enumerate() {
            cpu.arrive(SimTime::ZERO, JobId(i as u64), SimDuration::from_nanos(d));
        }
        let mut finish = vec![SimTime::ZERO; demands.len()];
        while let Some((t, gen)) = cpu.next_event() {
            for id in cpu.on_event(t, gen) {
                finish[id.0 as usize] = t;
            }
        }
        for a in 0..demands.len() {
            for b in 0..demands.len() {
                if demands[a] < demands[b] {
                    prop_assert!(finish[a] <= finish[b]);
                }
            }
        }
    }

    /// RR and PS agree on total makespan for equal-arrival batches (work
    /// conservation holds for both schedulers).
    #[test]
    fn rr_and_ps_agree_on_makespan(demands in prop::collection::vec(1u64..200, 1..6)) {
        let run = |mut cpu: Box<dyn Cpu>| -> SimTime {
            for (i, &d) in demands.iter().enumerate() {
                cpu.arrive(SimTime::ZERO, JobId(i as u64), SimDuration::from_millis(d));
            }
            let mut last = SimTime::ZERO;
            while let Some((t, gen)) = cpu.next_event() {
                cpu.on_event(t, gen);
                last = t;
            }
            last
        };
        let ps_end = run(Box::new(PsCpu::new()));
        let rr_end = run(Box::new(RrCpu::new(SimDuration::from_millis(10), SimDuration::ZERO)));
        prop_assert_eq!(ps_end, rr_end);
    }

    /// FIFO conserves busy time and never reorders.
    #[test]
    fn fifo_is_work_conserving(services in prop::collection::vec(1u64..1_000_000, 1..20)) {
        let mut s = FifoServer::new();
        for (i, &d) in services.iter().enumerate() {
            s.enqueue(SimTime::ZERO, XferId(i as u64), SimDuration::from_nanos(d));
        }
        let mut order = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, gen)) = s.next_event() {
            if let Some(id) = s.on_event(t, gen) {
                order.push(id.0);
                last = t;
            }
        }
        let expected: Vec<u64> = (0..services.len() as u64).collect();
        prop_assert_eq!(order, expected);
        prop_assert_eq!(last.0, services.iter().sum::<u64>());
    }

    /// The platform is deterministic: identical configuration and seed
    /// produce identical completion times.
    #[test]
    fn platform_runs_are_deterministic(seed in 0u64..500, words in 50u64..500) {
        let run = || {
            let mut cfg = PlatformConfig::sun_paragon();
            cfg.frontend = FrontendParams::processor_sharing();
            let mut plat = Platform::new(cfg, seed);
            plat.spawn(Box::new(CommGenerator::new(
                "g", 0.5, words, GenDirection::Alternate, &cfg,
            )));
            let id = plat.spawn_at(
                Box::new(burst_app("probe", 50, words, Direction::ToParagon)),
                SimTime::ZERO + SimDuration::from_millis(500),
            );
            plat.run_until_done(id).expect("stalled")
        };
        prop_assert_eq!(run(), run());
    }

    /// Slowdown of a compute probe under p hogs is p+1 on PS for any
    /// demand (the law the whole CM2 model rests on).
    #[test]
    fn compute_slowdown_is_exactly_p_plus_one(
        p in 0usize..5,
        demand_ms in 10u64..2_000,
    ) {
        let mut cfg = PlatformConfig::sun_cm2();
        cfg.frontend = FrontendParams::processor_sharing();
        let mut plat = Platform::new(cfg, 1);
        for i in 0..p {
            plat.spawn(Box::new(CpuHog::new(format!("hog{i}"))));
        }
        let id = plat.spawn(Box::new(sun_task_app(
            "probe",
            SimDuration::from_millis(demand_ms),
        )));
        let end = plat.run_until_done(id).expect("stalled");
        let expect = demand_ms as f64 / 1e3 * (p as f64 + 1.0);
        let err = (end.as_secs_f64() - expect).abs() / expect;
        prop_assert!(err < 0.02, "end {end} expect {expect}");
    }

    /// Burst phases deliver every message exactly once: phase time grows
    /// linearly in count for dedicated stop-and-wait sends.
    #[test]
    fn send_burst_time_linear_in_count(count in 1u64..200, words in 1u64..2000) {
        let mut cfg = PlatformConfig::sun_paragon();
        cfg.frontend = FrontendParams::processor_sharing();
        let mut plat = Platform::new(cfg, 1);
        let id = plat.spawn(Box::new(burst_app("probe", count, words, Direction::ToParagon)));
        plat.run_until_done(id).expect("stalled");
        let t = plat.phase_time(id, PhaseKind::Send).as_secs_f64();
        let per = (cfg.paragon.conv_demand_out(words)
            + cfg.paragon.wire_service(words)
            + cfg.paragon.node_overhead)
            .as_secs_f64();
        let expect = count as f64 * per;
        prop_assert!((t - expect).abs() / expect < 0.01, "t {t} expect {expect}");
    }
}
