//! Property-based tests on the contention model's invariants.

use hetero_contention::prelude::*;
use proptest::prelude::*;

/// A linear model from a raw `(alpha seconds, beta words/sec)` pair.
fn linear(alpha: f64, beta_words_per_sec: f64) -> LinearCommModel {
    LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_words_per_sec))
}

/// Brute-force Poisson–binomial: enumerate all 2^p state combinations.
fn brute_force_pcomm(fracs: &[f64], i: usize) -> f64 {
    let p = fracs.len();
    let mut total = 0.0;
    for mask in 0..(1u32 << p) {
        if mask.count_ones() as usize != i {
            continue;
        }
        let mut prob = 1.0;
        for (k, &f) in fracs.iter().enumerate() {
            prob *= if mask & (1 << k) != 0 { f } else { 1.0 - f };
        }
        total += prob;
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mix_dp_matches_brute_force(fracs in prop::collection::vec(0.0f64..=1.0, 0..8)) {
        let mix = WorkloadMix::from_fracs(&fracs);
        for i in 0..=fracs.len() {
            let expected = brute_force_pcomm(&fracs, i);
            prop_assert!((mix.pcomm(i).get() - expected).abs() < 1e-9,
                "pcomm({i}) = {} vs brute force {expected}", mix.pcomm(i));
        }
    }

    #[test]
    fn mix_distribution_is_a_distribution(fracs in prop::collection::vec(0.0f64..=1.0, 0..10)) {
        let mix = WorkloadMix::from_fracs(&fracs);
        let sum: f64 = mix.comm_dist().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(mix.comm_dist().iter().all(|&c| (-1e-12..=1.0 + 1e-9).contains(&c)));
    }

    #[test]
    fn mix_remove_inverts_add(
        fracs in prop::collection::vec(0.0f64..=1.0, 1..8),
        extra in 0.0f64..=1.0,
        idx_seed in 0usize..100,
    ) {
        let mut mix = WorkloadMix::from_fracs(&fracs);
        let before = mix.clone();
        mix.add(prob(extra));
        let idx = fracs.len(); // remove the one just added
        let _ = idx_seed;
        mix.remove(idx);
        for i in 0..=fracs.len() {
            prop_assert!((mix.pcomm(i).get() - before.pcomm(i).get()).abs() < 1e-7,
                "pcomm({i}) drifted: {} vs {}", mix.pcomm(i), before.pcomm(i));
        }
    }

    #[test]
    fn mix_incremental_equals_regenerated(fracs in prop::collection::vec(0.0f64..=1.0, 0..8)) {
        let incremental = WorkloadMix::from_fracs(&fracs);
        let mut regen = incremental.clone();
        regen.regenerate();
        for i in 0..=fracs.len() {
            prop_assert!((incremental.pcomm(i).get() - regen.pcomm(i).get()).abs() < 1e-9);
        }
    }

    #[test]
    fn paragon_slowdowns_at_least_one_and_monotone_in_delays(
        fracs in prop::collection::vec(0.0f64..=1.0, 0..6),
        base in 0.0f64..3.0,
    ) {
        let mix = WorkloadMix::from_fracs(&fracs);
        let lo = CommDelayTable::new(vec![base; 6], vec![base; 6]);
        let hi = CommDelayTable::new(vec![base + 1.0; 6], vec![base + 1.0; 6]);
        let s_lo = paragon_comm_slowdown(&mix, &lo);
        let s_hi = paragon_comm_slowdown(&mix, &hi);
        prop_assert!(s_lo.get() >= 1.0 - 1e-12);
        prop_assert!(s_hi.get() >= s_lo.get() - 1e-12);
    }

    #[test]
    fn comp_slowdown_reduces_to_cpu_splitting_without_comm(
        p in 0usize..6,
        j in prop::sample::select(vec![1u64, 100, 500, 1000, 5000]),
    ) {
        // All contenders compute 100% of the time: slowdown must be p + 1
        // regardless of j.
        let mix = WorkloadMix::from_fracs(&vec![0.0; p]);
        let table = CompDelayTable::new(
            vec![1, 500, 1000],
            vec![vec![0.5; 6], vec![1.0; 6], vec![2.0; 6]],
        );
        let s = paragon_comp_slowdown(&mix, &table, j).get();
        prop_assert!((s - (p as f64 + 1.0)).abs() < 1e-9, "p={p}: {s}");
    }

    #[test]
    fn dcomm_is_additive_and_monotone(
        msgs in prop::collection::vec((1u64..100, 1u64..5000), 1..10),
        alpha in 0.0f64..0.01,
        beta in 1000.0f64..1e6,
    ) {
        let model = linear(alpha, beta);
        let sets: Vec<DataSet> = msgs.iter().map(|&(n, w)| DataSet::new(n, w)).collect();
        let total = model.dcomm(&sets).get();
        let sum: f64 = sets.iter().map(|&s| model.dcomm(&[s]).get()).sum();
        prop_assert!((total - sum).abs() < 1e-9 * sum.max(1.0));
        // Adding a set can only increase the cost.
        let mut bigger = sets.clone();
        bigger.push(DataSet::new(1, 1));
        prop_assert!(model.dcomm(&bigger).get() > total);
    }

    #[test]
    fn piecewise_dcomm_between_its_pieces(
        words in 1u64..10_000,
        n in 1u64..100,
    ) {
        let small = linear(0.002, 50_000.0);
        let large = linear(0.006, 60_000.0);
        let pw = PiecewiseCommModel::new(1024, small, large);
        let sets = [DataSet::new(n, words)];
        let v = pw.dcomm(&sets).get();
        let lo = small.dcomm(&sets).get().min(large.dcomm(&sets).get());
        let hi = small.dcomm(&sets).get().max(large.dcomm(&sets).get());
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn cm2_t_cm2_monotone_in_p_and_bounded_below(
        dcomp in 0.0f64..100.0,
        didle_frac in 0.0f64..=1.0,
        dserial in 0.0f64..50.0,
        p in 0u32..8,
    ) {
        let didle = dserial * didle_frac;
        let costs = Cm2TaskCosts::new(secs(0.0), secs(dcomp), secs(didle), secs(dserial));
        let t_p = costs.t_cm2(p).get();
        let t_next = costs.t_cm2(p + 1).get();
        prop_assert!(t_next >= t_p - 1e-12);
        prop_assert!(t_p >= dcomp + didle - 1e-12);
        prop_assert!(t_p >= dserial * (p as f64 + 1.0) - 1e-12);
    }

    #[test]
    fn placement_best_time_is_min_of_both_options(
        dcomp_sun in 0.1f64..100.0,
        t_back in 0.1f64..100.0,
        words in 1u64..100_000,
    ) {
        let pred = Cm2Predictor {
            comm_to: linear(1e-3, 1e6),
            comm_from: linear(1e-3, 1e6),
        };
        let task = Cm2Task {
            costs: Cm2TaskCosts::new(secs(dcomp_sun), secs(t_back), secs(0.0), secs(0.0)),
            to_backend: vec![DataSet::single(words)],
            from_backend: vec![],
        };
        for p in [0u32, 3] {
            let d = pred.decide(&task, p);
            let local = d.t_front.get();
            let remote = (d.t_back + d.c_to + d.c_from).get();
            prop_assert!((d.best_time().get() - local.min(remote)).abs() < 1e-9);
            match d.placement {
                Placement::FrontEnd => prop_assert!(local <= remote + 1e-12),
                Placement::BackEnd => prop_assert!(remote < local),
            }
        }
    }

    #[test]
    fn chain_dp_matches_exhaustive(
        tasks in 1usize..6,
        machines in 2usize..4,
        seed in 0u64..1000,
    ) {
        // Random chain instance from the seed.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) * 10.0 + 0.01
        };
        let mut v = Vec::new();
        for i in 0..tasks {
            let exec: Vec<f64> = (0..machines).map(|_| next()).collect();
            if i + 1 < tasks {
                let mut comm = Matrix::filled(machines, 0.0);
                for a in 0..machines {
                    for b in 0..machines {
                        if a != b {
                            comm.set(a, b, next());
                        }
                    }
                }
                v.push(Task::with_edge(format!("t{i}"), exec, comm));
            } else {
                v.push(Task::terminal(format!("t{i}"), exec));
            }
        }
        let wf = Workflow::new(v);
        let mut env = Environment::dedicated(machines);
        for f in env.comp_slowdown.iter_mut() {
            *f = 1.0 + next() / 10.0;
        }
        let ex = best_exhaustive(&wf, &env);
        let dp = best_chain_dp(&wf, &env);
        prop_assert!((ex.makespan - dp.makespan).abs() < 1e-9);
        prop_assert!((evaluate(&wf, &dp.assignment, &env) - dp.makespan).abs() < 1e-9);
    }

    #[test]
    fn comp_delay_bucket_selection_total(words in 0u64..2_000_000) {
        let t = CompDelayTable::new(
            vec![1, 500, 1000],
            vec![vec![0.1], vec![0.5], vec![0.9]],
        );
        let b = t.bucket_for(words);
        prop_assert!(b < 3);
        // The j = 1 bucket only ever serves genuinely small messages.
        if b == 0 {
            prop_assert!(words < SMALL_MESSAGE_CUTOFF_WORDS);
        }
    }
}

// ---------------------------------------------------------------------------
// §4 extension invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Completing d1 then d2 equals completing d1+d2 (timeline integration
    /// is consistent).
    #[test]
    fn timeline_completion_is_additive(
        durs in prop::collection::vec((0.1f64..20.0, 1.0f64..6.0), 1..6),
        d1 in 0.0f64..30.0,
        d2 in 0.0f64..30.0,
    ) {
        let phases: Vec<LoadPhase> =
            durs.iter().map(|&(d, s)| LoadPhase::new(secs(d), Slowdown::new(s))).collect();
        let tl = LoadTimeline::new(phases);
        let whole = tl.completion_time(secs(d1 + d2), Seconds::ZERO).get();
        let first = tl.completion_time(secs(d1), Seconds::ZERO).get();
        let second = tl.completion_time(secs(d2), secs(first)).get();
        prop_assert!((whole - (first + second)).abs() < 1e-6,
            "whole {whole} vs split {}", first + second);
    }

    /// Effective slowdown always lies within the phase extremes.
    #[test]
    fn timeline_effective_slowdown_bounded(
        durs in prop::collection::vec((0.1f64..20.0, 1.0f64..6.0), 1..6),
        demand in 0.01f64..100.0,
        start in 0.0f64..10.0,
    ) {
        let phases: Vec<LoadPhase> =
            durs.iter().map(|&(d, s)| LoadPhase::new(secs(d), Slowdown::new(s))).collect();
        let lo = durs.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
        let hi = durs.iter().map(|&(_, s)| s).fold(1.0, f64::max);
        let tl = LoadTimeline::new(phases);
        let eff = tl.effective_slowdown(secs(demand), secs(start)).get();
        prop_assert!(eff >= lo - 1e-9 && eff <= hi + 1e-9, "eff {eff} outside [{lo}, {hi}]");
    }

    /// Completion time is monotone in demand and in start offset delay
    /// never helps a task on a monotone-nondecreasing-load prefix.
    #[test]
    fn timeline_completion_monotone_in_demand(
        durs in prop::collection::vec((0.1f64..20.0, 1.0f64..6.0), 1..6),
        d_small in 0.0f64..50.0,
        extra in 0.0f64..50.0,
    ) {
        let phases: Vec<LoadPhase> =
            durs.iter().map(|&(d, s)| LoadPhase::new(secs(d), Slowdown::new(s))).collect();
        let tl = LoadTimeline::new(phases);
        let t1 = tl.completion_time(secs(d_small), Seconds::ZERO).get();
        let t2 = tl.completion_time(secs(d_small + extra), Seconds::ZERO).get();
        prop_assert!(t2 >= t1 - 1e-9);
        // Wall time is never less than dedicated demand.
        prop_assert!(t1 >= d_small - 1e-9);
    }

    /// Paging multiplier: 1 below capacity, monotone in demand, and the
    /// adjusted slowdown preserves the base factor ordering.
    #[test]
    fn memory_model_invariants(
        capacity in 1_000u64..10_000_000,
        sets in prop::collection::vec(0u64..5_000_000, 0..6),
        thrash in 0.0f64..10.0,
        s1 in 1.0f64..5.0,
        s2 in 1.0f64..5.0,
    ) {
        let m = MemoryModel::new(capacity, thrash);
        let mult = m.paging_multiplier(&sets).get();
        prop_assert!(mult >= 1.0);
        if m.fits(&sets) {
            prop_assert!((mult - 1.0).abs() < 1e-12);
        }
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(
            m.adjust_slowdown(Slowdown::new(lo), &sets).get()
                <= m.adjust_slowdown(Slowdown::new(hi), &sets).get() + 1e-12
        );
    }
}
