//! Fast-codec equivalence properties: for arbitrary protocol values,
//! the hand-rolled scanner in `proto::codec` must agree with the
//! generic serde path — `parse_request` accepts exactly what
//! `serde_json::from_str` accepts (or declines, for `rank`), and
//! `write_response` produces byte-identical lines to
//! `serde_json::to_string` for every fast kind while refusing the
//! declined ones without touching the buffer.

use contention_model::dataset::DataSet;
use contention_model::predict::{ParagonTask, Placement, PlacementDecision};
use contention_model::units::secs;
use proptest::prelude::*;
use proto::codec::{parse_request, write_response};
use proto::proto::{
    Ack, DecideBatch, Decisions, ErrorReply, GwStatsReply, LoadReport, Predict, Prediction, Rank,
    Ranked, Request, Response,
};

/// `gw_stats` (like `ranked` and `stats`) is declined by the fast
/// writer and left to the generic serializer, buffer untouched.
#[test]
fn fast_response_writer_declines_gw_stats() {
    let resp = Response::GwStats(GwStatsReply {
        backends: Vec::new(),
        hits: 0,
        misses: 0,
        failovers: 0,
        journal_frames: 0,
        journal_bytes: 0,
        uptime_secs: 0.0,
    });
    let mut out = String::from("prefix|");
    assert!(!write_response(&resp, &mut out));
    assert_eq!(out, "prefix|");
}

/// Names exercising the plain fast path and the escape-handling slow
/// path (quotes, backslashes, control bytes, non-ASCII).
fn name_pool() -> Vec<&'static str> {
    vec!["m0", "machine-17", "node.rack-3", "we\"ird", "back\\slash", "tab\there", "naïve"]
}

fn task_for(scale: f64, words: usize) -> ParagonTask {
    let words = words as u64;
    ParagonTask {
        dcomp_sun: secs(10.0 + scale),
        t_paragon: secs(0.5 + scale * 0.25),
        to_backend: vec![DataSet::burst(4, words), DataSet::single(words / 2 + 1)],
        from_backend: vec![DataSet::single(words)],
    }
}

fn decision_for(a: f64, b: f64, back: bool) -> PlacementDecision {
    PlacementDecision {
        t_front: secs(a),
        t_back: secs(b),
        c_to: secs(a * 0.125),
        c_from: secs(b * 0.5),
        placement: if back { Placement::BackEnd } else { Placement::FrontEnd },
    }
}

/// `(kind, name, a, b, c, tasks, words)` decoded into a request; the
/// vendored proptest has no `prop_oneof`, so kind is an integer.
type RawReq = (usize, &'static str, f64, f64, f64, usize, usize);

fn request_for(raw: &RawReq) -> Request {
    let (kind, name, a, b, c, n, words) = *raw;
    let machine = name.to_string();
    match kind {
        0 => Request::LoadReport(LoadReport { machine, at: a, load: b, comm_frac: c }),
        1 => Request::Predict(Predict {
            machine,
            now: a,
            task: task_for(b, words),
            j_words: words as u64,
        }),
        2 => Request::DecideBatch(DecideBatch {
            machine,
            now: a,
            tasks: (0..n).map(|i| task_for(b + i as f64, words + i)).collect(),
            j_words: words as u64,
        }),
        3 => Request::Stats,
        4 => Request::Shutdown,
        _ => Request::Rank(Rank {
            machine,
            now: a,
            workflow: hetsched::example::workflow(),
            front_end: 0,
            j_words: words as u64,
            limit: n,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fast request parser agrees with the generic path on every
    /// line the generic path can produce: equal value for the fast
    /// kinds, `None` (explicit decline) for `rank`, and `None` only on
    /// escape-carrying lines otherwise.
    #[test]
    fn fast_request_parse_agrees_with_serde(
        raw in (
            0..6usize,
            proptest::sample::select(name_pool()),
            0.0..1.0e6f64,
            0.0..64.0f64,
            0.0..1.0f64,
            1..4usize,
            1..5000usize,
        )
    ) {
        let req = request_for(&raw);
        let line = serde_json::to_string(&req).expect("encode");
        let generic: Request = serde_json::from_str(&line).expect(&line);
        prop_assert_eq!(&generic, &req);
        match (&req, parse_request(&line)) {
            // `rank` is declined: nested schedule arrays stay generic.
            (Request::Rank(_), got) => prop_assert!(got.is_none(), "{}", line),
            (_, Some(fast)) => prop_assert_eq!(&fast, &req, "{}", line),
            // The fast scanner may reject escape sequences, but it must
            // never reject a plain line the generic path accepts.
            (_, None) => prop_assert!(line.contains('\\'), "fast path rejected {}", line),
        }
    }

    /// The fast response writer is byte-identical to the generic
    /// serializer for every fast kind, appends (never clobbers), and
    /// declines `ranked` without touching the buffer.
    #[test]
    fn fast_response_write_is_byte_identical(
        raw in (
            0..6usize,
            proptest::sample::select(name_pool()),
            0.0..1.0e4f64,
            0.0..512.0f64,
            0..64u64,
            0..2usize,
            1..4usize,
        )
    ) {
        let (kind, name, a, b, p, flip, n) = raw;
        let back = flip == 1;
        let resp = match kind {
            0 => Response::Ack(Ack { machine: name.to_string(), accepted: back, p }),
            1 => Response::Prediction(Prediction {
                machine: name.to_string(),
                p,
                stale: back,
                forecaster: name.to_string(),
                cache_hit: !back,
                decision: decision_for(a, b, back),
            }),
            2 => Response::Decisions(Decisions {
                machine: name.to_string(),
                p,
                stale: !back,
                forecaster: name.to_string(),
                cache_hit: back,
                decisions: (0..n).map(|i| decision_for(a + i as f64, b, back)).collect(),
            }),
            3 => Response::Ok,
            4 => Response::Error(ErrorReply { message: format!("bad {name}") }),
            _ => Response::Ranked(Ranked {
                machine: name.to_string(),
                p,
                stale: back,
                total: p * 2,
                schedules: Vec::new(),
            }),
        };
        let expected = serde_json::to_string(&resp).expect("encode");
        let mut out = String::from("prefix|");
        let wrote = write_response(&resp, &mut out);
        if matches!(resp, Response::Ranked(_)) {
            prop_assert!(!wrote);
            prop_assert_eq!(out.as_str(), "prefix|");
        } else {
            prop_assert!(wrote, "{}", expected);
            prop_assert_eq!(&out["prefix|".len()..], expected.as_str());
        }
    }
}
