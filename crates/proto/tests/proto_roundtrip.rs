//! Wire-protocol round-trips: every request and response kind survives
//! encode → decode bit-exactly, and malformed input is rejected with an
//! error, never a panic.

use contention_model::dataset::DataSet;
use contention_model::predict::{ParagonTask, Placement, PlacementDecision};
use contention_model::units::secs;
use hetsched::eval::Schedule;
use proto::proto::{
    Ack, BackendStats, CacheStats, DecideBatch, Decisions, ErrorReply, GwStatsReply,
    LatencySummary, LoadReport, Predict, Prediction, Rank, Ranked, Request, RequestCounts,
    Response, ShardStats, StatsReply,
};

fn task() -> ParagonTask {
    ParagonTask {
        dcomp_sun: secs(30.0),
        t_paragon: secs(6.0),
        to_backend: vec![DataSet::burst(10, 2000), DataSet::single(4)],
        from_backend: vec![DataSet::single(1000)],
    }
}

fn decision() -> PlacementDecision {
    PlacementDecision {
        t_front: secs(41.5),
        t_back: secs(6.0),
        c_to: secs(1.25),
        c_from: secs(0.75),
        placement: Placement::BackEnd,
    }
}

fn roundtrip_request(req: Request) {
    let line = serde_json::to_string(&req).expect("encode");
    let back: Request = serde_json::from_str(&line).expect(&line);
    assert_eq!(back, req, "{line}");
}

fn roundtrip_response(resp: Response) {
    let line = serde_json::to_string(&resp).expect("encode");
    let back: Response = serde_json::from_str(&line).expect(&line);
    assert_eq!(back, resp, "{line}");
}

#[test]
fn every_request_kind_roundtrips() {
    roundtrip_request(Request::LoadReport(LoadReport {
        machine: "m0".to_string(),
        at: 12.5,
        load: 3.0,
        comm_frac: -1.0,
    }));
    roundtrip_request(Request::Predict(Predict {
        machine: "m0".to_string(),
        now: 13.0,
        task: task(),
        j_words: 500,
    }));
    roundtrip_request(Request::DecideBatch(DecideBatch {
        machine: "m0".to_string(),
        now: 13.0,
        tasks: vec![task(), task()],
        j_words: 0,
    }));
    roundtrip_request(Request::Rank(Rank {
        machine: "m0".to_string(),
        now: 1.0,
        workflow: hetsched::example::workflow(),
        front_end: 0,
        j_words: 500,
        limit: 10,
    }));
    roundtrip_request(Request::Stats);
    roundtrip_request(Request::Shutdown);
}

#[test]
fn every_response_kind_roundtrips() {
    roundtrip_response(Response::Ack(Ack { machine: "m0".to_string(), accepted: true, p: 3 }));
    roundtrip_response(Response::Prediction(Prediction {
        machine: "m0".to_string(),
        p: 3,
        stale: false,
        forecaster: "ewma0.30".to_string(),
        cache_hit: true,
        decision: decision(),
    }));
    roundtrip_response(Response::Decisions(Decisions {
        machine: "m0".to_string(),
        p: 3,
        stale: true,
        forecaster: "dedicated".to_string(),
        cache_hit: false,
        decisions: vec![decision(), decision()],
    }));
    roundtrip_response(Response::Ranked(Ranked {
        machine: "m0".to_string(),
        p: 1,
        stale: false,
        total: 4,
        schedules: vec![Schedule { assignment: vec![0, 1], makespan: 23.5 }],
    }));
    roundtrip_response(Response::Stats(StatsReply {
        requests: RequestCounts {
            load_report: 5,
            predict: 4,
            decide_batch: 3,
            rank: 2,
            stats: 1,
            shutdown: 0,
        },
        cache: CacheStats { hits: 6, misses: 2, hit_rate: 0.75 },
        latency_us: LatencySummary { count: 15, p50_us: 8, p99_us: 128, max_us: 97 },
        machines: 2,
        uptime_secs: 12.5,
        shards: vec![
            ShardStats { shard: 0, machines: 1, load_reports: 3 },
            ShardStats { shard: 1, machines: 1, load_reports: 2 },
        ],
    }));
    roundtrip_response(Response::GwStats(GwStatsReply {
        backends: vec![
            BackendStats {
                addr: "127.0.0.1:7171".to_string(),
                healthy: true,
                requests: 41,
                failovers: 0,
                replayed: 0,
            },
            BackendStats {
                addr: "127.0.0.1:7172".to_string(),
                healthy: false,
                requests: 17,
                failovers: 3,
                replayed: 24,
            },
        ],
        hits: 50,
        misses: 5,
        failovers: 3,
        journal_frames: 25,
        journal_bytes: 1912,
        uptime_secs: 99.5,
    }));
    roundtrip_response(Response::Ok);
    roundtrip_response(Response::Error(ErrorReply { message: "nope \"quoted\"".to_string() }));
}

#[test]
fn kind_tag_leads_the_line() {
    let line = serde_json::to_string(&Request::Stats).expect("encode");
    assert_eq!(line, "{\"kind\":\"stats\"}");
    let line = serde_json::to_string(&Response::Ok).expect("encode");
    assert_eq!(line, "{\"kind\":\"ok\"}");
    let line = serde_json::to_string(&Request::LoadReport(LoadReport {
        machine: "m".to_string(),
        at: 1.0,
        load: 2.0,
        comm_frac: -1.0,
    }))
    .expect("encode");
    assert!(line.starts_with("{\"kind\":\"load_report\","), "{line}");
}

#[test]
fn malformed_requests_are_rejected() {
    for bad in [
        "",                                                                     // not JSON
        "null",                                                                 // wrong shape
        "42",                                                                   // wrong shape
        "[]",                                                                   // wrong shape
        "{}",                                                                   // missing kind
        "{\"kind\":12}",           // kind must be a string
        "{\"kind\":\"teleport\"}", // unknown kind
        "{\"kind\":\"predict\"}",  // missing payload fields
        "{\"kind\":\"load_report\",\"machine\":\"m\",\"at\":1.0,\"load\":2.0}", // missing field
        "{\"kind\":\"load_report\",\"machine\":3,\"at\":1.0,\"load\":2.0,\"comm_frac\":0.0}",
        "{\"kind\":\"predict\",\"machine\":\"m\",\"now\":1.0,\"task\":7,\"j_words\":1}",
        // negative dcomp rejected by the units layer during decode
        "{\"kind\":\"predict\",\"machine\":\"m\",\"now\":1.0,\"task\":{\"dcomp_sun\":-1.0,\
         \"t_paragon\":1.0,\"to_backend\":[],\"from_backend\":[]},\"j_words\":1}",
    ] {
        assert!(serde_json::from_str::<Request>(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn malformed_responses_are_rejected() {
    for bad in [
        "{}",
        "{\"kind\":\"prediction\"}",
        "{\"kind\":\"mystery\"}",
        "{\"kind\":\"stats\",\"requests\":{}}",
        "{\"kind\":\"gw_stats\",\"backends\":[{\"addr\":\"x\"}]}",
    ] {
        assert!(serde_json::from_str::<Response>(bad).is_err(), "accepted: {bad}");
    }
}
