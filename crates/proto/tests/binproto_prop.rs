//! Binary-codec equivalence properties: for arbitrary protocol values
//! of every request and response kind, `proto::binproto` must
//! round-trip losslessly and carry exactly the same value as the JSON
//! codec — the decoded value serializes to a byte-identical JSON line,
//! so a mixed fleet (JSON schedulers next to binary ones) can never
//! observe codec-dependent answers. f64 fields travel as raw IEEE-754
//! little-endian bytes, so bit-exactness holds for every representable
//! finite value, not just round numbers.

use contention_model::dataset::DataSet;
use contention_model::predict::{ParagonTask, Placement, PlacementDecision};
use contention_model::units::secs;
use hetsched::eval::Schedule;
use proptest::prelude::*;
use proto::binproto::{decode_request, decode_response, encode_request, encode_response};
use proto::proto::{
    Ack, BackendStats, CacheStats, DecideBatch, Decisions, ErrorReply, GwStatsReply,
    LatencySummary, LoadReport, Predict, Prediction, Rank, Ranked, Request, RequestCounts,
    Response, ShardStats, StatsReply,
};

/// Names exercising ASCII, quotes, backslashes, and non-ASCII UTF-8 —
/// the binary codec carries raw UTF-8, so none of these need escaping.
fn name_pool() -> Vec<&'static str> {
    vec!["m0", "machine-17", "node.rack-3", "we\"ird", "back\\slash", "tab\there", "naïve", ""]
}

fn task_for(scale: f64, words: usize) -> ParagonTask {
    let words = words as u64;
    ParagonTask {
        dcomp_sun: secs(10.0 + scale),
        t_paragon: secs(0.5 + scale * 0.25),
        to_backend: vec![DataSet::burst(4, words), DataSet::single(words / 2 + 1)],
        from_backend: vec![DataSet::single(words)],
    }
}

fn decision_for(a: f64, b: f64, back: bool) -> PlacementDecision {
    PlacementDecision {
        t_front: secs(a),
        t_back: secs(b),
        c_to: secs(a * 0.125),
        c_from: secs(b * 0.5),
        placement: if back { Placement::BackEnd } else { Placement::FrontEnd },
    }
}

/// `(kind, name, a, b, c, n, words)` decoded into a request; the
/// vendored proptest has no `prop_oneof`, so kind is an integer.
type RawReq = (usize, &'static str, f64, f64, f64, usize, usize);

fn request_for(raw: &RawReq) -> Request {
    let (kind, name, a, b, c, n, words) = *raw;
    let machine = name.to_string();
    match kind {
        0 => Request::LoadReport(LoadReport { machine, at: a, load: b, comm_frac: c }),
        1 => Request::Predict(Predict {
            machine,
            now: a,
            task: task_for(b, words),
            j_words: words as u64,
        }),
        2 => Request::DecideBatch(DecideBatch {
            machine,
            now: a,
            tasks: (0..n).map(|i| task_for(b + i as f64, words + i)).collect(),
            j_words: words as u64,
        }),
        3 => Request::Stats,
        4 => Request::Shutdown,
        _ => Request::Rank(Rank {
            machine,
            now: a,
            workflow: hetsched::example::workflow(),
            front_end: 0,
            j_words: words as u64,
            limit: n,
        }),
    }
}

type RawResp = (usize, &'static str, f64, f64, u64, usize, usize);

fn response_for(raw: &RawResp) -> Response {
    let (kind, name, a, b, p, flip, n) = *raw;
    let back = flip == 1;
    match kind {
        0 => Response::Ack(Ack { machine: name.to_string(), accepted: back, p }),
        1 => Response::Prediction(Prediction {
            machine: name.to_string(),
            p,
            stale: back,
            forecaster: name.to_string(),
            cache_hit: !back,
            decision: decision_for(a, b, back),
        }),
        2 => Response::Decisions(Decisions {
            machine: name.to_string(),
            p,
            stale: !back,
            forecaster: name.to_string(),
            cache_hit: back,
            decisions: (0..n).map(|i| decision_for(a + i as f64, b, back)).collect(),
        }),
        3 => Response::Ranked(Ranked {
            machine: name.to_string(),
            p,
            stale: back,
            total: p * 2 + n as u64,
            schedules: (0..n)
                .map(|i| Schedule { assignment: vec![i, 0, 1], makespan: a + b * i as f64 })
                .collect(),
        }),
        4 => Response::Stats(StatsReply {
            requests: RequestCounts {
                load_report: p,
                predict: p + 1,
                decide_batch: 0,
                rank: n as u64,
                stats: 1,
                shutdown: 0,
            },
            cache: CacheStats { hits: p, misses: n as u64, hit_rate: a / (a + b + 1.0) },
            latency_us: LatencySummary { count: p, p50_us: 1, p99_us: p + 7, max_us: p + 9 },
            machines: n as u64,
            uptime_secs: b,
            shards: (0..n)
                .map(|i| ShardStats {
                    shard: i as u64,
                    machines: i as u64 + 1,
                    load_reports: p + i as u64,
                })
                .collect(),
        }),
        5 => Response::Ok,
        6 => Response::GwStats(GwStatsReply {
            backends: (0..n)
                .map(|i| BackendStats {
                    addr: format!("{name}:{}", 7000 + i),
                    healthy: (i + flip) % 2 == 0,
                    requests: p + i as u64,
                    failovers: i as u64,
                    replayed: p * i as u64,
                })
                .collect(),
            hits: p,
            misses: n as u64,
            failovers: p / 2,
            journal_frames: p + 1,
            journal_bytes: p * 64,
            uptime_secs: b,
        }),
        _ => Response::Error(ErrorReply { message: format!("bad {name}") }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every request kind survives a binary round trip bit-identically:
    /// the decoded value equals the original and serializes to the same
    /// JSON bytes the JSON codec would have sent.
    #[test]
    fn binary_request_round_trip_matches_json(
        raw in (
            0..6usize,
            proptest::sample::select(name_pool()),
            0.0..1.0e6f64,
            0.0..64.0f64,
            0.0..1.0f64,
            1..4usize,
            1..5000usize,
        )
    ) {
        let req = request_for(&raw);
        let mut frame = Vec::new();
        prop_assert!(encode_request(&req, &mut frame), "encodable: {req:?}");
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        prop_assert_eq!(frame.len(), 4 + len, "length prefix covers the body");
        let decoded = decode_request(&frame[4..]).expect("decode own encoding");
        prop_assert_eq!(&decoded, &req);
        let json_side = serde_json::to_string(&req).expect("json");
        let binary_side = serde_json::to_string(&decoded).expect("json");
        prop_assert_eq!(json_side, binary_side, "codecs must agree byte-for-byte");
    }

    /// Every response kind survives a binary round trip bit-identically
    /// and agrees with the JSON codec on the carried value.
    #[test]
    fn binary_response_round_trip_matches_json(
        raw in (
            0..8usize,
            proptest::sample::select(name_pool()),
            0.0..1.0e4f64,
            0.0..512.0f64,
            0..64u64,
            0..2usize,
            0..4usize,
        )
    ) {
        let resp = response_for(&raw);
        let mut frame = Vec::new();
        prop_assert!(encode_response(&resp, &mut frame), "encodable: {resp:?}");
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        prop_assert_eq!(frame.len(), 4 + len, "length prefix covers the body");
        let decoded = decode_response(&frame[4..]).expect("decode own encoding");
        prop_assert_eq!(&decoded, &resp);
        let json_side = serde_json::to_string(&resp).expect("json");
        let binary_side = serde_json::to_string(&decoded).expect("json");
        prop_assert_eq!(json_side, binary_side, "codecs must agree byte-for-byte");
    }

    /// Truncating an encoded frame at any byte boundary never decodes —
    /// the bounds checks hold at every cut, not just the obvious ones.
    #[test]
    fn truncated_requests_never_decode(
        raw in (
            0..6usize,
            proptest::sample::select(name_pool()),
            0.0..1.0e6f64,
            0.0..64.0f64,
            0.0..1.0f64,
            1..3usize,
            1..500usize,
        ),
        cut in 0.0..1.0f64,
    ) {
        let req = request_for(&raw);
        let mut frame = Vec::new();
        prop_assert!(encode_request(&req, &mut frame));
        let body = &frame[4..];
        if body.len() > 1 {
            let at = 1 + ((body.len() - 1) as f64 * cut) as usize % (body.len() - 1);
            prop_assert!(decode_request(&body[..at]).is_err(), "cut at {at} of {}", body.len());
        }
    }
}
