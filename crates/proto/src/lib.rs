//! # proto — the contention-prediction wire surface
//!
//! The shared protocol crate: everything a process needs to *speak*
//! predictd without *being* predictd. The daemon, the gateway tier
//! ([`predictgw`]), the client library, the `loadgen` traffic
//! generator, and the tests all meet here, so a wire change is one
//! diff reviewed in one place — and the `modelcheck` protocol-drift
//! pass (which cross-references [`proto`], [`codec`], [`binproto`],
//! and the DESIGN.md §8 wire table) follows these files, not the
//! daemon's.
//!
//! Three modules, split by cost model:
//!
//! * [`proto`] — the [`proto::Request`]/[`proto::Response`] enums and
//!   their payload structs, with validating serde to and from the
//!   newline-JSON representation. The source of truth for every kind.
//! * [`codec`] — the specialized byte-scan JSON fast path for the hot
//!   kinds; falls back to (and is pinned byte-identical against) the
//!   generic serde path.
//! * [`binproto`] — the length-prefixed binary codec (`0xBD` preamble,
//!   `[u32 LE len][u8 tag][payload]` frames, raw IEEE-754 `f64`s),
//!   hostile-input safe.
//!
//! [`predictgw`]: ../predictgw/index.html
//!
//! modelcheck: no-panic, lossy-cast, missing-docs, lock-discipline, atomics, float-env, wire-taint

#![warn(missing_docs)]

pub mod binproto;
pub mod codec;
pub mod proto;

pub use proto::{Request, Response};
