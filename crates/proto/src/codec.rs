//! Specialized wire codec for the hot request kinds.
//!
//! The generic path parses every line into a [`serde::Value`] tree and
//! serializes responses back through one — correct, but allocation-heavy
//! for a hot loop that answers hundreds of thousands of small requests a
//! second. This module parses `load_report` / `predict` / `decide_batch`
//! / `stats` / `shutdown` lines straight into [`Request`] with a single
//! byte scan, and writes `ack` / `prediction` / `decisions` / `ok` /
//! `error` responses straight into the caller's output `String`.
//!
//! It is a *fast path*, not a second protocol: anything it does not
//! recognize — unknown keys, escaped strings, duplicate fields, number
//! edge cases, `rank` workflows — returns `None` and falls back to the
//! generic serde path, so acceptance and error behavior stay defined by
//! one implementation. What it does accept, it must decode exactly as
//! the generic path would; what it writes must be byte-identical to
//! [`serde_json::to_string`] of the same response. Both invariants are
//! pinned by tests below.

use std::fmt::Write as _;

use contention_model::dataset::DataSet;
use contention_model::predict::{ParagonTask, Placement, PlacementDecision};
use contention_model::units::Seconds;

use crate::proto::{
    Ack, DecideBatch, Decisions, ErrorReply, LoadReport, Predict, Prediction, Request, Response,
};

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A cursor over the raw request line.
struct Scan<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Scan<'a> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    /// Consumes `c` (after whitespace) or fails.
    fn eat(&mut self, c: u8) -> Option<()> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    /// A string with no escapes, returned as a borrowed slice. Any
    /// backslash bails to the generic parser.
    fn string(&mut self) -> Option<&'a str> {
        self.eat(b'"')?;
        let start = self.i;
        loop {
            match self.b.get(self.i)? {
                b'"' => {
                    let s = std::str::from_utf8(&self.b[start..self.i]).ok()?;
                    self.i += 1;
                    return Some(s);
                }
                b'\\' => return None,
                _ => self.i += 1,
            }
        }
    }

    /// The next number token as a raw slice.
    fn number_token(&mut self) -> Option<&'a str> {
        self.ws();
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(self.b.get(self.i), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()
    }

    /// A number as `f64` — same rounding as the generic path for every
    /// token shape (integers convert exactly the way `i64 as f64` does).
    fn f64(&mut self) -> Option<f64> {
        self.number_token()?.parse().ok()
    }

    /// A plain digit-run as `u64`. Fractions, exponents, and overflow
    /// bail out: the generic path has its own coercion rules for those.
    fn u64(&mut self) -> Option<u64> {
        let tok = self.number_token()?;
        if tok.bytes().any(|b| !b.is_ascii_digit()) {
            return None;
        }
        tok.parse().ok()
    }

    /// True when the line has nothing but whitespace left.
    fn at_end(&mut self) -> bool {
        self.ws();
        self.i == self.b.len()
    }
}

/// Walks `{"k":v,...}`, calling `field` for each key. `field` returns
/// `None` to bail (unknown key, duplicate, type mismatch).
fn object<'a>(
    s: &mut Scan<'a>,
    mut field: impl FnMut(&mut Scan<'a>, &str) -> Option<()>,
) -> Option<()> {
    s.eat(b'{')?;
    if s.peek() == Some(b'}') {
        s.i += 1;
        return Some(());
    }
    loop {
        let key = s.string()?;
        s.eat(b':')?;
        field(s, key)?;
        match s.peek()? {
            b',' => s.i += 1,
            b'}' => {
                s.i += 1;
                return Some(());
            }
            _ => return None,
        }
    }
}

/// Fills `slot` once; a second occurrence of the key bails (the generic
/// path reads the first occurrence, overwriting would read the last).
fn fill<T>(slot: &mut Option<T>, value: Option<T>) -> Option<()> {
    if slot.is_some() {
        return None;
    }
    *slot = Some(value?);
    Some(())
}

fn dataset(s: &mut Scan<'_>) -> Option<DataSet> {
    let (mut messages, mut words) = (None, None);
    object(s, |s, key| match key {
        "messages" => fill(&mut messages, s.u64()),
        "words" => fill(&mut words, s.u64()),
        _ => None,
    })?;
    Some(DataSet { messages: messages?, words: words? })
}

fn datasets(s: &mut Scan<'_>) -> Option<Vec<DataSet>> {
    s.eat(b'[')?;
    let mut v = Vec::new();
    if s.peek() == Some(b']') {
        s.i += 1;
        return Some(v);
    }
    loop {
        v.push(dataset(s)?);
        match s.peek()? {
            b',' => s.i += 1,
            b']' => {
                s.i += 1;
                return Some(v);
            }
            _ => return None,
        }
    }
}

fn seconds(s: &mut Scan<'_>) -> Option<Seconds> {
    Seconds::try_new(s.f64()?)
}

fn paragon_task(s: &mut Scan<'_>) -> Option<ParagonTask> {
    let (mut dcomp_sun, mut t_paragon, mut to_backend, mut from_backend) = (None, None, None, None);
    object(s, |s, key| match key {
        "dcomp_sun" => fill(&mut dcomp_sun, seconds(s)),
        "t_paragon" => fill(&mut t_paragon, seconds(s)),
        "to_backend" => fill(&mut to_backend, datasets(s)),
        "from_backend" => fill(&mut from_backend, datasets(s)),
        _ => None,
    })?;
    Some(ParagonTask {
        dcomp_sun: dcomp_sun?,
        t_paragon: t_paragon?,
        to_backend: to_backend?,
        from_backend: from_backend?,
    })
}

fn paragon_tasks(s: &mut Scan<'_>) -> Option<Vec<ParagonTask>> {
    s.eat(b'[')?;
    let mut v = Vec::new();
    if s.peek() == Some(b']') {
        s.i += 1;
        return Some(v);
    }
    loop {
        v.push(paragon_task(s)?);
        match s.peek()? {
            b',' => s.i += 1,
            b']' => {
                s.i += 1;
                return Some(v);
            }
            _ => return None,
        }
    }
}

/// Parses one request line on the fast path, in any field order.
/// `None` means "not recognized here" — never "invalid": the caller
/// falls back to the generic parser, which owns acceptance and errors.
pub fn parse_request(line: &str) -> Option<Request> {
    let mut s = Scan { b: line.as_bytes(), i: 0 };
    let mut kind = None;
    let mut machine: Option<&str> = None;
    let (mut at, mut now, mut load, mut comm_frac) = (None, None, None, None);
    let mut j_words = None;
    let mut task = None;
    let mut tasks = None;
    object(&mut s, |s, key| match key {
        "kind" => fill(&mut kind, s.string()),
        "machine" => fill(&mut machine, s.string()),
        "at" => fill(&mut at, s.f64()),
        "now" => fill(&mut now, s.f64()),
        "load" => fill(&mut load, s.f64()),
        "comm_frac" => fill(&mut comm_frac, s.f64()),
        "j_words" => fill(&mut j_words, s.u64()),
        "task" => fill(&mut task, paragon_task(s)),
        "tasks" => fill(&mut tasks, paragon_tasks(s)),
        _ => None,
    })?;
    if !s.at_end() {
        return None;
    }
    match kind? {
        "load_report" => Some(Request::LoadReport(LoadReport {
            machine: machine?.to_string(),
            at: at?,
            load: load?,
            comm_frac: comm_frac?,
        })),
        "predict" => Some(Request::Predict(Predict {
            machine: machine?.to_string(),
            now: now?,
            task: task.take()?,
            j_words: j_words?,
        })),
        "decide_batch" => Some(Request::DecideBatch(DecideBatch {
            machine: machine?.to_string(),
            now: now?,
            tasks: tasks.take()?,
            j_words: j_words?,
        })),
        "stats" => Some(Request::Stats),
        "shutdown" => Some(Request::Shutdown),
        // Explicit decline: `rank` carries nested schedule arrays the
        // flat scanner cannot mirror byte-exactly; the generic serde
        // path owns it.
        "rank" => None,
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Writes `s` as a JSON string with exactly the generic writer's
/// escaping rules.
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    let mut rest = s;
    while let Some(idx) = rest.find(|c: char| matches!(c, '"' | '\\') || (c as u32) < 0x20) {
        out.push_str(&rest[..idx]);
        let c = match rest[idx..].chars().next() {
            Some(c) => c,
            None => break,
        };
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
        }
        rest = &rest[idx + c.len_utf8()..];
    }
    out.push_str(rest);
    out.push('"');
}

/// Writes `f` exactly as the generic writer does: shortest-roundtrip
/// `Display`, a forced fraction, `null` for non-finite values.
fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let start = out.len();
        let _ = write!(out, "{f}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_bool(out: &mut String, b: bool) {
    out.push_str(if b { "true" } else { "false" });
}

fn write_decision(out: &mut String, d: &PlacementDecision) {
    out.push_str("{\"t_front\":");
    write_f64(out, d.t_front.get());
    out.push_str(",\"t_back\":");
    write_f64(out, d.t_back.get());
    out.push_str(",\"c_to\":");
    write_f64(out, d.c_to.get());
    out.push_str(",\"c_from\":");
    write_f64(out, d.c_from.get());
    out.push_str(",\"placement\":");
    out.push_str(match d.placement {
        Placement::FrontEnd => "\"FrontEnd\"",
        Placement::BackEnd => "\"BackEnd\"",
    });
    out.push('}');
}

fn write_ack(out: &mut String, a: &Ack) {
    out.push_str("{\"kind\":\"ack\",\"machine\":");
    write_str(out, &a.machine);
    let _ = write!(out, ",\"accepted\":{},\"p\":{}}}", a.accepted, a.p);
}

fn write_prediction(out: &mut String, p: &Prediction) {
    out.push_str("{\"kind\":\"prediction\",\"machine\":");
    write_str(out, &p.machine);
    let _ = write!(out, ",\"p\":{},\"stale\":", p.p);
    write_bool(out, p.stale);
    out.push_str(",\"forecaster\":");
    write_str(out, &p.forecaster);
    out.push_str(",\"cache_hit\":");
    write_bool(out, p.cache_hit);
    out.push_str(",\"decision\":");
    write_decision(out, &p.decision);
    out.push('}');
}

fn write_decisions(out: &mut String, d: &Decisions) {
    out.push_str("{\"kind\":\"decisions\",\"machine\":");
    write_str(out, &d.machine);
    let _ = write!(out, ",\"p\":{},\"stale\":", d.p);
    write_bool(out, d.stale);
    out.push_str(",\"forecaster\":");
    write_str(out, &d.forecaster);
    out.push_str(",\"cache_hit\":");
    write_bool(out, d.cache_hit);
    out.push_str(",\"decisions\":[");
    for (i, dec) in d.decisions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_decision(out, dec);
    }
    out.push_str("]}");
}

fn write_error(out: &mut String, e: &ErrorReply) {
    out.push_str("{\"kind\":\"error\",\"message\":");
    write_str(out, &e.message);
    out.push('}');
}

/// Appends `resp` to `out` on the fast path; false means the caller
/// must use the generic serializer (`ranked`/`stats` payloads). The
/// bytes produced are identical to [`serde_json::to_string`]'s.
pub fn write_response(resp: &Response, out: &mut String) -> bool {
    match resp {
        Response::Ack(a) => write_ack(out, a),
        Response::Prediction(p) => write_prediction(out, p),
        Response::Decisions(d) => write_decisions(out, d),
        Response::Ok => out.push_str("{\"kind\":\"ok\"}"),
        Response::Error(e) => write_error(out, e),
        // Explicit declines: nested/large cold payloads stay on the
        // generic serializer (`ranked`, `stats`, and the gateway's
        // `gw_stats`).
        Response::Ranked(_) | Response::Stats(_) | Response::GwStats(_) => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_model::units::secs;

    fn canonical(req: &Request) -> String {
        serde_json::to_string(req).expect("serializable")
    }

    #[test]
    fn fast_parse_agrees_with_generic_on_canonical_lines() {
        let task = ParagonTask {
            dcomp_sun: secs(30.0),
            t_paragon: secs(6.0),
            to_backend: vec![DataSet::burst(10, 2000)],
            from_backend: vec![DataSet::single(1000)],
        };
        let reqs = [
            Request::LoadReport(LoadReport {
                machine: "m0".into(),
                at: 1.0,
                load: 2.0,
                comm_frac: 0.4,
            }),
            Request::LoadReport(LoadReport {
                machine: "m1".into(),
                at: 0.0,
                load: 0.0,
                comm_frac: -1.0,
            }),
            Request::Predict(Predict {
                machine: "host-α".into(),
                now: 1.5,
                task: task.clone(),
                j_words: 500,
            }),
            Request::DecideBatch(DecideBatch {
                machine: "m0".into(),
                now: 2.0,
                tasks: vec![task.clone(), task],
                j_words: 0,
            }),
            Request::Stats,
            Request::Shutdown,
        ];
        for req in &reqs {
            let line = canonical(req);
            let fast = parse_request(&line).unwrap_or_else(|| panic!("fast path must take {line}"));
            let generic: Request = serde_json::from_str(&line).expect("generic parse");
            assert_eq!(fast, generic);
            assert_eq!(&fast, req);
        }
    }

    #[test]
    fn fast_parse_handles_whitespace_and_field_order() {
        let line = " { \"at\" : 2.5 , \"machine\" : \"m9\" , \"comm_frac\" : -1.0 ,\
                    \"load\" : 3.0 , \"kind\" : \"load_report\" } ";
        let fast = parse_request(line).expect("reordered fields still fast-parse");
        let generic: Request = serde_json::from_str(line).expect("generic parse");
        assert_eq!(fast, generic);
    }

    #[test]
    fn fast_parse_declines_what_it_cannot_mirror() {
        // Unknown kinds, unknown keys, escapes, duplicates, non-integer
        // u64s, trailing garbage: all must fall back, not guess.
        for line in [
            "{\"kind\":\"rank\",\"machine\":\"m0\"}",
            "{\"kind\":\"stats\",\"extra\":1}",
            "{\"kind\":\"load_report\",\"machine\":\"a\\\"b\",\"at\":1.0,\"load\":1.0,\"comm_frac\":0.0}",
            "{\"kind\":\"load_report\",\"machine\":\"m\",\"at\":1.0,\"at\":2.0,\"load\":1.0,\"comm_frac\":0.0}",
            "{\"kind\":\"predict\",\"machine\":\"m\",\"now\":1.0,\"task\":{\"dcomp_sun\":1.0,\
             \"t_paragon\":1.0,\"to_backend\":[],\"from_backend\":[]},\"j_words\":5.0}",
            "{\"kind\":\"stats\"} x",
            "not json at all",
        ] {
            assert!(parse_request(line).is_none(), "must decline: {line}");
        }
    }

    #[test]
    fn fast_write_is_byte_identical_to_generic() {
        let decision = PlacementDecision {
            t_front: secs(87.47856),
            t_back: secs(6.0),
            c_to: secs(0.39147992123076925),
            c_from: secs(0.012946042362416105),
            placement: Placement::BackEnd,
        };
        let front = PlacementDecision { placement: Placement::FrontEnd, ..decision };
        let resps = [
            Response::Ack(Ack { machine: "m0".into(), accepted: true, p: 2 }),
            Response::Ack(Ack { machine: "we\"ird\\name".into(), accepted: false, p: 0 }),
            Response::Prediction(Prediction {
                machine: "m0".into(),
                p: 2,
                stale: false,
                forecaster: "last".into(),
                cache_hit: true,
                decision,
            }),
            Response::Decisions(Decisions {
                machine: "m0".into(),
                p: 1,
                stale: true,
                forecaster: "dedicated".into(),
                cache_hit: false,
                decisions: vec![decision, front],
            }),
            Response::Ok,
            Response::Error(ErrorReply { message: "bad request: tab\there".into() }),
        ];
        for resp in &resps {
            let mut fast = String::new();
            assert!(write_response(resp, &mut fast), "fast writer must take {resp:?}");
            let generic = serde_json::to_string(resp).expect("generic serialize");
            assert_eq!(fast, generic, "wire bytes must not depend on the code path");
        }
    }

    #[test]
    fn slow_kinds_defer_to_the_generic_writer() {
        let mut out = String::new();
        let ranked = Response::Ranked(crate::proto::Ranked {
            machine: "m".into(),
            p: 0,
            stale: false,
            total: 0,
            schedules: Vec::new(),
        });
        assert!(!write_response(&ranked, &mut out));
        assert!(out.is_empty(), "a declined write must leave the buffer untouched");
    }
}
