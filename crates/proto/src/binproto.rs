//! Length-prefixed binary wire codec for the predictd protocol.
//!
//! The binary encoding is the newline-JSON protocol's fast sibling: the
//! same [`Request`]/[`Response`] values, fixed little-endian layouts
//! instead of text. A connection opts in by sending the 4-byte
//! [`PREAMBLE`] immediately after connect; because the magic byte
//! `0xBD` can never start a JSON line (`{`), the server sniffs the
//! first byte and keeps newline-JSON as the untouched compatibility
//! surface.
//!
//! **Framing.** After the preamble, both directions carry frames:
//!
//! ```text
//! [u32 LE body_len][u8 tag][payload…]      body_len = 1 + payload len
//! ```
//!
//! **Primitives.** All integers little-endian. `f64` is the IEEE-754
//! bit pattern (8 bytes LE), so values survive the wire bit-exactly —
//! the property the round-trip proptests pin against the JSON codec.
//! Strings are `u32` byte length + UTF-8 bytes. Booleans are one byte,
//! strictly `0` or `1`. Vectors are `u32` element count + elements;
//! decoders bound the count by the bytes actually remaining in the
//! frame before allocating, so a hostile length field cannot balloon
//! memory past the frame cap.
//!
//! **Tag table.** One frame kind per protocol kind; the wire tag of a
//! response has the high bit set.
//!
//! | kind | direction | tag |
//! |---|---|---|
//! | `load_report` | request | [`REQ_LOAD_REPORT`] |
//! | `predict` | request | [`REQ_PREDICT`] |
//! | `decide_batch` | request | [`REQ_DECIDE_BATCH`] |
//! | `rank` | request | [`REQ_RANK`] |
//! | `stats` | request | [`REQ_STATS`] |
//! | `shutdown` | request | [`REQ_SHUTDOWN`] |
//! | `ack` | response | [`RESP_ACK`] |
//! | `prediction` | response | [`RESP_PREDICTION`] |
//! | `decisions` | response | [`RESP_DECISIONS`] |
//! | `ranked` | response | [`RESP_RANKED`] |
//! | `stats` | response | [`RESP_STATS`] |
//! | `gw_stats` | response | [`RESP_GW_STATS`] |
//! | `ok` | response | [`RESP_OK`] |
//! | `error` | response | [`RESP_ERROR`] |
//!
//! Byte-offset layouts per kind are documented in DESIGN.md §8; this
//! module is the machine-checked source of truth (modelcheck's
//! protocol-drift pass cross-checks the tag table against `proto.rs`
//! and the DESIGN table).

use crate::proto::{
    Ack, BackendStats, CacheStats, DecideBatch, Decisions, ErrorReply, GwStatsReply,
    LatencySummary, LoadReport, Predict, Prediction, Rank, Ranked, Request, RequestCounts,
    Response, ShardStats, StatsReply,
};
use contention_model::dataset::DataSet;
use contention_model::predict::{ParagonTask, Placement, PlacementDecision};
use contention_model::units::Seconds;
use hetsched::eval::Schedule;
use hetsched::task::{Matrix, Task, Workflow};

/// First preamble byte. Deliberately outside ASCII and unequal to `{`
/// (0x7B), so one-byte sniffing separates binary clients from JSON.
pub const MAGIC: u8 = 0xBD;

/// Wire version negotiated by the preamble. Bumped on any layout
/// change; a server that does not speak the offered version must reject
/// the connection rather than guess.
pub const VERSION: u8 = 0x01;

/// The 4-byte connection preamble a binary client sends after connect:
/// magic, `b"PD"`, version.
pub const PREAMBLE: [u8; 4] = [MAGIC, b'P', b'D', VERSION];

/// Frame tag: `load_report` request.
pub const REQ_LOAD_REPORT: u8 = 0x01;
/// Frame tag: `predict` request.
pub const REQ_PREDICT: u8 = 0x02;
/// Frame tag: `decide_batch` request.
pub const REQ_DECIDE_BATCH: u8 = 0x03;
/// Frame tag: `rank` request.
pub const REQ_RANK: u8 = 0x04;
/// Frame tag: `stats` request.
pub const REQ_STATS: u8 = 0x05;
/// Frame tag: `shutdown` request.
pub const REQ_SHUTDOWN: u8 = 0x06;

/// Frame tag: `ack` response.
pub const RESP_ACK: u8 = 0x81;
/// Frame tag: `prediction` response.
pub const RESP_PREDICTION: u8 = 0x82;
/// Frame tag: `decisions` response.
pub const RESP_DECISIONS: u8 = 0x83;
/// Frame tag: `ranked` response.
pub const RESP_RANKED: u8 = 0x84;
/// Frame tag: `stats` response.
pub const RESP_STATS: u8 = 0x85;
/// Frame tag: `ok` response.
pub const RESP_OK: u8 = 0x86;
/// Frame tag: `error` response.
pub const RESP_ERROR: u8 = 0x87;
/// Frame tag: `gw_stats` response (gateway metrics snapshot). Tags are
/// append-only, so the gateway's addition sits after `error`.
pub const RESP_GW_STATS: u8 = 0x88;

/// Why a frame failed to decode. The message is safe to echo to the
/// peer inside an `error` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// What was malformed.
    pub message: String,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FrameError {}

fn err(message: impl Into<String>) -> FrameError {
    FrameError { message: message.into() }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Builds one frame in `out`: reserves the length prefix, writes tag
/// and payload, patches the prefix on `finish`. Length-field overflow
/// (a string or vector too large for `u32`) flips `ok`; `finish` then
/// rolls `out` back to where the frame began and reports failure.
struct FrameWriter<'a> {
    out: &'a mut Vec<u8>,
    start: usize,
    ok: bool,
}

impl<'a> FrameWriter<'a> {
    fn begin(out: &'a mut Vec<u8>, tag: u8) -> Self {
        let start = out.len();
        out.extend_from_slice(&[0, 0, 0, 0, tag]);
        FrameWriter { out, start, ok: true }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn boolean(&mut self, v: bool) {
        self.out.push(u8::from(v));
    }

    fn secs(&mut self, v: Seconds) {
        self.f64(v.get());
    }

    /// Writes a `u32` length/count field; overflow marks the frame bad.
    fn len32(&mut self, n: usize) {
        match u32::try_from(n) {
            Ok(v) => self.u32(v),
            Err(_) => {
                self.ok = false;
                self.u32(0);
            }
        }
    }

    fn str(&mut self, s: &str) {
        self.len32(s.len());
        self.out.extend_from_slice(s.as_bytes());
    }

    fn datasets(&mut self, sets: &[DataSet]) {
        self.len32(sets.len());
        for d in sets {
            self.u64(d.messages);
            self.u64(d.words);
        }
    }

    fn task(&mut self, t: &ParagonTask) {
        self.secs(t.dcomp_sun);
        self.secs(t.t_paragon);
        self.datasets(&t.to_backend);
        self.datasets(&t.from_backend);
    }

    fn matrix(&mut self, m: &Matrix) {
        let n = m.size();
        self.len32(n);
        for from in 0..n {
            for to in 0..n {
                self.f64(m.get(from, to));
            }
        }
    }

    fn workflow(&mut self, w: &Workflow) {
        self.len32(w.tasks.len());
        for t in &w.tasks {
            self.str(&t.name);
            self.len32(t.exec.len());
            for &x in &t.exec {
                self.f64(x);
            }
            match &t.comm_to_next {
                None => self.u8(0),
                Some(m) => {
                    self.u8(1);
                    self.matrix(m);
                }
            }
        }
    }

    fn decision(&mut self, d: &PlacementDecision) {
        self.secs(d.t_front);
        self.secs(d.t_back);
        self.secs(d.c_to);
        self.secs(d.c_from);
        self.u8(match d.placement {
            Placement::FrontEnd => 0,
            Placement::BackEnd => 1,
        });
    }

    fn finish(self) -> bool {
        let body = self.out.len() - self.start - 4;
        match (self.ok, u32::try_from(body)) {
            (true, Ok(len)) => {
                let prefix = len.to_le_bytes();
                self.out[self.start..self.start + 4].copy_from_slice(&prefix);
                true
            }
            _ => {
                self.out.truncate(self.start);
                false
            }
        }
    }
}

/// Usize fields travel as `u64` so the layout is the same on every
/// platform.
fn wire_u64(v: usize) -> u64 {
    v as u64
}

/// Appends `req` to `out` as one complete frame (length prefix
/// included). Returns `false` — leaving `out` as it was — only if a
/// length field overflows `u32`, which no request that fits in memory
/// can trigger in practice.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) -> bool {
    match req {
        Request::LoadReport(r) => {
            let mut w = FrameWriter::begin(out, REQ_LOAD_REPORT);
            w.str(&r.machine);
            w.f64(r.at);
            w.f64(r.load);
            w.f64(r.comm_frac);
            w.finish()
        }
        Request::Predict(r) => {
            let mut w = FrameWriter::begin(out, REQ_PREDICT);
            w.str(&r.machine);
            w.f64(r.now);
            w.task(&r.task);
            w.u64(r.j_words);
            w.finish()
        }
        Request::DecideBatch(r) => {
            let mut w = FrameWriter::begin(out, REQ_DECIDE_BATCH);
            w.str(&r.machine);
            w.f64(r.now);
            w.len32(r.tasks.len());
            for t in &r.tasks {
                w.task(t);
            }
            w.u64(r.j_words);
            w.finish()
        }
        Request::Rank(r) => {
            let mut w = FrameWriter::begin(out, REQ_RANK);
            w.str(&r.machine);
            w.f64(r.now);
            w.workflow(&r.workflow);
            w.u64(wire_u64(r.front_end));
            w.u64(r.j_words);
            w.u64(wire_u64(r.limit));
            w.finish()
        }
        Request::Stats => FrameWriter::begin(out, REQ_STATS).finish(),
        Request::Shutdown => FrameWriter::begin(out, REQ_SHUTDOWN).finish(),
    }
}

/// Appends `resp` to `out` as one complete frame. Same contract as
/// [`encode_request`].
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) -> bool {
    match resp {
        Response::Ack(r) => {
            let mut w = FrameWriter::begin(out, RESP_ACK);
            w.str(&r.machine);
            w.boolean(r.accepted);
            w.u64(r.p);
            w.finish()
        }
        Response::Prediction(r) => {
            let mut w = FrameWriter::begin(out, RESP_PREDICTION);
            w.str(&r.machine);
            w.u64(r.p);
            w.boolean(r.stale);
            w.str(&r.forecaster);
            w.boolean(r.cache_hit);
            w.decision(&r.decision);
            w.finish()
        }
        Response::Decisions(r) => {
            let mut w = FrameWriter::begin(out, RESP_DECISIONS);
            w.str(&r.machine);
            w.u64(r.p);
            w.boolean(r.stale);
            w.str(&r.forecaster);
            w.boolean(r.cache_hit);
            w.len32(r.decisions.len());
            for d in &r.decisions {
                w.decision(d);
            }
            w.finish()
        }
        Response::Ranked(r) => {
            let mut w = FrameWriter::begin(out, RESP_RANKED);
            w.str(&r.machine);
            w.u64(r.p);
            w.boolean(r.stale);
            w.u64(r.total);
            w.len32(r.schedules.len());
            for s in &r.schedules {
                w.len32(s.assignment.len());
                for &a in &s.assignment {
                    w.u64(wire_u64(a));
                }
                w.f64(s.makespan);
            }
            w.finish()
        }
        Response::Stats(r) => {
            let mut w = FrameWriter::begin(out, RESP_STATS);
            w.u64(r.requests.load_report);
            w.u64(r.requests.predict);
            w.u64(r.requests.decide_batch);
            w.u64(r.requests.rank);
            w.u64(r.requests.stats);
            w.u64(r.requests.shutdown);
            w.u64(r.cache.hits);
            w.u64(r.cache.misses);
            w.f64(r.cache.hit_rate);
            w.u64(r.latency_us.count);
            w.u64(r.latency_us.p50_us);
            w.u64(r.latency_us.p99_us);
            w.u64(r.latency_us.max_us);
            w.u64(r.machines);
            w.f64(r.uptime_secs);
            w.len32(r.shards.len());
            for s in &r.shards {
                w.u64(s.shard);
                w.u64(s.machines);
                w.u64(s.load_reports);
            }
            w.finish()
        }
        Response::GwStats(r) => {
            let mut w = FrameWriter::begin(out, RESP_GW_STATS);
            w.len32(r.backends.len());
            for b in &r.backends {
                w.str(&b.addr);
                w.boolean(b.healthy);
                w.u64(b.requests);
                w.u64(b.failovers);
                w.u64(b.replayed);
            }
            w.u64(r.hits);
            w.u64(r.misses);
            w.u64(r.failovers);
            w.u64(r.journal_frames);
            w.u64(r.journal_bytes);
            w.f64(r.uptime_secs);
            w.finish()
        }
        Response::Ok => FrameWriter::begin(out, RESP_OK).finish(),
        Response::Error(r) => {
            let mut w = FrameWriter::begin(out, RESP_ERROR);
            w.str(&r.message);
            w.finish()
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over one frame body. Every read validates the
/// remaining byte budget first; count fields are additionally checked
/// against `count × minimum-element-size ≤ remaining` before any
/// allocation.
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, i: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.i
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.i.checked_add(n).ok_or_else(|| err("truncated frame"))?;
        let slice = self.b.get(self.i..end).ok_or_else(|| err("truncated frame"))?;
        self.i = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let raw = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(raw);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let raw = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        let raw = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(f64::from_le_bytes(b))
    }

    fn boolean(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(err(format!("invalid boolean byte {v}"))),
        }
    }

    fn secs(&mut self, what: &str) -> Result<Seconds, FrameError> {
        let raw = self.f64()?;
        Seconds::try_new(raw).ok_or_else(|| err(format!("invalid {what}: {raw}")))
    }

    fn usize64(&mut self, what: &str) -> Result<usize, FrameError> {
        let raw = self.u64()?;
        usize::try_from(raw).map_err(|_| err(format!("{what} out of range: {raw}")))
    }

    /// Reads a count field and proves `count × min_elem` elements could
    /// still fit in the frame, so `Vec::with_capacity(count)` below it
    /// is bounded by the frame size the transport already capped.
    fn count(&mut self, min_elem: usize, what: &str) -> Result<usize, FrameError> {
        let n = self.u32()?;
        let n = usize::try_from(n).map_err(|_| err(format!("{what} count out of range: {n}")))?;
        let need = n.checked_mul(min_elem).ok_or_else(|| err("truncated frame"))?;
        if need > self.remaining() {
            return Err(err(format!("{what} count {n} exceeds frame")));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String, FrameError> {
        let n = self.count(1, what)?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| err(format!("{what} is not UTF-8")))
    }

    fn datasets(&mut self) -> Result<Vec<DataSet>, FrameError> {
        let n = self.count(16, "data set")?;
        let mut sets = Vec::with_capacity(n);
        for _ in 0..n {
            let messages = self.u64()?;
            let words = self.u64()?;
            sets.push(DataSet { messages, words });
        }
        Ok(sets)
    }

    fn task(&mut self) -> Result<ParagonTask, FrameError> {
        Ok(ParagonTask {
            dcomp_sun: self.secs("dcomp_sun")?,
            t_paragon: self.secs("t_paragon")?,
            to_backend: self.datasets()?,
            from_backend: self.datasets()?,
        })
    }

    fn matrix(&mut self) -> Result<Matrix, FrameError> {
        let n = self.u32()?;
        let n = usize::try_from(n).map_err(|_| err(format!("matrix size out of range: {n}")))?;
        let cells = n.checked_mul(n).ok_or_else(|| err("truncated frame"))?;
        let need = cells.checked_mul(8).ok_or_else(|| err("truncated frame"))?;
        if need > self.remaining() {
            return Err(err(format!("matrix size {n} exceeds frame")));
        }
        let mut m = Matrix::filled(n, 0.0);
        for from in 0..n {
            for to in 0..n {
                m.set(from, to, self.f64()?);
            }
        }
        Ok(m)
    }

    fn workflow(&mut self) -> Result<Workflow, FrameError> {
        // Minimum task: empty name (4) + empty exec (4) + no-matrix flag.
        let n = self.count(9, "workflow task")?;
        let mut tasks = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.str("task name")?;
            let k = self.count(8, "exec row")?;
            let mut exec = Vec::with_capacity(k);
            for _ in 0..k {
                exec.push(self.f64()?);
            }
            let comm_to_next = match self.u8()? {
                0 => None,
                1 => Some(self.matrix()?),
                v => return Err(err(format!("invalid matrix-presence byte {v}"))),
            };
            tasks.push(Task { name, exec, comm_to_next });
        }
        // Structural validity (matching sizes etc.) is the server
        // handler's job, exactly as with serde-decoded workflows.
        Ok(Workflow { tasks })
    }

    fn decision(&mut self) -> Result<PlacementDecision, FrameError> {
        let t_front = self.secs("t_front")?;
        let t_back = self.secs("t_back")?;
        let c_to = self.secs("c_to")?;
        let c_from = self.secs("c_from")?;
        let placement = match self.u8()? {
            0 => Placement::FrontEnd,
            1 => Placement::BackEnd,
            v => Err(err(format!("invalid placement byte {v}")))?,
        };
        Ok(PlacementDecision { t_front, t_back, c_to, c_from, placement })
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(err(format!("{} trailing bytes after payload", self.remaining())))
        }
    }
}

/// Decodes one request frame body (`tag` + payload, the length prefix
/// already stripped by the transport).
pub fn decode_request(body: &[u8]) -> Result<Request, FrameError> {
    let mut c = Cur::new(body);
    let tag = c.u8().map_err(|_| err("empty frame"))?;
    let req = match tag {
        REQ_LOAD_REPORT => Request::LoadReport(LoadReport {
            machine: c.str("machine")?,
            at: c.f64()?,
            load: c.f64()?,
            comm_frac: c.f64()?,
        }),
        REQ_PREDICT => Request::Predict(Predict {
            machine: c.str("machine")?,
            now: c.f64()?,
            task: c.task()?,
            j_words: c.u64()?,
        }),
        REQ_DECIDE_BATCH => {
            let machine = c.str("machine")?;
            let now = c.f64()?;
            let n = c.count(24, "task")?;
            let mut tasks = Vec::with_capacity(n);
            for _ in 0..n {
                tasks.push(c.task()?);
            }
            let j_words = c.u64()?;
            Request::DecideBatch(DecideBatch { machine, now, tasks, j_words })
        }
        REQ_RANK => Request::Rank(Rank {
            machine: c.str("machine")?,
            now: c.f64()?,
            workflow: c.workflow()?,
            front_end: c.usize64("front_end")?,
            j_words: c.u64()?,
            limit: c.usize64("limit")?,
        }),
        REQ_STATS => Request::Stats,
        REQ_SHUTDOWN => Request::Shutdown,
        t => return Err(err(format!("unknown request tag 0x{t:02x}"))),
    };
    c.done()?;
    Ok(req)
}

/// Decodes one response frame body (`tag` + payload, the length prefix
/// already stripped by the transport).
pub fn decode_response(body: &[u8]) -> Result<Response, FrameError> {
    let mut c = Cur::new(body);
    let tag = c.u8().map_err(|_| err("empty frame"))?;
    let resp = match tag {
        RESP_ACK => {
            Response::Ack(Ack { machine: c.str("machine")?, accepted: c.boolean()?, p: c.u64()? })
        }
        RESP_PREDICTION => Response::Prediction(Prediction {
            machine: c.str("machine")?,
            p: c.u64()?,
            stale: c.boolean()?,
            forecaster: c.str("forecaster")?,
            cache_hit: c.boolean()?,
            decision: c.decision()?,
        }),
        RESP_DECISIONS => {
            let machine = c.str("machine")?;
            let p = c.u64()?;
            let stale = c.boolean()?;
            let forecaster = c.str("forecaster")?;
            let cache_hit = c.boolean()?;
            let n = c.count(33, "decision")?;
            let mut decisions = Vec::with_capacity(n);
            for _ in 0..n {
                decisions.push(c.decision()?);
            }
            Response::Decisions(Decisions { machine, p, stale, forecaster, cache_hit, decisions })
        }
        RESP_RANKED => {
            let machine = c.str("machine")?;
            let p = c.u64()?;
            let stale = c.boolean()?;
            let total = c.u64()?;
            // Minimum schedule: empty assignment (4) + makespan (8).
            let n = c.count(12, "schedule")?;
            let mut schedules = Vec::with_capacity(n);
            for _ in 0..n {
                let k = c.count(8, "assignment slot")?;
                let mut assignment = Vec::with_capacity(k);
                for _ in 0..k {
                    assignment.push(c.usize64("assignment")?);
                }
                let makespan = c.f64()?;
                schedules.push(Schedule { assignment, makespan });
            }
            Response::Ranked(Ranked { machine, p, stale, total, schedules })
        }
        RESP_STATS => {
            let requests = RequestCounts {
                load_report: c.u64()?,
                predict: c.u64()?,
                decide_batch: c.u64()?,
                rank: c.u64()?,
                stats: c.u64()?,
                shutdown: c.u64()?,
            };
            let cache = CacheStats { hits: c.u64()?, misses: c.u64()?, hit_rate: c.f64()? };
            let latency_us = LatencySummary {
                count: c.u64()?,
                p50_us: c.u64()?,
                p99_us: c.u64()?,
                max_us: c.u64()?,
            };
            let machines = c.u64()?;
            let uptime_secs = c.f64()?;
            let n = c.count(24, "shard")?;
            let mut shards = Vec::with_capacity(n);
            for _ in 0..n {
                shards.push(ShardStats {
                    shard: c.u64()?,
                    machines: c.u64()?,
                    load_reports: c.u64()?,
                });
            }
            Response::Stats(StatsReply {
                requests,
                cache,
                latency_us,
                machines,
                uptime_secs,
                shards,
            })
        }
        RESP_GW_STATS => {
            // Minimum backend entry: empty addr (4) + bool (1) + 3×u64.
            let n = c.count(29, "backend")?;
            let mut backends = Vec::with_capacity(n);
            for _ in 0..n {
                backends.push(BackendStats {
                    addr: c.str("addr")?,
                    healthy: c.boolean()?,
                    requests: c.u64()?,
                    failovers: c.u64()?,
                    replayed: c.u64()?,
                });
            }
            Response::GwStats(GwStatsReply {
                backends,
                hits: c.u64()?,
                misses: c.u64()?,
                failovers: c.u64()?,
                journal_frames: c.u64()?,
                journal_bytes: c.u64()?,
                uptime_secs: c.f64()?,
            })
        }
        RESP_OK => Response::Ok,
        RESP_ERROR => Response::Error(ErrorReply { message: c.str("message")? }),
        t => return Err(err(format!("unknown response tag 0x{t:02x}"))),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_model::units::secs;

    fn sample_task() -> ParagonTask {
        ParagonTask {
            dcomp_sun: secs(10.0),
            t_paragon: secs(0.5),
            to_backend: vec![DataSet::new(3, 128), DataSet::new(1, 4096)],
            from_backend: vec![DataSet::new(2, 64)],
        }
    }

    fn sample_workflow() -> Workflow {
        let m = Matrix::from_rows(&[vec![0.0, 2.5], vec![1.5, 0.0]]);
        Workflow {
            tasks: vec![
                Task { name: "t0".to_string(), exec: vec![1.0, 2.0], comm_to_next: Some(m) },
                Task { name: "t1".to_string(), exec: vec![3.0, 0.5], comm_to_next: None },
            ],
        }
    }

    fn sample_decision() -> PlacementDecision {
        PlacementDecision {
            t_front: secs(10.0),
            t_back: secs(1.0),
            c_to: secs(0.25),
            c_from: secs(0.125),
            placement: Placement::BackEnd,
        }
    }

    fn all_requests() -> Vec<Request> {
        vec![
            Request::LoadReport(LoadReport {
                machine: "sun7".to_string(),
                at: 12.5,
                load: 3.25,
                comm_frac: 0.5,
            }),
            Request::Predict(Predict {
                machine: "sun7".to_string(),
                now: 13.0,
                task: sample_task(),
                j_words: 2048,
            }),
            Request::DecideBatch(DecideBatch {
                machine: "sun7".to_string(),
                now: 13.5,
                tasks: vec![sample_task(), sample_task()],
                j_words: 1024,
            }),
            Request::Rank(Rank {
                machine: "sun7".to_string(),
                now: 14.0,
                workflow: sample_workflow(),
                front_end: 0,
                j_words: 512,
                limit: 10,
            }),
            Request::Stats,
            Request::Shutdown,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Ack(Ack { machine: "sun7".to_string(), accepted: true, p: 3 }),
            Response::Prediction(Prediction {
                machine: "sun7".to_string(),
                p: 3,
                stale: false,
                forecaster: "ewma0.30".to_string(),
                cache_hit: true,
                decision: sample_decision(),
            }),
            Response::Decisions(Decisions {
                machine: "sun7".to_string(),
                p: 2,
                stale: true,
                forecaster: "dedicated".to_string(),
                cache_hit: false,
                decisions: vec![sample_decision(), sample_decision()],
            }),
            Response::Ranked(Ranked {
                machine: "sun7".to_string(),
                p: 1,
                stale: false,
                total: 8,
                schedules: vec![
                    Schedule { assignment: vec![0, 1, 0], makespan: 4.5 },
                    Schedule { assignment: vec![1, 1, 1], makespan: 6.25 },
                ],
            }),
            Response::Stats(StatsReply {
                requests: RequestCounts {
                    load_report: 1,
                    predict: 2,
                    decide_batch: 3,
                    rank: 4,
                    stats: 5,
                    shutdown: 6,
                },
                cache: CacheStats { hits: 7, misses: 8, hit_rate: 0.875 },
                latency_us: LatencySummary { count: 9, p50_us: 10, p99_us: 20, max_us: 30 },
                machines: 2,
                uptime_secs: 123.5,
                shards: vec![
                    ShardStats { shard: 0, machines: 1, load_reports: 5 },
                    ShardStats { shard: 1, machines: 1, load_reports: 6 },
                ],
            }),
            Response::Ok,
            Response::Error(ErrorReply { message: "bad request: nope".to_string() }),
        ]
    }

    fn body(frame: &[u8]) -> &[u8] {
        let mut len = [0u8; 4];
        len.copy_from_slice(&frame[..4]);
        let len = u32::from_le_bytes(len) as usize;
        assert_eq!(len, frame.len() - 4, "length prefix covers the whole body");
        &frame[4..]
    }

    #[test]
    fn every_request_kind_round_trips() {
        for req in all_requests() {
            let kind = req.kind();
            let mut buf = Vec::new();
            assert!(encode_request(&req, &mut buf), "{kind}");
            let back = decode_request(body(&buf)).expect(kind);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn every_response_kind_round_trips() {
        for resp in all_responses() {
            let kind = resp.kind();
            let mut buf = Vec::new();
            assert!(encode_response(&resp, &mut buf), "{kind}");
            let back = decode_response(body(&buf)).expect(kind);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn frames_concatenate_cleanly() {
        let mut buf = Vec::new();
        for req in all_requests() {
            assert!(encode_request(&req, &mut buf));
        }
        let mut i = 0;
        let mut seen = 0;
        while i < buf.len() {
            let mut len = [0u8; 4];
            len.copy_from_slice(&buf[i..i + 4]);
            let len = u32::from_le_bytes(len) as usize;
            decode_request(&buf[i + 4..i + 4 + len]).expect("frame in stream");
            i += 4 + len;
            seen += 1;
        }
        assert_eq!(seen, all_requests().len());
    }

    #[test]
    fn truncated_frames_are_rejected_not_panicked() {
        for req in all_requests() {
            let mut buf = Vec::new();
            assert!(encode_request(&req, &mut buf));
            let full = body(&buf);
            for cut in 0..full.len() {
                assert!(
                    decode_request(&full[..cut]).is_err() || cut == full.len(),
                    "{} truncated at {cut} must not decode",
                    req.kind()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        assert!(encode_request(&Request::Stats, &mut buf));
        let mut b = body(&buf).to_vec();
        b.push(0);
        let e = decode_request(&b).expect_err("trailing byte");
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(decode_request(&[0x7f]).is_err());
        assert!(decode_response(&[0x01]).is_err(), "request tag is not a response tag");
        assert!(decode_request(&[]).is_err(), "empty body");
    }

    #[test]
    fn hostile_count_fields_are_bounded_by_the_frame() {
        // decide_batch claiming u32::MAX tasks in a tiny frame must be
        // rejected before any allocation happens.
        let mut b = vec![REQ_DECIDE_BATCH];
        b.extend_from_slice(&2u32.to_le_bytes());
        b.extend_from_slice(b"m7");
        b.extend_from_slice(&13.5f64.to_le_bytes());
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = decode_request(&b).expect_err("hostile count");
        assert!(e.message.contains("exceeds frame"), "{e}");
    }

    #[test]
    fn strict_bytes_are_strict() {
        // ack with boolean byte 2.
        let mut b = vec![RESP_ACK];
        b.extend_from_slice(&2u32.to_le_bytes());
        b.extend_from_slice(b"m7");
        b.push(2);
        b.extend_from_slice(&0u64.to_le_bytes());
        assert!(decode_response(&b).is_err(), "boolean byte must be 0 or 1");

        // negative seconds inside a prediction decision.
        let mut p = Vec::new();
        let resp = all_responses().remove(1);
        assert!(encode_response(&resp, &mut p));
        let mut pb = body(&p).to_vec();
        let flip = pb.len() - 9; // final f64 of the decision lives before the placement byte
        pb[flip..flip + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert!(decode_response(&pb).is_err(), "negative duration must be rejected");
    }

    #[test]
    fn preamble_is_distinguishable_from_json() {
        assert_ne!(PREAMBLE[0], b'{');
        assert_eq!(PREAMBLE, [0xBD, b'P', b'D', 0x01]);
    }

    #[test]
    fn f64_payloads_survive_bit_exactly() {
        let values = [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300];
        for v in values {
            let req = Request::LoadReport(LoadReport {
                machine: "m".to_string(),
                at: v,
                load: v,
                comm_frac: 0.5,
            });
            let mut buf = Vec::new();
            assert!(encode_request(&req, &mut buf));
            let back = decode_request(body(&buf)).expect("round-trip");
            match back {
                Request::LoadReport(r) => {
                    assert_eq!(r.at.to_le_bytes(), v.to_le_bytes());
                    assert_eq!(r.load.to_le_bytes(), v.to_le_bytes());
                }
                other => panic!("wrong kind {}", other.kind()),
            }
        }
    }
}
