//! The wire protocol: newline-delimited JSON, one request or response
//! per line.
//!
//! Every message is a flat JSON object tagged by a `"kind"` field
//! (snake_case). Requests: `load_report`, `predict`, `decide_batch`,
//! `rank`, `stats`, `shutdown`. Responses: `ack`, `prediction`,
//! `decisions`, `ranked`, `stats`, `gw_stats`, `ok`, `error`. Payload
//! fields sit next to the tag, so a predict request reads
//! `{"kind":"predict","machine":"m0","now":12.0,...}`.
//!
//! All payload fields are required (the vendored serde rejects missing
//! fields); where a field is semantically optional a sentinel is
//! documented on the struct. Unknown request kinds, missing fields, and
//! type mismatches all surface as [`serde::Error`]s, which the service
//! turns into `error` responses without dropping the connection.

use contention_model::predict::{ParagonTask, PlacementDecision};
use hetsched::eval::Schedule;
use hetsched::task::Workflow;
use serde::{Deserialize, Serialize, Value};

/// A load observation for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Machine the sample belongs to.
    pub machine: String,
    /// Sample timestamp, seconds (monotone per machine; must be ≥ 0).
    pub at: f64,
    /// Observed load average (number of competing processes, ≥ 0).
    pub load: f64,
    /// Observed communication fraction of the contenders in `[0, 1]`;
    /// pass any negative value to leave the current estimate unchanged.
    pub comm_frac: f64,
}

/// A single placement query against the forecast contention state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predict {
    /// Machine whose forecast to use.
    pub machine: String,
    /// Query time, seconds — staleness is judged against this.
    pub now: f64,
    /// The task to place.
    pub task: ParagonTask,
    /// Contender message size in words (the model's `j` parameter).
    pub j_words: u64,
}

/// A batch of placement queries sharing one forecast/profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecideBatch {
    /// Machine whose forecast to use.
    pub machine: String,
    /// Query time, seconds.
    pub now: f64,
    /// The tasks to place.
    pub tasks: Vec<ParagonTask>,
    /// Contender message size in words.
    pub j_words: u64,
}

/// Rank every schedule of a workflow under the forecast contention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rank {
    /// Machine whose forecast slows the front-end.
    pub machine: String,
    /// Query time, seconds.
    pub now: f64,
    /// The workflow to schedule (validated server-side).
    pub workflow: Workflow,
    /// Index of the contended front-end machine in the workflow.
    pub front_end: usize,
    /// Contender message size in words.
    pub j_words: u64,
    /// Maximum schedules to return (best first); `0` means all.
    pub limit: usize,
}

/// A request, tagged by `"kind"`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `load_report` — feed a load sample into the forecaster.
    LoadReport(LoadReport),
    /// `predict` — one placement decision.
    Predict(Predict),
    /// `decide_batch` — many placement decisions, one profile.
    DecideBatch(DecideBatch),
    /// `rank` — rank workflow schedules under the forecast.
    Rank(Rank),
    /// `stats` — service metrics snapshot.
    Stats,
    /// `shutdown` — stop the daemon after replying `ok`.
    Shutdown,
}

impl Request {
    /// The wire tag of this request.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::LoadReport(_) => "load_report",
            Request::Predict(_) => "predict",
            Request::DecideBatch(_) => "decide_batch",
            Request::Rank(_) => "rank",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Reply to `load_report`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ack {
    /// Machine the sample was filed under.
    pub machine: String,
    /// Whether the sample was accepted (false: invalid or time-regressing).
    pub accepted: bool,
    /// Contenders the machine's forecast currently predicts.
    pub p: u64,
}

/// Reply to `predict`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Machine the forecast came from.
    pub machine: String,
    /// Forecast contender count behind the decision.
    pub p: u64,
    /// True when the forecast was stale (no fresh samples) and the
    /// dedicated-machine profile was used instead.
    pub stale: bool,
    /// Name of the forecaster that produced the winning forecast.
    pub forecaster: String,
    /// True when the slowdown profile came from cache (no recompute).
    pub cache_hit: bool,
    /// The placement decision.
    pub decision: PlacementDecision,
}

/// Reply to `decide_batch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decisions {
    /// Machine the forecast came from.
    pub machine: String,
    /// Forecast contender count behind the decisions.
    pub p: u64,
    /// True when the dedicated fallback profile was used.
    pub stale: bool,
    /// Name of the winning forecaster.
    pub forecaster: String,
    /// True when the slowdown profile came from cache.
    pub cache_hit: bool,
    /// One decision per task, in request order.
    pub decisions: Vec<PlacementDecision>,
}

/// Reply to `rank`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ranked {
    /// Machine the forecast came from.
    pub machine: String,
    /// Forecast contender count behind the ranking.
    pub p: u64,
    /// True when the dedicated fallback profile was used.
    pub stale: bool,
    /// Total schedules evaluated (before `limit` truncation).
    pub total: u64,
    /// Best-first schedules, truncated to the request's `limit`.
    pub schedules: Vec<Schedule>,
}

/// Per-kind request counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestCounts {
    /// `load_report` requests served.
    pub load_report: u64,
    /// `predict` requests served.
    pub predict: u64,
    /// `decide_batch` requests served.
    pub decide_batch: u64,
    /// `rank` requests served.
    pub rank: u64,
    /// `stats` requests served (including the one being answered).
    pub stats: u64,
    /// `shutdown` requests served.
    pub shutdown: u64,
}

impl RequestCounts {
    /// Sum over all kinds.
    pub fn total(&self) -> u64 {
        self.load_report + self.predict + self.decide_batch + self.rank + self.stats + self.shutdown
    }
}

/// Profile-cache effectiveness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from a current cached profile.
    pub hits: u64,
    /// Requests that recomputed the profile.
    pub misses: u64,
    /// `hits / (hits + misses)`, `0` when nothing was counted.
    pub hit_rate: f64,
}

/// Request-latency summary from a fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Median latency upper bound, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency upper bound, microseconds.
    pub p99_us: u64,
    /// Largest observed latency, microseconds.
    pub max_us: u64,
}

/// Per-shard state breakdown inside a `stats` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index (machine names route here by stable hash).
    pub shard: u64,
    /// Machines whose state lives in this shard.
    pub machines: u64,
    /// `load_report` writes this shard has absorbed.
    pub load_reports: u64,
}

/// Reply to `stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Per-kind request counts.
    pub requests: RequestCounts,
    /// Profile-cache hit rate.
    pub cache: CacheStats,
    /// Request-latency summary.
    pub latency_us: LatencySummary,
    /// Machines currently tracked.
    pub machines: u64,
    /// Seconds since the service came up.
    pub uptime_secs: f64,
    /// Per-shard breakdown, one entry per shard in index order.
    pub shards: Vec<ShardStats>,
}

/// Per-backend slice of a gateway `gw_stats` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendStats {
    /// Backend address as configured at the gateway (`host:port`).
    pub addr: String,
    /// True when the backend is currently passing health probes.
    pub healthy: bool,
    /// Requests the gateway has routed to this backend.
    pub requests: u64,
    /// Requests that failed over *away* from this backend mid-flight.
    pub failovers: u64,
    /// Journal frames replayed into this backend at warm-starts.
    pub replayed: u64,
}

/// Reply to `stats` when the answering daemon is a federation gateway
/// (`predictgw`) rather than a predictd backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GwStatsReply {
    /// Per-backend request counts, in configured ring order.
    pub backends: Vec<BackendStats>,
    /// Requests dispatched to their ring owner on the first try.
    pub hits: u64,
    /// Requests dispatched to a ring successor because the owner was
    /// already marked unhealthy.
    pub misses: u64,
    /// Requests re-sent to a ring successor after an in-flight failure.
    pub failovers: u64,
    /// Load-report frames currently in the journal.
    pub journal_frames: u64,
    /// Bytes currently in the journal (length prefixes included).
    pub journal_bytes: u64,
    /// Seconds since the gateway came up.
    pub uptime_secs: f64,
}

/// Error reply (bad request; the connection stays open).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Human-readable description of what was rejected.
    pub message: String,
}

/// A response, tagged by `"kind"`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `ack` — load sample filed.
    Ack(Ack),
    /// `prediction` — one placement decision.
    Prediction(Prediction),
    /// `decisions` — batch placement decisions.
    Decisions(Decisions),
    /// `ranked` — schedules under forecast contention.
    Ranked(Ranked),
    /// `stats` — metrics snapshot.
    Stats(StatsReply),
    /// `gw_stats` — gateway metrics snapshot (per-backend counts).
    GwStats(GwStatsReply),
    /// `ok` — acknowledged with no payload (shutdown).
    Ok,
    /// `error` — request rejected.
    Error(ErrorReply),
}

impl Response {
    /// The wire tag of this response.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Ack(_) => "ack",
            Response::Prediction(_) => "prediction",
            Response::Decisions(_) => "decisions",
            Response::Ranked(_) => "ranked",
            Response::Stats(_) => "stats",
            Response::GwStats(_) => "gw_stats",
            Response::Ok => "ok",
            Response::Error(_) => "error",
        }
    }

    /// Builds an `error` response from any displayable message.
    pub fn error(message: impl std::fmt::Display) -> Self {
        Response::Error(ErrorReply { message: message.to_string() })
    }
}

/// Splices `payload` (a map) into a map that leads with the kind tag.
fn tagged(kind: &str, payload: Value) -> Value {
    let mut entries = vec![("kind".to_string(), Value::Str(kind.to_string()))];
    if let Value::Map(fields) = payload {
        entries.extend(fields);
    }
    Value::Map(entries)
}

/// Reads the `"kind"` tag of an incoming message.
fn kind_of(v: &Value) -> Result<&str, serde::Error> {
    match v.get("kind") {
        Some(Value::Str(s)) => Ok(s.as_str()),
        Some(other) => {
            Err(serde::Error::msg(format!("\"kind\" must be a string, got {}", other.kind())))
        }
        None => Err(serde::Error::msg("missing \"kind\" field")),
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::LoadReport(p) => tagged("load_report", p.to_value()),
            Request::Predict(p) => tagged("predict", p.to_value()),
            Request::DecideBatch(p) => tagged("decide_batch", p.to_value()),
            Request::Rank(p) => tagged("rank", p.to_value()),
            Request::Stats => tagged("stats", Value::Map(Vec::new())),
            Request::Shutdown => tagged("shutdown", Value::Map(Vec::new())),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match kind_of(v)? {
            "load_report" => Ok(Request::LoadReport(LoadReport::from_value(v)?)),
            "predict" => Ok(Request::Predict(Predict::from_value(v)?)),
            "decide_batch" => Ok(Request::DecideBatch(DecideBatch::from_value(v)?)),
            "rank" => Ok(Request::Rank(Rank::from_value(v)?)),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(serde::Error::msg(format!("unknown request kind {other:?}"))),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Ack(p) => tagged("ack", p.to_value()),
            Response::Prediction(p) => tagged("prediction", p.to_value()),
            Response::Decisions(p) => tagged("decisions", p.to_value()),
            Response::Ranked(p) => tagged("ranked", p.to_value()),
            Response::Stats(p) => tagged("stats", p.to_value()),
            Response::GwStats(p) => tagged("gw_stats", p.to_value()),
            Response::Ok => tagged("ok", Value::Map(Vec::new())),
            Response::Error(p) => tagged("error", p.to_value()),
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match kind_of(v)? {
            "ack" => Ok(Response::Ack(Ack::from_value(v)?)),
            "prediction" => Ok(Response::Prediction(Prediction::from_value(v)?)),
            "decisions" => Ok(Response::Decisions(Decisions::from_value(v)?)),
            "ranked" => Ok(Response::Ranked(Ranked::from_value(v)?)),
            "stats" => Ok(Response::Stats(StatsReply::from_value(v)?)),
            "gw_stats" => Ok(Response::GwStats(GwStatsReply::from_value(v)?)),
            "ok" => Ok(Response::Ok),
            "error" => Ok(Response::Error(ErrorReply::from_value(v)?)),
            other => Err(serde::Error::msg(format!("unknown response kind {other:?}"))),
        }
    }
}
