//! Workload cost models: turning operation counts into CPU demands.
//!
//! The contention model consumes *dedicated times*; these helpers convert
//! kernel operation counts (from [`crate::kernels`]) into front-end and
//! CM2 demands using per-machine effective rates. The rates are "effective"
//! in the 1996 sense: they fold in loop overheads and, for the CM2, the
//! poor virtual-processor ratio of small arrays.

use crate::kernels::{gauss, sor};
use serde::{Deserialize, Serialize};
use simcore::num::f64_from_u64;
use simcore::time::SimDuration;

/// Effective execution rates of the platform's machines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineRates {
    /// Front-end effective floating-point rate (flops/s).
    pub sun_flops: f64,
}

impl Default for MachineRates {
    fn default() -> Self {
        // A Sun 4-class workstation: ~2 Mflop/s effective.
        MachineRates { sun_flops: 2.0e6 }
    }
}

impl MachineRates {
    /// Front-end CPU demand for `flops` floating-point operations.
    pub fn sun_demand(&self, flops: u64) -> SimDuration {
        SimDuration::from_secs_f64(f64_from_u64(flops) / self.sun_flops)
    }

    /// Dedicated front-end time for `sweeps` SOR sweeps on an `m × m` grid.
    pub fn sor_sun_demand(&self, m: u64, sweeps: u64) -> SimDuration {
        self.sun_demand(sweeps * sor::flops_per_sweep(m))
    }

    /// Dedicated front-end time for Gaussian elimination on `m × (m+1)`.
    pub fn gauss_sun_demand(&self, m: u64) -> SimDuration {
        self.sun_demand(gauss::flops(m))
    }
}

/// Cost parameters of CM2 instruction streams. Each parallel instruction
/// costs `alpha + elements/rate` on the CM2 (broadcast overhead plus
/// element-wise execution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cm2ProgramParams {
    /// Front-end serial/scalar bookkeeping per algorithm step.
    pub serial_per_step: SimDuration,
    /// CM2 per-instruction overhead (broadcast/decode).
    pub instr_alpha: SimDuration,
    /// CM2 element rate for elimination/update instructions (elements/s).
    pub elim_rate: f64,
    /// CM2 element rate for reduction instructions (elements/s).
    pub reduce_rate: f64,
}

impl Default for Cm2ProgramParams {
    fn default() -> Self {
        Cm2ProgramParams {
            serial_per_step: SimDuration::from_millis(1),
            instr_alpha: SimDuration::from_micros(500),
            // Effective rates for the small per-step arrays of these
            // benchmarks (far below the machine's peak).
            elim_rate: 3.6e6,
            reduce_rate: 1.0e7,
        }
    }
}

impl Cm2ProgramParams {
    /// CM2 execution time for one parallel instruction over `elements`
    /// elements at `rate` elements/s.
    pub fn instr_time(&self, elements: u64, rate: f64) -> SimDuration {
        self.instr_alpha + SimDuration::from_secs_f64(f64_from_u64(elements) / rate)
    }

    /// Elimination-instruction time over `elements` elements.
    pub fn elim_time(&self, elements: u64) -> SimDuration {
        self.instr_time(elements, self.elim_rate)
    }

    /// Reduction-instruction time over `elements` elements.
    pub fn reduce_time(&self, elements: u64) -> SimDuration {
        self.instr_time(elements, self.reduce_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun_demand_linear_in_flops() {
        let r = MachineRates::default();
        let d = r.sun_demand(2_000_000);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sor_demand_grows_quadratically() {
        let r = MachineRates::default();
        let d100 = r.sor_sun_demand(102, 10).as_secs_f64();
        let d200 = r.sor_sun_demand(202, 10).as_secs_f64();
        assert!((d200 / d100 - 4.0).abs() < 0.01);
    }

    #[test]
    fn gauss_demand_grows_cubically() {
        let r = MachineRates::default();
        let d = r.gauss_sun_demand(100).as_secs_f64();
        let d2 = r.gauss_sun_demand(200).as_secs_f64();
        assert!((d2 / d - 8.0).abs() < 0.3);
    }

    #[test]
    fn instr_time_has_alpha_floor() {
        let p = Cm2ProgramParams::default();
        assert!(p.elim_time(0) >= p.instr_alpha);
        assert!(p.elim_time(1_000_000) > p.elim_time(1_000));
        assert!(p.reduce_time(1000) < p.elim_time(1000));
    }
}
