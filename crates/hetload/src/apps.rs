//! Benchmark and application processes.
//!
//! Constructors for the probe applications used throughout the paper's
//! experiments: transfer probes, ping-pong bursts, off-loaded CM2 tasks,
//! and front-end tasks. All are [`ScriptedApp`]s — fixed phase sequences.

use hetplat::phase::{Cm2Program, Direction, Phase, ScriptedApp};
use simcore::time::SimDuration;

/// A single outbound or inbound burst of `count` messages of `words`
/// words (the paper's unit of communication measurement).
pub fn burst_app(name: &str, count: u64, words: u64, dir: Direction) -> ScriptedApp {
    let phase = if dir.is_outbound() {
        Phase::Send { count, words, dir }
    } else {
        Phase::Recv { count, words, dir }
    };
    ScriptedApp::new(name, vec![phase])
}

/// The paper's ping-pong benchmark against the Paragon: a burst of
/// `count` messages of `words` words one way, answered by a single
/// one-word message the other way.
pub fn pingpong_app(name: &str, count: u64, words: u64, outbound: bool) -> ScriptedApp {
    let phases = if outbound {
        vec![
            Phase::Send { count, words, dir: Direction::ToParagon },
            Phase::Recv { count: 1, words: 1, dir: Direction::FromParagon },
        ]
    } else {
        vec![
            Phase::Recv { count, words, dir: Direction::FromParagon },
            Phase::Send { count: 1, words: 1, dir: Direction::ToParagon },
        ]
    };
    ScriptedApp::new(name, phases)
}

/// The Figure-1 probe: move an `m × m` matrix to the CM2 (row per
/// message) and back.
pub fn cm2_matrix_transfer_app(name: &str, m: u64) -> ScriptedApp {
    ScriptedApp::new(
        name,
        vec![
            Phase::Send { count: m, words: m, dir: Direction::ToCm2 },
            Phase::Recv { count: m, words: m, dir: Direction::FromCm2 },
        ],
    )
}

/// The paper's CM2 bandwidth-calibration benchmark: one 10⁶-element array
/// out, one word back (or the reverse), sized here by `elements`.
pub fn cm2_bandwidth_probe(name: &str, elements: u64, outbound: bool) -> ScriptedApp {
    let phases = if outbound {
        vec![
            Phase::Send { count: 1, words: elements, dir: Direction::ToCm2 },
            Phase::Recv { count: 1, words: 1, dir: Direction::FromCm2 },
        ]
    } else {
        vec![
            Phase::Send { count: 1, words: 1, dir: Direction::ToCm2 },
            Phase::Recv { count: 1, words: elements, dir: Direction::FromCm2 },
        ]
    };
    ScriptedApp::new(name, phases)
}

/// The paper's CM2 startup-calibration benchmark: `count` one-element
/// arrays out, then `count` one-element arrays back.
pub fn cm2_startup_probe(name: &str, count: u64) -> ScriptedApp {
    ScriptedApp::new(
        name,
        vec![
            Phase::Send { count, words: 1, dir: Direction::ToCm2 },
            Phase::Recv { count, words: 1, dir: Direction::FromCm2 },
        ],
    )
}

/// A task executed on the CM2: ship the input matrix, run the program,
/// ship the result back. `in_msgs`/`out_msgs` are (count, words).
pub fn cm2_offloaded_task(
    name: &str,
    in_msgs: (u64, u64),
    program: Cm2Program,
    out_msgs: (u64, u64),
) -> ScriptedApp {
    ScriptedApp::new(
        name,
        vec![
            Phase::Send { count: in_msgs.0, words: in_msgs.1, dir: Direction::ToCm2 },
            Phase::Cm2Program(program),
            Phase::Recv { count: out_msgs.0, words: out_msgs.1, dir: Direction::FromCm2 },
        ],
    )
}

/// A CM2 program run by itself (data already resident) — the Figure-3
/// probe measures exactly this phase.
pub fn cm2_program_app(name: &str, program: Cm2Program) -> ScriptedApp {
    ScriptedApp::new(name, vec![Phase::Cm2Program(program)])
}

/// A task executed locally on the front-end.
pub fn sun_task_app(name: &str, demand: SimDuration) -> ScriptedApp {
    ScriptedApp::new(name, vec![Phase::Compute(demand)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetplat::config::PlatformConfig;
    use hetplat::phase::PhaseKind;
    use hetplat::platform::Platform;

    fn ps_cfg() -> PlatformConfig {
        PlatformConfig {
            frontend: hetplat::config::FrontendParams::processor_sharing(),
            ..Default::default()
        }
    }

    #[test]
    fn matrix_transfer_has_send_and_recv() {
        let mut p = Platform::new(ps_cfg(), 0);
        let probe = p.spawn(Box::new(cm2_matrix_transfer_app("probe", 100)));
        p.run_until_done(probe).unwrap();
        let recs = p.records(probe);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, PhaseKind::Send);
        assert_eq!(recs[1].kind, PhaseKind::Recv);
        // Return path is slower (β_cm2 < β_sun in the presets).
        assert!(recs[1].elapsed() > recs[0].elapsed());
    }

    #[test]
    fn pingpong_runs_both_directions() {
        let mut p = Platform::new(ps_cfg(), 0);
        let out = p.spawn(Box::new(pingpong_app("out", 100, 200, true)));
        p.run_until_done(out).unwrap();
        assert_eq!(p.records(out).len(), 2);

        let mut p = Platform::new(ps_cfg(), 0);
        let inp = p.spawn(Box::new(pingpong_app("in", 100, 200, false)));
        p.run_until_done(inp).unwrap();
        assert_eq!(p.records(inp).len(), 2);
    }

    #[test]
    fn bandwidth_probe_dominated_by_large_transfer() {
        let cfg = ps_cfg();
        let mut p = Platform::new(cfg, 0);
        let probe = p.spawn(Box::new(cm2_bandwidth_probe("bw", 1_000_000, true)));
        p.run_until_done(probe).unwrap();
        let send = p.phase_time(probe, PhaseKind::Send).as_secs_f64();
        let recv = p.phase_time(probe, PhaseKind::Recv).as_secs_f64();
        assert!(send > 100.0 * recv, "send {send} recv {recv}");
    }

    #[test]
    fn startup_probe_counts_both_ways() {
        let mut p = Platform::new(ps_cfg(), 0);
        let probe = p.spawn(Box::new(cm2_startup_probe("st", 1000)));
        p.run_until_done(probe).unwrap();
        let cfg = ps_cfg();
        let expect_send =
            1000.0 * (cfg.cm2.xfer_alpha_to + cfg.cm2.xfer_per_word_to * 1).as_secs_f64();
        let send = p.phase_time(probe, PhaseKind::Send).as_secs_f64();
        assert!((send - expect_send).abs() < 1e-9);
    }

    #[test]
    fn offloaded_task_runs_three_phases() {
        use crate::costs::Cm2ProgramParams;
        use crate::programs::gauss_program;
        let prog = gauss_program(20, &Cm2ProgramParams::default());
        let mut p = Platform::new(ps_cfg(), 0);
        let probe = p.spawn(Box::new(cm2_offloaded_task("task", (20, 21), prog, (1, 20))));
        p.run_until_done(probe).unwrap();
        let kinds: Vec<PhaseKind> = p.records(probe).iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![PhaseKind::Send, PhaseKind::Cm2Program, PhaseKind::Recv]);
    }
}
