//! Gaussian elimination.
//!
//! The paper's second validation benchmark: an `m × (m+1)` augmented-matrix
//! solver. The real kernel below (forward elimination with partial
//! pivoting plus back substitution) supplies correctness tests and the
//! operation counts that size the simulated workloads.

use simcore::num::{f64_from_u64, f64_from_usize};

/// Dense augmented system `A·x = b` stored as an `m × (m+1)` row-major
/// matrix (column `m` is `b`).
#[derive(Debug, Clone)]
pub struct Augmented {
    m: usize,
    a: Vec<f64>,
}

impl Augmented {
    /// Builds from rows; each row must have `m + 1` entries.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let m = rows.len();
        assert!(m > 0, "empty system");
        let mut a = Vec::with_capacity(m * (m + 1));
        for r in rows {
            assert_eq!(r.len(), m + 1, "row width must be m+1");
            a.extend_from_slice(r);
        }
        Augmented { m, a }
    }

    /// A well-conditioned random-ish test system of size `m`, filled from
    /// a deterministic recurrence with a dominant diagonal.
    pub fn test_system(m: usize) -> Self {
        let mut a = vec![0.0; m * (m + 1)];
        let mut s = 0x9e37_79b9_u64;
        for i in 0..m {
            for j in 0..=m {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = (f64_from_u64(s >> 33) / f64_from_u64(1 << 31)) - 1.0; // [-1, 1)
                a[i * (m + 1) + j] = v;
            }
            // Diagonal dominance keeps the system well conditioned.
            a[i * (m + 1) + i] += f64_from_usize(m);
        }
        Augmented { m, a }
    }

    /// System size `m`.
    pub fn size(&self) -> usize {
        self.m
    }

    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * (self.m + 1) + j]
    }

    /// Computes `A·x − b` (the residual) for a candidate solution.
    pub fn residual(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.m);
        (0..self.m)
            .map(|i| {
                let ax: f64 = (0..self.m).map(|j| self.at(i, j) * x[j]).sum();
                ax - self.at(i, self.m)
            })
            .collect()
    }

    /// Solves by Gaussian elimination with partial pivoting. Returns
    /// `None` when a pivot collapses (singular system).
    pub fn solve(&self) -> Option<Vec<f64>> {
        let m = self.m;
        let w = m + 1;
        let mut a = self.a.clone();
        for k in 0..m {
            // Partial pivoting: the serial/scalar step of the algorithm.
            let pivot_row = (k..m)
                .max_by(|&i, &j| {
                    a[i * w + k].abs().partial_cmp(&a[j * w + k].abs()).expect("finite")
                })
                .expect("nonempty range");
            if a[pivot_row * w + k].abs() < 1e-300 {
                return None;
            }
            if pivot_row != k {
                for j in 0..w {
                    a.swap(k * w + j, pivot_row * w + j);
                }
            }
            // Elimination: the data-parallel bulk of the work.
            let pivot = a[k * w + k];
            for i in k + 1..m {
                let factor = a[i * w + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[i * w + k] = 0.0;
                for j in k + 1..w {
                    a[i * w + j] -= factor * a[k * w + j];
                }
            }
        }
        // Back substitution.
        let mut x = vec![0.0; m];
        for k in (0..m).rev() {
            let mut s = a[k * w + m];
            for j in k + 1..m {
                s -= a[k * w + j] * x[j];
            }
            x[k] = s / a[k * w + k];
        }
        Some(x)
    }
}

/// Total floating-point operations for elimination plus back substitution
/// on an `m × (m+1)` system: `≈ 2m³/3 + 3m²/2`.
pub fn flops(m: u64) -> u64 {
    (2 * m * m * m) / 3 + (3 * m * m) / 2
}

/// Words of the augmented matrix.
pub fn matrix_words(m: u64) -> u64 {
    m * (m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // x + y = 3, 2x - y = 0  =>  x = 1, y = 2.
        let sys = Augmented::from_rows(&[vec![1.0, 1.0, 3.0], vec![2.0, -1.0, 0.0]]);
        let x = sys.solve().unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading zero forces a row swap.
        let sys = Augmented::from_rows(&[vec![0.0, 1.0, 2.0], vec![1.0, 0.0, 3.0]]);
        let x = sys.solve().unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_detected() {
        let sys = Augmented::from_rows(&[vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]]);
        assert!(sys.solve().is_none());
    }

    #[test]
    fn random_systems_have_tiny_residuals() {
        for m in [5usize, 20, 100] {
            let sys = Augmented::test_system(m);
            let x = sys.solve().expect("well-conditioned system");
            let r = sys.residual(&x);
            let max = r.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            assert!(max < 1e-9, "m={m}: residual {max}");
        }
    }

    #[test]
    fn flops_cubic_growth() {
        assert_eq!(flops(1), 1); // 2/3 truncates; dominated term tiny at m=1
        let f100 = flops(100);
        let f200 = flops(200);
        // Doubling m scales work by ≈ 8.
        let ratio = f200 as f64 / f100 as f64;
        assert!((ratio - 8.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(matrix_words(200), 200 * 201);
    }

    #[test]
    #[should_panic(expected = "m+1")]
    fn malformed_rows_rejected() {
        Augmented::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    }
}
