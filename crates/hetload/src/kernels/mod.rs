//! Real numeric kernels behind the paper's benchmarks.

pub mod gauss;
pub mod sor;
