//! Successive over-relaxation for Laplace's equation.
//!
//! One of the paper's two validation benchmarks. The kernel is a real
//! red-black SOR solver on an `m × m` grid; its operation counts feed the
//! cost models that parameterize the simulated workloads (the paper's SOR
//! was CM-Fortran; the asymptotics — Θ(m²) work per sweep — are what the
//! contention model consumes).

use simcore::num::f64_from_usize;

/// Red-black SOR solver for ∇²u = 0 on the unit square with Dirichlet
/// boundary conditions.
#[derive(Debug, Clone)]
pub struct SorGrid {
    m: usize,
    /// Row-major `m × m` values, boundaries included.
    u: Vec<f64>,
    omega: f64,
}

impl SorGrid {
    /// An `m × m` grid (`m ≥ 3`) with `u = 1` on the top edge and `0`
    /// elsewhere, using the near-optimal relaxation factor for Laplace.
    pub fn new(m: usize) -> Self {
        assert!(m >= 3, "grid must be at least 3×3");
        let mut u = vec![0.0; m * m];
        // Top edge (row 0) held at u = 1.
        u[..m].fill(1.0);
        // Optimal ω for the 5-point Laplacian on an m×m grid.
        let rho = (std::f64::consts::PI / f64_from_usize(m - 1)).cos();
        let omega = 2.0 / (1.0 + (1.0 - rho * rho).sqrt());
        SorGrid { m, u, omega }
    }

    /// Grid side length.
    pub fn size(&self) -> usize {
        self.m
    }

    /// Relaxation factor in use.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.u[row * self.m + col]
    }

    /// One red-black sweep (both colors). Returns the largest absolute
    /// update applied.
    pub fn sweep(&mut self) -> f64 {
        let mut max_delta: f64 = 0.0;
        for color in 0..2 {
            for row in 1..self.m - 1 {
                let start_col = 1 + (row + color) % 2;
                let mut col = start_col;
                while col < self.m - 1 {
                    let idx = row * self.m + col;
                    let neighbors = self.u[idx - 1]
                        + self.u[idx + 1]
                        + self.u[idx - self.m]
                        + self.u[idx + self.m];
                    let gs = 0.25 * neighbors;
                    let delta = self.omega * (gs - self.u[idx]);
                    self.u[idx] += delta;
                    max_delta = max_delta.max(delta.abs());
                    col += 2;
                }
            }
        }
        max_delta
    }

    /// Sweeps until the largest update falls below `tol` or `max_sweeps`
    /// is reached; returns the sweeps executed.
    pub fn solve(&mut self, tol: f64, max_sweeps: usize) -> usize {
        for i in 1..=max_sweeps {
            if self.sweep() < tol {
                return i;
            }
        }
        max_sweeps
    }

    /// Residual ‖∇²u‖∞ over interior points.
    pub fn residual(&self) -> f64 {
        let mut r: f64 = 0.0;
        for row in 1..self.m - 1 {
            for col in 1..self.m - 1 {
                let idx = row * self.m + col;
                let lap =
                    self.u[idx - 1] + self.u[idx + 1] + self.u[idx - self.m] + self.u[idx + self.m]
                        - 4.0 * self.u[idx];
                r = r.max(lap.abs());
            }
        }
        r
    }
}

/// Floating-point operations per red-black sweep of an `m × m` grid
/// (≈ 6 per interior point: 3 adds, a scale, a subtract, an AXPY).
pub fn flops_per_sweep(m: u64) -> u64 {
    let interior = m.saturating_sub(2);
    6 * interior * interior
}

/// Words of state for an `m × m` grid.
pub fn grid_words(m: u64) -> u64 {
    m * m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_small_grid() {
        let mut g = SorGrid::new(17);
        let sweeps = g.solve(1e-10, 10_000);
        assert!(sweeps < 10_000, "did not converge ({sweeps} sweeps)");
        assert!(g.residual() < 1e-8, "residual {}", g.residual());
    }

    #[test]
    fn solution_is_bounded_by_boundary_values() {
        let mut g = SorGrid::new(17);
        g.solve(1e-10, 10_000);
        for row in 0..17 {
            for col in 0..17 {
                let v = g.get(row, col);
                assert!((-1e-9..=1.0 + 1e-9).contains(&v), "u[{row}][{col}] = {v}");
            }
        }
    }

    #[test]
    fn solution_symmetric_in_columns() {
        // The boundary condition is symmetric about the vertical midline.
        let mut g = SorGrid::new(33);
        g.solve(1e-12, 20_000);
        for row in 1..32 {
            for col in 1..16 {
                let a = g.get(row, col);
                let b = g.get(row, 32 - col);
                assert!((a - b).abs() < 1e-7, "asymmetry at ({row},{col}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn sor_beats_gauss_seidel_iteration_count() {
        // ω > 1 must converge in fewer sweeps than plain Gauss–Seidel.
        let mut sor = SorGrid::new(33);
        let sor_sweeps = sor.solve(1e-8, 50_000);
        let mut gs = SorGrid::new(33);
        gs.omega = 1.0;
        let gs_sweeps = gs.solve(1e-8, 50_000);
        assert!(sor_sweeps * 2 < gs_sweeps, "SOR {sor_sweeps} sweeps vs GS {gs_sweeps}");
    }

    #[test]
    fn omega_in_valid_range() {
        for m in [3usize, 10, 100, 1000] {
            let g = SorGrid::new(m);
            assert!((1.0..2.0).contains(&g.omega()), "omega {}", g.omega());
        }
    }

    #[test]
    fn flop_count_scales_quadratically() {
        assert_eq!(flops_per_sweep(3), 6);
        assert_eq!(flops_per_sweep(102), 6 * 100 * 100);
        assert_eq!(grid_words(200), 40_000);
    }

    #[test]
    #[should_panic(expected = "3×3")]
    fn tiny_grid_rejected() {
        SorGrid::new(2);
    }
}
