//! CM2 instruction-stream builders for the benchmark algorithms.
//!
//! These mirror how the CM-Fortran codes of the paper drive the machine:
//! the front-end runs scalar loop control (`Serial`), issues data-parallel
//! array operations (`Parallel`), and blocks only where a scalar result is
//! needed (`Sync`). The front-end can therefore pre-execute serial code
//! while the CM2 works — exactly the overlap behind the paper's
//! `T_cm2 = max(dcomp + didle, dserial × slowdown)` law.

use crate::costs::Cm2ProgramParams;
use hetplat::phase::{Cm2Instr, Cm2Program};

/// Gaussian elimination on an `m × (m+1)` augmented system.
///
/// Per elimination step `k` the front-end runs scalar bookkeeping and then
/// issues one data-parallel elimination over the trailing
/// `(m−k−1) × (m−k+1)` block; no scalar result is needed until the final
/// residual reduction, so the serial stream runs ahead of the CM2.
pub fn gauss_program(m: u64, p: &Cm2ProgramParams) -> Cm2Program {
    let mut instrs = Vec::with_capacity(2 * m as usize + 2);
    for k in 0..m {
        instrs.push(Cm2Instr::Serial(p.serial_per_step));
        let rows = m - k - 1;
        let cols = m - k + 1;
        instrs.push(Cm2Instr::Parallel(p.elim_time(rows * cols)));
    }
    // Final residual-norm reduction: the one scalar the host must wait for.
    instrs.push(Cm2Instr::Parallel(p.reduce_time(m)));
    instrs.push(Cm2Instr::Sync);
    Cm2Program::new(instrs)
}

/// Red-black SOR on an `m × m` grid for `sweeps` sweeps, checking
/// convergence (a scalar reduction the host waits on) every
/// `check_every` sweeps.
pub fn sor_program(m: u64, sweeps: u64, check_every: u64, p: &Cm2ProgramParams) -> Cm2Program {
    assert!(check_every > 0, "check_every must be positive");
    let interior = m.saturating_sub(2) * m.saturating_sub(2);
    let half = interior / 2;
    let mut instrs = Vec::new();
    for s in 1..=sweeps {
        instrs.push(Cm2Instr::Serial(p.serial_per_step));
        instrs.push(Cm2Instr::Parallel(p.elim_time(half))); // red half-sweep
        instrs.push(Cm2Instr::Parallel(p.elim_time(interior - half))); // black
        if s % check_every == 0 || s == sweeps {
            instrs.push(Cm2Instr::Parallel(p.reduce_time(interior)));
            instrs.push(Cm2Instr::Sync);
            instrs.push(Cm2Instr::Serial(p.serial_per_step));
        }
    }
    Cm2Program::new(instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::SimDuration;

    #[test]
    fn gauss_program_shape() {
        let p = Cm2ProgramParams::default();
        let prog = gauss_program(10, &p);
        // 10 × (serial + parallel) + reduce + sync.
        assert_eq!(prog.instrs.len(), 22);
        assert_eq!(prog.parallel_count(), 11);
        assert_eq!(prog.serial_instr_total(), p.serial_per_step * 10);
    }

    #[test]
    fn gauss_parallel_work_scales_cubically() {
        let p = Cm2ProgramParams { instr_alpha: SimDuration::ZERO, ..Default::default() };
        let w100 = gauss_program(100, &p).parallel_total().as_secs_f64();
        let w200 = gauss_program(200, &p).parallel_total().as_secs_f64();
        assert!((w200 / w100 - 8.0).abs() < 0.4, "ratio {}", w200 / w100);
    }

    #[test]
    fn gauss_serial_scales_linearly() {
        let p = Cm2ProgramParams::default();
        let dispatch = SimDuration::from_micros(50);
        let s100 = gauss_program(100, &p).serial_total(dispatch).as_secs_f64();
        let s200 = gauss_program(200, &p).serial_total(dispatch).as_secs_f64();
        assert!((s200 / s100 - 2.0).abs() < 0.02);
    }

    #[test]
    fn sor_program_checks_periodically() {
        let p = Cm2ProgramParams::default();
        let prog = sor_program(100, 10, 5, &p);
        let syncs = prog.instrs.iter().filter(|i| matches!(i, Cm2Instr::Sync)).count();
        assert_eq!(syncs, 2); // sweeps 5 and 10
                              // Every sweep has two half-sweeps + per-check reductions.
        assert_eq!(prog.parallel_count(), 22);
    }

    #[test]
    fn sor_final_sweep_always_checked() {
        let p = Cm2ProgramParams::default();
        let prog = sor_program(50, 7, 5, &p);
        let syncs = prog.instrs.iter().filter(|i| matches!(i, Cm2Instr::Sync)).count();
        assert_eq!(syncs, 2); // sweeps 5 and 7
    }
}
