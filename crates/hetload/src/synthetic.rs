//! Synthetic benchmark generation.
//!
//! The paper verifies model generality on "synthetic benchmarks which
//! employ a representative subset of the operations provided by the CM2"
//! and on "different sets of contention generators". These constructors
//! produce randomized instances of both from a seed.

use crate::costs::Cm2ProgramParams;
use crate::generators::{CommGenerator, GenDirection};
use hetplat::config::PlatformConfig;
use hetplat::phase::{Cm2Instr, Cm2Program};
use rand::Rng;
use simcore::num::sat_u64_from_f64;
use simcore::rng::SimRng;

/// A random CM2 program: `steps` algorithm steps, each with serial
/// bookkeeping, 1–3 parallel array operations over `min_elems..max_elems`
/// elements, and an occasional scalar reduction the host must wait on.
pub fn random_cm2_program(
    rng: &mut SimRng,
    steps: usize,
    min_elems: u64,
    max_elems: u64,
    p: &Cm2ProgramParams,
) -> Cm2Program {
    assert!(min_elems <= max_elems && max_elems > 0);
    let mut instrs = Vec::new();
    for _ in 0..steps {
        let serial = p.serial_per_step.mul_f64(rng.gen_range(0.2..2.0));
        instrs.push(Cm2Instr::Serial(serial));
        let ops = rng.gen_range(1..=3);
        for _ in 0..ops {
            let elems = rng.gen_range(min_elems..=max_elems);
            instrs.push(Cm2Instr::Parallel(p.elim_time(elems)));
        }
        if rng.gen_bool(0.2) {
            let elems = rng.gen_range(min_elems..=max_elems);
            instrs.push(Cm2Instr::Parallel(p.reduce_time(elems)));
            instrs.push(Cm2Instr::Sync);
        }
    }
    instrs.push(Cm2Instr::Sync);
    Cm2Program::new(instrs)
}

/// Description of one synthetic contender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorSpec {
    /// Fraction of time spent communicating.
    pub comm_frac: f64,
    /// Message size in words.
    pub msg_words: u64,
    /// Direction pattern.
    pub dir: GenDirection,
}

/// Draws `count` random contender specs: communication fractions in
/// `0.1..0.9`, message sizes log-uniform in `1..=2000` words, alternating
/// directions.
pub fn random_generator_specs(rng: &mut SimRng, count: usize) -> Vec<GeneratorSpec> {
    (0..count)
        .map(|_| {
            let comm_frac = rng.gen_range(0.1..0.9);
            let log = rng.gen_range(0.0..=f64::ln(2000.0));
            let msg_words = sat_u64_from_f64(log.exp().round().max(1.0));
            GeneratorSpec { comm_frac, msg_words, dir: GenDirection::Alternate }
        })
        .collect()
}

/// Materializes specs into generator processes.
pub fn build_generators(specs: &[GeneratorSpec], cfg: &PlatformConfig) -> Vec<CommGenerator> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| CommGenerator::new(format!("gen{i}"), s.comm_frac, s.msg_words, s.dir, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::root_rng;
    use simcore::time::SimDuration;

    #[test]
    fn random_program_is_well_formed() {
        let mut rng = root_rng(3);
        let p = Cm2ProgramParams::default();
        let prog = random_cm2_program(&mut rng, 20, 100, 10_000, &p);
        assert!(prog.parallel_count() >= 20);
        assert!(prog.serial_instr_total() > SimDuration::ZERO);
        assert!(matches!(prog.instrs.last(), Some(Cm2Instr::Sync)));
    }

    #[test]
    fn random_programs_differ_across_seeds() {
        let p = Cm2ProgramParams::default();
        let a = random_cm2_program(&mut root_rng(1), 10, 10, 1000, &p);
        let b = random_cm2_program(&mut root_rng(2), 10, 10, 1000, &p);
        assert_ne!(a.instrs, b.instrs);
    }

    #[test]
    fn random_programs_reproducible() {
        let p = Cm2ProgramParams::default();
        let a = random_cm2_program(&mut root_rng(9), 10, 10, 1000, &p);
        let b = random_cm2_program(&mut root_rng(9), 10, 10, 1000, &p);
        assert_eq!(a.instrs, b.instrs);
    }

    #[test]
    fn specs_within_documented_ranges() {
        let mut rng = root_rng(4);
        let specs = random_generator_specs(&mut rng, 50);
        assert_eq!(specs.len(), 50);
        for s in &specs {
            assert!((0.1..0.9).contains(&s.comm_frac));
            assert!((1..=2000).contains(&s.msg_words));
        }
    }

    #[test]
    fn build_generators_names_uniquely() {
        let cfg = PlatformConfig::default();
        let mut rng = root_rng(5);
        let specs = random_generator_specs(&mut rng, 3);
        let gens = build_generators(&specs, &cfg);
        use hetplat::phase::AppProcess;
        let names: Vec<&str> = gens.iter().map(|g| g.name()).collect();
        assert_eq!(names, vec!["gen0", "gen1", "gen2"]);
    }
}
