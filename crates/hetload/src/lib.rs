//! # hetload — workloads for the coupled-platform simulations
//!
//! The applications the paper's experiments run: real SOR and Gaussian-
//! elimination kernels (with the operation counts that size their
//! simulated counterparts), CM2 instruction-stream builders, transfer and
//! ping-pong probes, contention generators, and synthetic benchmark
//! generation.
//!
//! modelcheck: no-todo-dbg, lossy-cast

#![warn(missing_docs)]

pub mod apps;
pub mod costs;
pub mod generators;
pub mod kernels;
pub mod programs;
pub mod synthetic;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::apps::{
        burst_app, cm2_bandwidth_probe, cm2_matrix_transfer_app, cm2_offloaded_task,
        cm2_program_app, cm2_startup_probe, pingpong_app, sun_task_app,
    };
    pub use crate::costs::{Cm2ProgramParams, MachineRates};
    pub use crate::generators::{
        message_estimate, CommGenerator, CpuHog, DaemonNoise, GenDirection, IoHog, TimedCpuHog,
    };
    pub use crate::kernels::gauss::{self, Augmented};
    pub use crate::kernels::sor::{self, SorGrid};
    pub use crate::programs::{gauss_program, sor_program};
    pub use crate::synthetic::{
        build_generators, random_cm2_program, random_generator_specs, GeneratorSpec,
    };
}

pub use prelude::*;
