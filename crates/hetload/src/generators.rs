//! Contention generators.
//!
//! The paper emulates production load with generator processes. Two kinds
//! appear in the experiments:
//!
//! * **CPU hogs** — compute-bound processes that never block, used on the
//!   Sun/CM2 platform (`p` of them produce the `p + 1` slowdown);
//! * **compute/communicate loops** — processes that alternate computation
//!   with message bursts to/from the Paragon, parameterized by the
//!   fraction of time spent communicating and the message size.
//!
//! Generators jitter their cycle lengths and start at random offsets, so
//! their phases decorrelate — the source of the run-to-run variance the
//! paper observes on production systems.

use hetplat::config::PlatformConfig;
use hetplat::phase::{AppProcess, Direction, Phase};
use simcore::num::{f64_from_u64, sat_u64_from_f64};
use simcore::rng::{jitter_factor, SimRng};
use simcore::time::{SimDuration, SimTime};

/// A compute-bound contender: an endless stream of CPU work.
#[derive(Debug, Clone)]
pub struct CpuHog {
    name: String,
    chunk: SimDuration,
}

impl CpuHog {
    /// A hog that computes forever in `chunk`-sized pieces.
    pub fn new(name: impl Into<String>) -> Self {
        CpuHog { name: name.into(), chunk: SimDuration::from_millis(100) }
    }
}

impl AppProcess for CpuHog {
    fn next_phase(&mut self, _now: SimTime, _rng: &mut SimRng) -> Phase {
        Phase::Compute(self.chunk)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Background system activity: short CPU bursts a few percent of the
/// time, as the daemons of a production workstation would produce. The
/// paper's measurements ran on production systems; this is the noise
/// floor that keeps "actual" measurements honestly apart from the model.
#[derive(Debug, Clone)]
pub struct DaemonNoise {
    name: String,
    duty: f64,
    period: SimDuration,
    busy_next: bool,
}

impl DaemonNoise {
    /// A daemon consuming `duty` (e.g. 0.03) of the CPU in bursts spaced
    /// roughly `period` apart.
    pub fn new(name: impl Into<String>, duty: f64, period: SimDuration) -> Self {
        assert!((0.0..1.0).contains(&duty), "duty outside [0,1)");
        DaemonNoise { name: name.into(), duty, period, busy_next: true }
    }

    /// The default production noise floor: ~1.5% CPU in 250 ms cycles.
    pub fn default_noise() -> Self {
        DaemonNoise::new("daemon", 0.015, SimDuration::from_millis(250))
    }
}

impl AppProcess for DaemonNoise {
    fn next_phase(&mut self, _now: SimTime, rng: &mut SimRng) -> Phase {
        let jit = jitter_factor(rng, 0.5);
        if self.busy_next {
            self.busy_next = false;
            Phase::Compute(self.period.mul_f64(self.duty * jit))
        } else {
            self.busy_next = true;
            Phase::Sleep(self.period.mul_f64((1.0 - self.duty) * jit))
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A CPU hog that leaves the machine at a fixed time — for time-varying
/// load scenarios (the paper's §4: "contending applications execute for
/// only part of the execution of a given application").
#[derive(Debug, Clone)]
pub struct TimedCpuHog {
    name: String,
    chunk: SimDuration,
    departs_at: SimTime,
}

impl TimedCpuHog {
    /// A hog that computes until `departs_at`, then exits.
    pub fn new(name: impl Into<String>, departs_at: SimTime) -> Self {
        TimedCpuHog { name: name.into(), chunk: SimDuration::from_millis(100), departs_at }
    }
}

impl AppProcess for TimedCpuHog {
    fn next_phase(&mut self, now: SimTime, _rng: &mut SimRng) -> Phase {
        if now >= self.departs_at {
            Phase::Done
        } else {
            // Never overshoot the departure time by more than a sliver.
            let left = self.departs_at - now;
            Phase::Compute(self.chunk.min(left))
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// An I/O-bound contender: alternates a sliver of CPU work with local
/// disk operations. The intro's point about *load characteristics*: a
/// machine "loaded" with p of these barely slows a compute task, unlike
/// p CPU hogs — which is why load averages alone mislead schedulers.
#[derive(Debug, Clone)]
pub struct IoHog {
    name: String,
    cpu_slice: SimDuration,
    io_words: u64,
    do_io_next: bool,
}

impl IoHog {
    /// An I/O-bound process: `cpu_slice` of computation between disk
    /// operations of `io_words` words.
    pub fn new(name: impl Into<String>, cpu_slice: SimDuration, io_words: u64) -> Self {
        IoHog { name: name.into(), cpu_slice, io_words, do_io_next: false }
    }

    /// A typical I/O-bound daemon: 1 ms of CPU per 64 k-word disk read.
    pub fn typical(name: impl Into<String>) -> Self {
        IoHog::new(name, SimDuration::from_millis(1), 65_536)
    }
}

impl AppProcess for IoHog {
    fn next_phase(&mut self, _now: SimTime, rng: &mut SimRng) -> Phase {
        self.do_io_next = !self.do_io_next;
        if self.do_io_next {
            Phase::DiskIo {
                words: sat_u64_from_f64(f64_from_u64(self.io_words) * jitter_factor(rng, 0.3)),
            }
        } else {
            Phase::Compute(self.cpu_slice.mul_f64(jitter_factor(rng, 0.3)))
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Which way a communication generator pushes data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenDirection {
    /// Always front-end → back-end.
    Outbound,
    /// Always back-end → front-end.
    Inbound,
    /// Alternate directions between bursts (the paper's `delay_commⁱ` is
    /// the average over both).
    Alternate,
}

/// Estimated dedicated marginal time per message in a pipelined burst —
/// the bottleneck stage of the transfer pipeline. Used to size generator
/// bursts so they occupy a target fraction of time.
pub fn message_estimate(cfg: &PlatformConfig, words: u64, dir: Direction) -> SimDuration {
    match dir {
        Direction::ToCm2 => cfg.cm2.xfer_alpha_to + cfg.cm2.xfer_per_word_to * words,
        Direction::FromCm2 => cfg.cm2.xfer_alpha_from + cfg.cm2.xfer_per_word_from * words,
        Direction::ToParagon => {
            let pg = &cfg.paragon;
            // Blocking (windowed) send: conversion and wire serialize per
            // message; a large window pipelines them instead.
            let conv = pg.conv_demand_out(words);
            let mut wire = pg.wire_service(words) + pg.node_overhead;
            if pg.path == hetplat::config::CommPath::TwoHops {
                wire += pg.nx_service(words);
            }
            if pg.send_window <= 1 {
                conv + wire
            } else {
                conv.max(wire)
            }
        }
        Direction::FromParagon => {
            let pg = &cfg.paragon;
            let mut stage =
                pg.conv_demand_in(words).max(pg.wire_service(words)).max(pg.node_emit_gap);
            if pg.path == hetplat::config::CommPath::TwoHops {
                stage = stage.max(pg.nx_service(words));
            }
            stage
        }
    }
}

/// A contender alternating computation with Paragon communication.
#[derive(Debug, Clone)]
pub struct CommGenerator {
    name: String,
    comm_frac: f64,
    msg_words: u64,
    cycle: SimDuration,
    jitter: f64,
    per_message: SimDuration,
    dir: GenDirection,
    started: bool,
    comm_next: bool,
    outbound_next: bool,
}

impl CommGenerator {
    /// Builds a generator that communicates `comm_frac` of the time using
    /// `msg_words`-word messages, with the default 1 s duty cycle and 20%
    /// jitter. `cfg` supplies the dedicated per-message estimate used to
    /// size bursts.
    pub fn new(
        name: impl Into<String>,
        comm_frac: f64,
        msg_words: u64,
        dir: GenDirection,
        cfg: &PlatformConfig,
    ) -> Self {
        assert!((0.0..=1.0).contains(&comm_frac), "fraction outside [0,1]");
        assert!(msg_words > 0, "empty messages");
        let est_dir = match dir {
            GenDirection::Inbound => Direction::FromParagon,
            _ => Direction::ToParagon,
        };
        CommGenerator {
            name: name.into(),
            comm_frac,
            msg_words,
            cycle: SimDuration::from_secs(1),
            jitter: 0.2,
            per_message: message_estimate(cfg, msg_words, est_dir),
            dir,
            started: false,
            comm_next: true,
            outbound_next: true,
        }
    }

    /// Overrides the duty-cycle length.
    pub fn with_cycle(mut self, cycle: SimDuration) -> Self {
        self.cycle = cycle;
        self
    }

    /// Overrides the jitter fraction (0 disables).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Messages per burst for the current parameters.
    pub fn burst_count(&self) -> u64 {
        let comm_time = self.cycle.as_secs_f64() * self.comm_frac;
        let per = self.per_message.as_secs_f64().max(1e-9);
        sat_u64_from_f64((comm_time / per).round().max(1.0))
    }
}

impl AppProcess for CommGenerator {
    fn next_phase(&mut self, _now: SimTime, rng: &mut SimRng) -> Phase {
        if !self.started {
            self.started = true;
            // Random start offset decorrelates generator phases.
            let offset = self.cycle.mul_f64(jitter_factor(rng, 0.99) * 0.5);
            return Phase::Sleep(offset);
        }
        let jit = jitter_factor(rng, self.jitter);
        if self.comm_next && self.comm_frac > 0.0 {
            self.comm_next = false;
            let count = sat_u64_from_f64((f64_from_u64(self.burst_count()) * jit).round().max(1.0));
            let outbound = match self.dir {
                GenDirection::Outbound => true,
                GenDirection::Inbound => false,
                GenDirection::Alternate => {
                    self.outbound_next = !self.outbound_next;
                    !self.outbound_next
                }
            };
            if outbound {
                Phase::Send { count, words: self.msg_words, dir: Direction::ToParagon }
            } else {
                Phase::Recv { count, words: self.msg_words, dir: Direction::FromParagon }
            }
        } else {
            self.comm_next = true;
            let comp = self.cycle.mul_f64((1.0 - self.comm_frac) * jit);
            if comp.is_zero() {
                // Fully communication-bound: yield a minimal compute tick
                // so the loop still alternates.
                Phase::Compute(SimDuration::from_micros(10))
            } else {
                Phase::Compute(comp)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetplat::phase::PhaseKind;
    use hetplat::platform::Platform;
    use simcore::rng::root_rng;

    fn ps_cfg() -> PlatformConfig {
        PlatformConfig {
            frontend: hetplat::config::FrontendParams::processor_sharing(),
            ..Default::default()
        }
    }

    #[test]
    fn hog_computes_forever() {
        let mut hog = CpuHog::new("h");
        let mut rng = root_rng(0);
        for _ in 0..10 {
            assert!(matches!(hog.next_phase(SimTime::ZERO, &mut rng), Phase::Compute(_)));
        }
    }

    #[test]
    fn generator_alternates_compute_and_comm() {
        let cfg = ps_cfg();
        let mut g = CommGenerator::new("g", 0.5, 200, GenDirection::Outbound, &cfg);
        let mut rng = root_rng(1);
        assert!(matches!(g.next_phase(SimTime::ZERO, &mut rng), Phase::Sleep(_)));
        let mut kinds = Vec::new();
        for _ in 0..6 {
            kinds.push(g.next_phase(SimTime::ZERO, &mut rng).kind());
        }
        assert_eq!(
            kinds,
            vec![
                PhaseKind::Send,
                PhaseKind::Compute,
                PhaseKind::Send,
                PhaseKind::Compute,
                PhaseKind::Send,
                PhaseKind::Compute
            ]
        );
    }

    #[test]
    fn alternate_direction_flips() {
        let cfg = ps_cfg();
        let mut g =
            CommGenerator::new("g", 0.5, 200, GenDirection::Alternate, &cfg).with_jitter(0.0);
        let mut rng = root_rng(2);
        let _ = g.next_phase(SimTime::ZERO, &mut rng); // sleep
        let mut dirs = Vec::new();
        for _ in 0..4 {
            match g.next_phase(SimTime::ZERO, &mut rng) {
                Phase::Send { .. } => dirs.push("out"),
                Phase::Recv { .. } => dirs.push("in"),
                _ => {}
            }
            let _ = g.next_phase(SimTime::ZERO, &mut rng); // compute
        }
        assert_eq!(dirs, vec!["out", "in", "out", "in"]);
    }

    #[test]
    fn measured_comm_fraction_tracks_target() {
        // Run a generator alone and check its dedicated-time duty cycle.
        let cfg = ps_cfg();
        for target in [0.25, 0.5, 0.76] {
            let mut p = Platform::new(cfg, 7);
            let g =
                CommGenerator::new("g", target, 200, GenDirection::Outbound, &cfg).with_jitter(0.0);
            let id = p.spawn(Box::new(g));
            p.run_until(SimTime::ZERO + SimDuration::from_secs(60));
            let comm = p.phase_time(id, PhaseKind::Send).as_secs_f64();
            let comp = p.phase_time(id, PhaseKind::Compute).as_secs_f64();
            let frac = comm / (comm + comp);
            assert!((frac - target).abs() < 0.08, "target {target}: measured {frac}");
        }
    }

    #[test]
    fn burst_count_scales_with_fraction() {
        let cfg = ps_cfg();
        let lo = CommGenerator::new("g", 0.2, 200, GenDirection::Outbound, &cfg);
        let hi = CommGenerator::new("g", 0.8, 200, GenDirection::Outbound, &cfg);
        assert!(hi.burst_count() > 2 * lo.burst_count());
    }

    #[test]
    fn message_estimate_monotone_in_words() {
        let cfg = ps_cfg();
        for dir in
            [Direction::ToCm2, Direction::FromCm2, Direction::ToParagon, Direction::FromParagon]
        {
            let small = message_estimate(&cfg, 10, dir);
            let large = message_estimate(&cfg, 10_000, dir);
            assert!(large > small, "{dir:?}");
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_rejected() {
        let cfg = ps_cfg();
        CommGenerator::new("g", 1.5, 100, GenDirection::Outbound, &cfg);
    }
}
