//! Property tests for the batched prediction engine: the cached
//! [`SlowdownProfile`] path must agree with the direct per-call slowdown
//! evaluation to 1e-12 on arbitrary mixes, delay tables, and tasks.

use contention_model::comm::{LinearCommModel, PiecewiseCommModel};
use contention_model::dataset::DataSet;
use contention_model::delay::{CommDelayTable, CompDelayTable};
use contention_model::mix::WorkloadMix;
use contention_model::paragon;
use contention_model::predict::{ParagonPredictor, ParagonTask};
use contention_model::profile::{ProfileCache, SlowdownProfile};
use contention_model::units::{prob, secs, BytesPerSec};
use proptest::prelude::*;

fn linear(alpha: f64, beta_wps: f64) -> LinearCommModel {
    LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_wps))
}

/// A fixed calibrated predictor (values from a real calibration run);
/// only the mix and the tasks vary per case.
fn predictor() -> ParagonPredictor {
    ParagonPredictor {
        comm_to: PiecewiseCommModel::new(1024, linear(1.6e-3, 79_000.0), linear(5.6e-3, 104_000.0)),
        comm_from: PiecewiseCommModel::new(
            1024,
            linear(1.5e-3, 149_000.0),
            linear(2.0e-3, 83_000.0),
        ),
        comm_delays: CommDelayTable::new(
            vec![0.27, 0.61, 1.02, 1.40],
            vec![0.19, 0.49, 0.81, 1.10],
        ),
        comp_delays: CompDelayTable::new(
            vec![1, 500, 1000],
            vec![
                vec![0.22, 0.37, 0.37, 0.37],
                vec![0.66, 1.15, 1.59, 1.90],
                vec![1.68, 3.59, 5.52, 7.00],
            ],
        ),
    }
}

/// A [`CompDelayTable`] whose rows scale with the bucket, built from one
/// generated row.
fn comp_table(row: &[f64]) -> CompDelayTable {
    CompDelayTable::new(
        vec![1, 500, 1000],
        vec![
            row.to_vec(),
            row.iter().map(|d| d * 2.0).collect(),
            row.iter().map(|d| d * 3.0).collect(),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    fn cached_profile_matches_direct_path(
        fracs in prop::collection::vec(0.01f64..0.99, 1..10),
        comp_on_comm in prop::collection::vec(0.0f64..3.0, 1..6),
        comm_on_comm in prop::collection::vec(0.0f64..3.0, 1..6),
        row in prop::collection::vec(0.0f64..3.0, 1..6),
        j in 1u64..5000,
    ) {
        let mix = WorkloadMix::from_fracs(&fracs);
        let comm_t = CommDelayTable::new(comp_on_comm, comm_on_comm);
        let comp_t = comp_table(&row);
        let profile = SlowdownProfile::compute(&mix, &comm_t, &comp_t);
        prop_assert!(
            (profile.comm_slowdown().get() - paragon::comm_slowdown(&mix, &comm_t).get()).abs() <= 1e-12
        );
        prop_assert!(
            (profile.comp_slowdown(j).get() - paragon::comp_slowdown(&mix, &comp_t, j).get()).abs() <= 1e-12
        );
        for b in 0..profile.bucket_count() {
            prop_assert!(
                (profile.comp_slowdown_at_bucket(b).get()
                    - paragon::comp_slowdown_at_bucket(&mix, &comp_t, b).get())
                .abs()
                    <= 1e-12
            );
        }
    }

    fn cache_stays_consistent_across_mutations(
        fracs in prop::collection::vec(0.01f64..0.99, 2..8),
        extra in 0.01f64..0.99,
        comp_on_comm in prop::collection::vec(0.0f64..3.0, 1..6),
        comm_on_comm in prop::collection::vec(0.0f64..3.0, 1..6),
        row in prop::collection::vec(0.0f64..3.0, 1..6),
    ) {
        let comm_t = CommDelayTable::new(comp_on_comm, comm_on_comm);
        let comp_t = comp_table(&row);
        let mut mix = WorkloadMix::from_fracs(&fracs);
        let mut cache = ProfileCache::new();
        // After every in-place mutation the cache must serve a profile
        // that agrees with a fresh direct evaluation.
        cache.profile_for(&mix, &comm_t, &comp_t);
        mix.add(prob(extra));
        let after_add = cache.profile_for(&mix, &comm_t, &comp_t).comm_slowdown().get();
        prop_assert!((after_add - paragon::comm_slowdown(&mix, &comm_t).get()).abs() <= 1e-12);
        mix.remove(0);
        let after_remove = cache.profile_for(&mix, &comm_t, &comp_t).comm_slowdown().get();
        prop_assert!((after_remove - paragon::comm_slowdown(&mix, &comm_t).get()).abs() <= 1e-12);
    }

    fn batched_decisions_match_per_call(
        fracs in prop::collection::vec(0.01f64..0.99, 1..8),
        dcomp in 0.1f64..50.0,
        tpar in 0.1f64..20.0,
        words in 1u64..4096,
    ) {
        let pred = predictor();
        let mix = WorkloadMix::from_fracs(&fracs);
        let tasks: Vec<ParagonTask> = (0..4)
            .map(|i| ParagonTask {
                dcomp_sun: secs(dcomp + i as f64),
                t_paragon: secs(tpar),
                to_backend: vec![DataSet::burst(100, words)],
                from_backend: vec![DataSet::burst(100, words)],
            })
            .collect();
        let profile = pred.profile(&mix);
        let batched = pred.decide_batch(&tasks, &profile, words);
        prop_assert_eq!(batched.len(), tasks.len());
        for (task, got) in tasks.iter().zip(&batched) {
            let direct = pred.decide(task, &mix, words);
            prop_assert_eq!(got.placement, direct.placement);
            prop_assert!((got.t_front.get() - direct.t_front.get()).abs() <= 1e-12);
            prop_assert!((got.t_back.get() - direct.t_back.get()).abs() <= 1e-12);
            prop_assert!((got.c_to.get() - direct.c_to.get()).abs() <= 1e-12);
            prop_assert!((got.c_from.get() - direct.c_from.get()).abs() <= 1e-12);
        }
    }
}
