//! The units layer must be *representation-transparent*: every newtype
//! wraps the same `f64` bit pattern the pre-refactor code carried, and
//! arithmetic routed through the wrappers is bit-identical to the raw
//! formulas it replaced. These tests pin that contract — first that the
//! constructors enforce their domains (property-tested across the float
//! range), then that `dcomm` and the placement `decide` paths reproduce
//! inline raw-`f64` recomputations to 1e-12 (exactly, in fact).

use contention_model::cm2::Cm2TaskCosts;
use contention_model::comm::{LinearCommModel, PiecewiseCommModel};
use contention_model::dataset::DataSet;
use contention_model::delay::{CommDelayTable, CompDelayTable};
use contention_model::mix::WorkloadMix;
use contention_model::predict::{Cm2Predictor, Cm2Task, ParagonPredictor, ParagonTask, Placement};
use contention_model::units::{secs, words, BytesPerSec, Prob, Seconds, Slowdown};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Domain enforcement
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Each case draws two candidates: an arbitrary bit pattern (covers
    // NaN payloads, both infinities, subnormals, huge magnitudes) and a
    // uniform float straddling the domain boundary (exercises the
    // accept side, which raw bit patterns almost never hit).

    #[test]
    fn prob_accepts_exactly_the_unit_interval(
        bits in 0u64..=u64::MAX, near in -2.0f64..=2.0
    ) {
        for x in [f64::from_bits(bits), near] {
            let ok = (0.0..=1.0).contains(&x);
            prop_assert_eq!(Prob::try_new(x).is_some(), ok, "{}", x);
            if ok {
                prop_assert_eq!(Prob::new(x).get().to_bits(), x.to_bits());
            }
        }
    }

    #[test]
    fn slowdown_accepts_exactly_finite_ge_one(
        bits in 0u64..=u64::MAX, near in -1.0f64..=3.0
    ) {
        for x in [f64::from_bits(bits), near] {
            let ok = x.is_finite() && x >= 1.0;
            prop_assert_eq!(Slowdown::try_new(x).is_some(), ok, "{}", x);
            if ok {
                prop_assert_eq!(Slowdown::new(x).get().to_bits(), x.to_bits());
            }
        }
    }

    #[test]
    fn seconds_accepts_exactly_non_negative(
        bits in 0u64..=u64::MAX, near in -1.0f64..=1.0
    ) {
        // ∞ is a legal duration (open-ended load phases); NaN and
        // negatives are not.
        for x in [f64::from_bits(bits), near] {
            let ok = x >= 0.0;
            prop_assert_eq!(Seconds::try_new(x).is_some(), ok, "{}", x);
            if ok {
                prop_assert_eq!(Seconds::new(x).get().to_bits(), x.to_bits());
            }
        }
    }

    #[test]
    fn bandwidth_accepts_exactly_finite_positive(
        bits in 0u64..=u64::MAX, near in -1.0f64..=1.0
    ) {
        for x in [f64::from_bits(bits), near] {
            let ok = x.is_finite() && x > 0.0;
            prop_assert_eq!(BytesPerSec::try_new(x).is_some(), ok, "{}", x);
        }
    }
}

#[test]
fn constructors_reject_the_canonical_bad_inputs() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5, 1.5] {
        assert!(Prob::try_new(bad).is_none(), "Prob accepted {bad}");
    }
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.999, -2.0] {
        assert!(Slowdown::try_new(bad).is_none(), "Slowdown accepted {bad}");
    }
    for bad in [f64::NAN, f64::NEG_INFINITY, -1e-300] {
        assert!(Seconds::try_new(bad).is_none(), "Seconds accepted {bad}");
    }
}

// ---------------------------------------------------------------------------
// Bit-identity of the typed arithmetic paths
// ---------------------------------------------------------------------------

/// Representative calibrated fixtures (same values as the bench crate).
fn cm2_predictor() -> Cm2Predictor {
    Cm2Predictor { comm_to: linear(660e-6, 497_000.0), comm_from: linear(660e-6, 249_000.0) }
}

fn linear(alpha: f64, beta_wps: f64) -> LinearCommModel {
    LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_wps))
}

/// Raw pre-refactor dcomm: `Σᵢ Nᵢ × (α + sizeᵢ/β)`, in the same
/// accumulation order as [`LinearCommModel::dcomm`].
fn raw_linear_dcomm(alpha: f64, beta_wps: f64, sets: &[(u64, u64)]) -> f64 {
    sets.iter().map(|&(messages, size)| messages as f64 * (alpha + size as f64 / beta_wps)).sum()
}

const SETS: [(u64, u64); 4] = [(1, 64), (1000, 200), (37, 1024), (2, 1_000_000)];

fn datasets() -> Vec<DataSet> {
    SETS.iter().map(|&(m, w)| DataSet::new(m, w)).collect()
}

#[test]
fn linear_dcomm_is_bit_identical_to_raw_formula() {
    let m = linear(660e-6, 497_000.0);
    let typed = m.dcomm(&datasets()).get();
    let raw = raw_linear_dcomm(m.alpha, m.beta.words_per_sec(), &SETS);
    assert_eq!(typed.to_bits(), raw.to_bits(), "typed {typed} vs raw {raw}");
}

#[test]
fn piecewise_dcomm_is_bit_identical_to_raw_formula() {
    let small = linear(1.6e-3, 79_000.0);
    let large = linear(5.6e-3, 104_000.0);
    let m = PiecewiseCommModel::new(1024, small, large);
    let typed = m.dcomm(&datasets()).get();
    let raw: f64 = SETS
        .iter()
        .map(|&(messages, size)| {
            let (a, b) = if size <= 1024 {
                (small.alpha, small.beta.words_per_sec())
            } else {
                (large.alpha, large.beta.words_per_sec())
            };
            messages as f64 * (a + size as f64 / b)
        })
        .sum();
    assert_eq!(typed.to_bits(), raw.to_bits(), "typed {typed} vs raw {raw}");
    // And the piece router agrees with the paper's inclusive boundary.
    assert_eq!(m.piece(words(1024)), &small);
    assert_eq!(m.piece(words(1025)), &large);
}

#[test]
fn cm2_decide_is_bit_identical_to_raw_formulas() {
    let pred = cm2_predictor();
    let task = Cm2Task {
        costs: Cm2TaskCosts::new(secs(12.0), secs(2.5), secs(0.2), secs(0.4)),
        to_backend: datasets(),
        from_backend: vec![DataSet::new(5, 4096)],
    };
    for p in 0..6u32 {
        let d = pred.decide(&task, p);
        let s = f64::from(p + 1);
        let t_front = 12.0 * s;
        let t_back = (2.5 + 0.2f64).max(0.4 * s);
        let c_to =
            raw_linear_dcomm(pred.comm_to.alpha, pred.comm_to.beta.words_per_sec(), &SETS) * s;
        let c_from = raw_linear_dcomm(
            pred.comm_from.alpha,
            pred.comm_from.beta.words_per_sec(),
            &[(5, 4096)],
        ) * s;
        assert_eq!(d.t_front.get().to_bits(), t_front.to_bits());
        assert_eq!(d.t_back.get().to_bits(), t_back.to_bits());
        assert_eq!(d.c_to.get().to_bits(), c_to.to_bits());
        assert_eq!(d.c_from.get().to_bits(), c_from.to_bits());
        let raw_placement =
            if t_front > t_back + c_to + c_from { Placement::BackEnd } else { Placement::FrontEnd };
        assert_eq!(d.placement, raw_placement, "p = {p}");
    }
}

#[test]
fn paragon_decide_matches_raw_formulas_to_1e12() {
    let comm_delays = CommDelayTable::new(vec![0.27, 0.61, 1.02], vec![0.19, 0.49, 0.81]);
    let comp_delays = CompDelayTable::new(
        vec![1, 500, 1000],
        vec![vec![0.22, 0.37, 0.37], vec![0.66, 1.15, 1.59], vec![1.68, 3.59, 5.52]],
    );
    let pred = ParagonPredictor {
        comm_to: PiecewiseCommModel::new(1024, linear(1.6e-3, 79_000.0), linear(5.6e-3, 104_000.0)),
        comm_from: PiecewiseCommModel::new(
            1024,
            linear(1.5e-3, 149_000.0),
            LinearCommModel::from_fit(-4.0e-3, 83_000.0),
        ),
        comm_delays: comm_delays.clone(),
        comp_delays: comp_delays.clone(),
    };
    let mix = WorkloadMix::from_fracs(&[0.25, 0.76, 0.4]);
    let task = ParagonTask {
        dcomp_sun: secs(30.0),
        t_paragon: secs(3.8),
        to_backend: datasets(),
        from_backend: vec![DataSet::new(5, 4096)],
    };
    let j = 800;
    let d = pred.decide(&task, &mix, j);

    // Raw slowdowns, same accumulation order as `paragon::{comm,comp}_slowdown`.
    let mut s_comm = 1.0;
    let mut s_comp = 1.0;
    for i in 1..=mix.p() {
        s_comm += mix.pcomp(i).get() * comm_delays.computing(i);
        s_comm += mix.pcomm(i).get() * comm_delays.communicating(i);
        s_comp += mix.pcomp(i).get() * i as f64;
        s_comp += mix.pcomm(i).get() * comp_delays.delay(i, j);
    }
    let raw_t_sun = 30.0 * s_comp;
    let raw_c_to = pred.comm_to.dcomm(&task.to_backend).get() * s_comm;
    let raw_c_from = pred.comm_from.dcomm(&task.from_backend).get() * s_comm;

    assert!((d.t_front.get() - raw_t_sun).abs() <= 1e-12, "{} vs {raw_t_sun}", d.t_front);
    assert!((d.c_to.get() - raw_c_to).abs() <= 1e-12, "{} vs {raw_c_to}", d.c_to);
    assert!((d.c_from.get() - raw_c_from).abs() <= 1e-12, "{} vs {raw_c_from}", d.c_from);
    assert_eq!(d.t_back.get().to_bits(), 3.8f64.to_bits());
    let raw_placement = if raw_t_sun > 3.8 + raw_c_to + raw_c_from {
        Placement::BackEnd
    } else {
        Placement::FrontEnd
    };
    assert_eq!(d.placement, raw_placement);
}

#[test]
fn every_produced_slowdown_is_at_least_one() {
    // The Slowdown type makes "contention speeds you up" unrepresentable;
    // spot-check the public producers anyway, across mixes.
    let comm_delays = CommDelayTable::new(vec![0.27, 0.61], vec![0.19, 0.49]);
    let comp_delays = CompDelayTable::new(vec![1, 1000], vec![vec![0.2, 0.4], vec![1.7, 3.6]]);
    for fracs in [&[][..], &[0.0][..], &[1.0, 1.0][..], &[0.3, 0.9][..]] {
        let mix = WorkloadMix::from_fracs(fracs);
        assert!(contention_model::paragon::comm_slowdown(&mix, &comm_delays).get() >= 1.0);
        assert!(contention_model::paragon::comp_slowdown(&mix, &comp_delays, 500).get() >= 1.0);
    }
    for p in 0..8 {
        assert!(contention_model::cm2::slowdown(p).get() >= 1.0);
    }
}
