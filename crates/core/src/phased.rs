//! Time-varying contention (paper §4, future work).
//!
//! The base model assumes "contention is experienced for the entire
//! duration of an application". The paper's future work asks for "the
//! setting in which contending applications execute for only part of the
//! execution of a given application. Since system load may vary during
//! the execution of an application, the slowdown factors should be
//! recalculated when the job mix changes."
//!
//! This module implements that: a [`LoadTimeline`] is a sequence of load
//! phases, each with its own slowdown factor (produced by the base model
//! for whatever mix holds during that phase). A task with a dedicated
//! demand executes at rate `1/slowdown` through each phase; the predicted
//! completion time follows from integrating that rate.

use crate::units::{secs, Seconds, Slowdown};
use serde::{Deserialize, Serialize};

/// One load phase: a slowdown factor holding for a span of wall time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPhase {
    /// Wall-clock length of the phase. The final phase of a timeline may
    /// be unbounded ([`Seconds::INFINITY`]).
    pub duration: Seconds,
    /// Slowdown factor during the phase.
    pub slowdown: Slowdown,
}

impl LoadPhase {
    /// Builds a phase. (Validation — non-negative duration, factor ≥ 1 —
    /// is carried by the parameter types.)
    pub fn new(duration: Seconds, slowdown: Slowdown) -> Self {
        LoadPhase { duration, slowdown }
    }
}

/// A piecewise-constant load profile. The last phase is implicitly
/// extended forever (the job mix stays put until something changes).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadTimeline {
    phases: Vec<LoadPhase>,
}

impl LoadTimeline {
    /// An always-dedicated timeline.
    pub fn dedicated() -> Self {
        LoadTimeline { phases: vec![LoadPhase::new(Seconds::INFINITY, Slowdown::ONE)] }
    }

    /// A constant-slowdown timeline (the base model's assumption).
    pub fn constant(slowdown: Slowdown) -> Self {
        LoadTimeline { phases: vec![LoadPhase::new(Seconds::INFINITY, slowdown)] }
    }

    /// Builds from phases; the last phase is extended to infinity.
    pub fn new(phases: Vec<LoadPhase>) -> Self {
        assert!(!phases.is_empty(), "empty timeline");
        LoadTimeline { phases }
    }

    /// Appends a phase (e.g. when the job mix changes at a known time).
    pub fn push(&mut self, phase: LoadPhase) {
        self.phases.push(phase);
    }

    /// The phases, in order.
    pub fn phases(&self) -> &[LoadPhase] {
        &self.phases
    }

    /// The slowdown in effect at wall-clock offset `t` from the start of
    /// the timeline. (An empty timeline — only constructible via
    /// `Default` — reads as dedicated.)
    pub fn slowdown_at(&self, t: Seconds) -> Slowdown {
        let mut elapsed = Seconds::ZERO;
        let mut last = Slowdown::ONE;
        for ph in &self.phases {
            elapsed += ph.duration;
            last = ph.slowdown;
            if t < elapsed {
                return ph.slowdown;
            }
        }
        last
    }

    /// Predicted wall-clock time to complete `demand` seconds of
    /// dedicated work starting at offset `start` into the timeline.
    ///
    /// Work progresses at rate `1 / slowdown` through each phase; the
    /// result is exact for piecewise-constant profiles. Returns
    /// [`Seconds::INFINITY`] only if demand is infinite.
    pub fn completion_time(&self, demand: Seconds, start: Seconds) -> Seconds {
        let mut remaining = demand.get();
        let start = start.get();
        let mut clock = 0.0; // offset into the timeline
        let mut waited = 0.0; // wall time consumed by the task
        for (idx, ph) in self.phases.iter().enumerate() {
            let phase_end = clock + ph.duration.get();
            // Skip phases that end before the task starts — except the
            // final one, which extends to infinity regardless of its
            // recorded duration.
            if idx + 1 != self.phases.len() && phase_end <= start {
                clock = phase_end;
                continue;
            }
            let begin = clock.max(start);
            let span = if idx + 1 == self.phases.len() {
                f64::INFINITY // final phase extends forever
            } else {
                phase_end - begin
            };
            let doable = span / ph.slowdown.get();
            if doable >= remaining {
                return secs(waited + remaining * ph.slowdown.get());
            }
            remaining -= doable;
            waited += span;
            clock = phase_end;
        }
        // Unreachable: the final phase spans to infinity.
        unreachable!("final phase is unbounded");
    }

    /// The *average* slowdown a task of the given demand experiences when
    /// started at `start` — useful for comparing against the base model's
    /// constant-slowdown assumption. The `max(1.0)` guards against the
    /// ratio rounding a hair below 1 when phase spans are subtracted from
    /// the demand.
    pub fn effective_slowdown(&self, demand: Seconds, start: Seconds) -> Slowdown {
        if demand == Seconds::ZERO {
            return self.slowdown_at(start);
        }
        Slowdown::new((self.completion_time(demand, start) / demand).max(1.0))
    }
}

/// Builds a timeline for the Sun/CM2 platform from a schedule of hog
/// counts: `(duration, p)` pairs.
pub fn cm2_timeline(segments: &[(Seconds, u32)]) -> LoadTimeline {
    LoadTimeline::new(
        segments.iter().map(|&(d, p)| LoadPhase::new(d, crate::cm2::slowdown(p))).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(s: f64) -> Slowdown {
        Slowdown::new(s)
    }

    fn phase(duration: f64, slowdown: f64) -> LoadPhase {
        LoadPhase::new(secs(duration), sd(slowdown))
    }

    #[test]
    fn constant_timeline_matches_base_model() {
        let tl = LoadTimeline::constant(sd(4.0));
        assert_eq!(tl.completion_time(secs(10.0), Seconds::ZERO), secs(40.0));
        assert_eq!(tl.effective_slowdown(secs(10.0), Seconds::ZERO), sd(4.0));
        assert_eq!(tl.slowdown_at(secs(123.0)), sd(4.0));
    }

    #[test]
    fn dedicated_timeline_is_identity() {
        let tl = LoadTimeline::dedicated();
        assert_eq!(tl.completion_time(secs(7.5), secs(3.0)), secs(7.5));
    }

    #[test]
    fn load_drops_midway() {
        // 10 s of slowdown 3, then dedicated. A 6 s task does 10/3 s of
        // work in the first phase, the rest at full speed.
        let tl = LoadTimeline::new(vec![
            phase(10.0, 3.0),
            LoadPhase::new(Seconds::INFINITY, Slowdown::ONE),
        ]);
        let done_in_phase1 = 10.0 / 3.0;
        let expect = 10.0 + (6.0 - done_in_phase1);
        assert!((tl.completion_time(secs(6.0), Seconds::ZERO).get() - expect).abs() < 1e-12);
        // A short task finishing inside phase 1 sees the full slowdown.
        assert!((tl.completion_time(secs(2.0), Seconds::ZERO).get() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn start_offset_skips_earlier_phases() {
        let tl = LoadTimeline::new(vec![
            phase(10.0, 5.0),
            LoadPhase::new(Seconds::INFINITY, Slowdown::ONE),
        ]);
        // Starting after the loaded phase: dedicated speed.
        assert_eq!(tl.completion_time(secs(4.0), secs(10.0)), secs(4.0));
        // Starting halfway through it: 5 s at 1/5 rate = 1 s done.
        let t = tl.completion_time(secs(4.0), secs(5.0));
        assert!((t.get() - (5.0 + 3.0)).abs() < 1e-12, "{t}");
    }

    #[test]
    fn effective_slowdown_between_phase_extremes() {
        let tl = LoadTimeline::new(vec![
            phase(8.0, 4.0),
            LoadPhase::new(Seconds::INFINITY, Slowdown::ONE),
        ]);
        for demand in [0.5, 2.0, 5.0, 50.0] {
            let s = tl.effective_slowdown(secs(demand), Seconds::ZERO);
            assert!(sd(1.0) <= s && s <= sd(4.0), "demand {demand}: {s}");
        }
        // Long tasks amortize the loaded phase away.
        assert!(tl.effective_slowdown(secs(1000.0), Seconds::ZERO) < sd(1.05));
        // Short ones see the full factor.
        assert_eq!(tl.effective_slowdown(secs(1.0), Seconds::ZERO), sd(4.0));
    }

    #[test]
    fn cm2_timeline_uses_p_plus_one() {
        let tl = cm2_timeline(&[(secs(5.0), 3), (secs(10.0), 0)]);
        assert_eq!(tl.slowdown_at(Seconds::ZERO), sd(4.0));
        assert_eq!(tl.slowdown_at(secs(7.0)), Slowdown::ONE);
    }

    #[test]
    fn slowdown_recalculation_on_mix_change() {
        // Scenario from the paper's future work: mid-run the mix changes;
        // extend the timeline and re-predict the remaining work.
        let mut tl = LoadTimeline::new(vec![phase(20.0, 2.0)]);
        let total = tl.completion_time(secs(30.0), Seconds::ZERO);
        // First 20 s complete 10 s of work at slowdown 2; the final
        // (implicitly extended) phase finishes the rest at slowdown 2.
        assert_eq!(total, secs(60.0));
        // New job arrives at t = 20 → slowdown 3 from then on.
        tl.push(LoadPhase::new(Seconds::INFINITY, sd(3.0)));
        let updated = tl.completion_time(secs(30.0), Seconds::ZERO);
        assert_eq!(updated, secs(20.0 + 20.0 * 3.0));
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_speedups() {
        phase(1.0, 0.5);
    }
}
