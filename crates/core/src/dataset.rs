//! Application-dependent communication descriptions.
//!
//! The paper parameterizes communication as *data sets*: groups of
//! same-sized messages. `Nᵢ` messages of `sizeᵢ` words each cross the link
//! for the i-th data set. These values are application-dependent — supplied
//! by the user or derived from the problem size (e.g. an `M × M` matrix sent
//! row-by-row is one data set of `M` messages of `M` words).

use serde::{Deserialize, Serialize};

/// A group of same-sized messages: `messages` transfers of `words` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataSet {
    /// Number of messages in the group (`Nᵢ`).
    pub messages: u64,
    /// Words per message (`sizeᵢ`).
    pub words: u64,
}

impl DataSet {
    /// A data set of `messages` messages of `words` words each.
    pub const fn new(messages: u64, words: u64) -> Self {
        DataSet { messages, words }
    }

    /// A single message of `words` words.
    pub const fn single(words: u64) -> Self {
        DataSet { messages: 1, words }
    }

    /// An `m × n` matrix transferred one row per message: `m` messages of
    /// `n` words.
    pub const fn matrix_rows(m: u64, n: u64) -> Self {
        DataSet { messages: m, words: n }
    }

    /// A burst in the style of the paper's ping-pong benchmark:
    /// `count` messages of `words` words.
    pub const fn burst(count: u64, words: u64) -> Self {
        DataSet { messages: count, words }
    }

    /// Total words across the whole group.
    pub const fn total_words(&self) -> u64 {
        self.messages * self.words
    }
}

/// Total words across a slice of data sets.
pub fn total_words(sets: &[DataSet]) -> u64 {
    sets.iter().map(|s| s.total_words()).sum()
}

/// The largest message size (in words) appearing in `sets`; 0 when empty.
/// The paper uses the *maximum message size used in the system* to pick the
/// `j` parameter of the computation slowdown.
pub fn max_message_words(sets: &[DataSet]) -> u64 {
    sets.iter().map(|s| s.words).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(DataSet::single(10), DataSet { messages: 1, words: 10 });
        assert_eq!(DataSet::matrix_rows(4, 5).total_words(), 20);
        assert_eq!(DataSet::burst(1000, 200).messages, 1000);
    }

    #[test]
    fn totals_and_max() {
        let sets = [DataSet::new(3, 100), DataSet::new(2, 500)];
        assert_eq!(total_words(&sets), 1300);
        assert_eq!(max_message_words(&sets), 500);
        assert_eq!(max_message_words(&[]), 0);
    }
}
