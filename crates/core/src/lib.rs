//! # contention-model
//!
//! The analytical contention model of *"Modeling the Effects of Contention
//! on the Performance of Heterogeneous Applications"* (Figueira & Berman,
//! HPDC 1996): slowdown factors that rescale dedicated computation and
//! communication costs into realistic predictions for **non-dedicated
//! two-machine heterogeneous platforms**, so that a scheduler can rank
//! task-to-machine allocations under load.
//!
//! The crate is pure math — no simulator, no clocks. System-dependent
//! parameters (startup times `α`, effective bandwidths `β`, the piecewise
//! threshold, and the delay tables) are produced once per platform by the
//! companion `calibration` crate; application-dependent parameters (data
//! sets, compute/communicate fractions) are supplied by the user.
//!
//! ## Map of the model
//!
//! | Paper section | Module |
//! |---|---|
//! | Data sets `Nᵢ × sizeᵢ` | [`dataset`] |
//! | `dcomm` (single-piece and piecewise) | [`comm`] |
//! | Sun/CM2 `slowdown = p+1`, `T_cm2 = max(…)` | [`cm2`] |
//! | `pcompᵢ` / `pcommᵢ` dynamic program | [`mix`] |
//! | `delay_compⁱ`, `delay_commⁱ`, `delay_commⁱʲ` | [`delay`] |
//! | Sun/Paragon slowdown formulas | [`paragon`] |
//! | Cached slowdown factors (batch engine) | [`profile`] |
//! | Inequality (1) and placement | [`predict`] |
//! | §4 future work: time-varying load | [`phased`] |
//! | §4 future work: memory constraints | [`memory`] |
//!
//! ## Example
//!
//! ```
//! use contention_model::prelude::*;
//!
//! // Sun/CM2: a 12s front-end task vs 3s on the CM2 + transfers.
//! let predictor = Cm2Predictor {
//!     comm_to: LinearCommModel::new(secs(1e-3), BytesPerSec::from_words_per_sec(1_000_000.0)),
//!     comm_from: LinearCommModel::new(secs(1e-3), BytesPerSec::from_words_per_sec(500_000.0)),
//! };
//! let task = Cm2Task {
//!     costs: Cm2TaskCosts::new(secs(12.0), secs(2.5), secs(0.2), secs(0.4)),
//!     to_backend: vec![DataSet::matrix_rows(512, 512)],
//!     from_backend: vec![DataSet::matrix_rows(512, 512)],
//! };
//! // Dedicated: off-load wins.
//! assert_eq!(predictor.decide(&task, 0).placement, Placement::BackEnd);
//! // Under heavy front-end contention the serial feed of the CM2 slows
//! // too, but the front-end execution slows more; the model quantifies it.
//! let d = predictor.decide(&task, 3);
//! assert!(d.t_front == secs(48.0));
//! ```

//!
//! modelcheck: no-panic, naked-f64, lossy-cast, missing-docs, float-env
#![warn(missing_docs)]

pub mod cm2;
pub mod comm;
pub mod dataset;
pub mod delay;
pub mod memory;
pub mod mix;
pub mod paragon;
pub mod phased;
pub mod predict;
pub mod profile;
pub mod units;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::cm2::{comm_cost as cm2_comm_cost, slowdown as cm2_slowdown, Cm2TaskCosts};
    pub use crate::comm::{LinearCommModel, PiecewiseCommModel};
    pub use crate::dataset::{max_message_words, total_words, DataSet};
    pub use crate::delay::{CommDelayTable, CompDelayTable, SMALL_MESSAGE_CUTOFF_WORDS};
    pub use crate::memory::MemoryModel;
    pub use crate::mix::WorkloadMix;
    pub use crate::paragon::{
        comm_cost as paragon_comm_cost, comm_slowdown as paragon_comm_slowdown,
        comp_cost as paragon_comp_cost, comp_slowdown as paragon_comp_slowdown,
    };
    pub use crate::phased::{cm2_timeline, LoadPhase, LoadTimeline};
    pub use crate::predict::{
        Cm2Predictor, Cm2Task, ParagonPredictor, ParagonTask, Placement, PlacementDecision,
    };
    pub use crate::profile::{ProfileCache, SlowdownProfile};
    pub use crate::units::{
        prob, secs, words, BytesPerSec, Prob, Seconds, Slowdown, Words, WORD_BYTES,
    };
}

pub use prelude::*;
