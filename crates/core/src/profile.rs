//! Cached slowdown factors for a fixed workload mix.
//!
//! The Sun/Paragon slowdown formulas ([`crate::paragon`]) are `O(p)` sums
//! over the mix distribution. A scheduler ranking hundreds of candidate
//! placements against the *same* contention state pays that `O(p)` once
//! per prediction — wasted work, since the sums depend only on the mix
//! and the (fixed) delay tables, not on the task.
//!
//! A [`SlowdownProfile`] folds the mix once into
//!
//! * the communication-slowdown **scalar**, and
//! * one computation-slowdown factor **per message-size bucket** of the
//!   [`CompDelayTable`],
//!
//! after which every prediction is a multiply. The profile is stamped with
//! the mix's [`epoch`](WorkloadMix::epoch), so staleness after an
//! `add`/`remove` is detected with a single integer compare — that is what
//! [`ProfileCache`] automates.
//!
//! Numerically, the cached path is *identical* to the direct path: both
//! accumulate the same products in the same order, so results agree
//! bit-for-bit, not merely to rounding (the property tests in
//! `tests/model_properties.rs` pin this to 1e-12).

use crate::delay::{select_bucket, CommDelayTable, CompDelayTable};
use crate::mix::WorkloadMix;
use crate::paragon;
use crate::units::Slowdown;

/// Slowdown factors of one workload mix, evaluated once and reusable for
/// every prediction made against that mix.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownProfile {
    /// Epoch of the mix this profile was computed from.
    mix_epoch: u64,
    /// Number of contenders in that mix.
    p: usize,
    /// Communication slowdown, `1 + Σ pcompᵢ·delay_compⁱ + Σ pcommᵢ·delay_commⁱ`.
    comm: Slowdown,
    /// Computation slowdown per message-size bucket,
    /// `comp_by_bucket[b] = 1 + Σ pcompᵢ·i + Σ pcommᵢ·delay_commⁱʲ⁽ᵇ⁾`.
    comp_by_bucket: Vec<Slowdown>,
    /// The table's bucket boundaries, copied so `j → bucket` resolution
    /// needs no table access.
    buckets: Vec<u64>,
}

impl SlowdownProfile {
    /// Folds `mix` into its slowdown factors — one `O(p)` pass for the
    /// communication scalar plus one per bucket for computation.
    pub fn compute(
        mix: &WorkloadMix,
        comm_delays: &CommDelayTable,
        comp_delays: &CompDelayTable,
    ) -> Self {
        let comp_by_bucket = (0..comp_delays.buckets.len())
            .map(|b| paragon::comp_slowdown_at_bucket(mix, comp_delays, b))
            .collect();
        SlowdownProfile {
            mix_epoch: mix.epoch(),
            p: mix.p(),
            comm: paragon::comm_slowdown(mix, comm_delays),
            comp_by_bucket,
            buckets: comp_delays.buckets.clone(),
        }
    }

    /// Epoch of the mix this profile reflects.
    pub fn mix_epoch(&self) -> u64 {
        self.mix_epoch
    }

    /// Number of contenders in the profiled mix.
    pub fn p(&self) -> usize {
        self.p
    }

    /// `true` when this profile still reflects `mix` (O(1): epoch compare).
    pub fn is_current(&self, mix: &WorkloadMix) -> bool {
        self.mix_epoch == mix.epoch()
    }

    /// The cached communication slowdown.
    pub fn comm_slowdown(&self) -> Slowdown {
        self.comm
    }

    /// The cached computation slowdown for contender messages of
    /// `j_words` words, resolved by the paper's bucket rules.
    pub fn comp_slowdown(&self, j_words: u64) -> Slowdown {
        self.comp_by_bucket[select_bucket(&self.buckets, j_words)]
    }

    /// The cached computation slowdown at an explicit bucket index.
    pub fn comp_slowdown_at_bucket(&self, bucket: usize) -> Slowdown {
        self.comp_by_bucket[bucket]
    }

    /// Number of message-size buckets carried by this profile.
    pub fn bucket_count(&self) -> usize {
        self.comp_by_bucket.len()
    }
}

/// Memoizes the [`SlowdownProfile`] of the most recent mix version.
///
/// The cache holds a single slot: contention state evolves as one mix
/// mutating over time, so the only interesting question is "is my profile
/// still current?" — answered by the epoch compare. A hit is free; a miss
/// recomputes and replaces the slot.
#[derive(Debug, Clone, Default)]
pub struct ProfileCache {
    slot: Option<SlowdownProfile>,
}

impl ProfileCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProfileCache::default()
    }

    /// Returns the profile for `mix`, recomputing only if the cached one
    /// is missing or stale (mix epoch changed).
    pub fn profile_for(
        &mut self,
        mix: &WorkloadMix,
        comm_delays: &CommDelayTable,
        comp_delays: &CompDelayTable,
    ) -> &SlowdownProfile {
        let stale = self.slot.as_ref().is_none_or(|s| !s.is_current(mix));
        if stale {
            self.slot = None;
        }
        self.slot.get_or_insert_with(|| SlowdownProfile::compute(mix, comm_delays, comp_delays))
    }

    /// Drops the cached profile (e.g. after swapping delay tables).
    pub fn invalidate(&mut self) {
        self.slot = None;
    }

    /// The cached profile, if any — without validating freshness.
    pub fn peek(&self) -> Option<&SlowdownProfile> {
        self.slot.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::prob;

    fn comm_table() -> CommDelayTable {
        CommDelayTable::new(vec![1.0, 2.0, 3.0], vec![0.6, 1.1, 1.5])
    }

    fn comp_table() -> CompDelayTable {
        CompDelayTable::new(
            vec![1, 500, 1000],
            vec![vec![0.2, 0.4, 0.6], vec![0.6, 1.2, 1.8], vec![0.9, 1.8, 2.7]],
        )
    }

    #[test]
    fn profile_matches_direct_evaluation_exactly() {
        let mix = WorkloadMix::from_fracs(&[0.2, 0.3, 0.7]);
        let profile = SlowdownProfile::compute(&mix, &comm_table(), &comp_table());
        assert_eq!(profile.comm_slowdown(), paragon::comm_slowdown(&mix, &comm_table()));
        for j in [1u64, 50, 94, 95, 300, 500, 750, 1000, 5000] {
            assert_eq!(
                profile.comp_slowdown(j),
                paragon::comp_slowdown(&mix, &comp_table(), j),
                "j = {j}"
            );
        }
        for b in 0..3 {
            assert_eq!(
                profile.comp_slowdown_at_bucket(b),
                paragon::comp_slowdown_at_bucket(&mix, &comp_table(), b)
            );
        }
    }

    #[test]
    fn profile_tracks_epoch() {
        let mut mix = WorkloadMix::from_fracs(&[0.4]);
        let profile = SlowdownProfile::compute(&mix, &comm_table(), &comp_table());
        assert!(profile.is_current(&mix));
        assert_eq!(profile.mix_epoch(), mix.epoch());
        mix.add(prob(0.2));
        assert!(!profile.is_current(&mix));
    }

    #[test]
    fn cache_hits_until_mutation() {
        let mut mix = WorkloadMix::from_fracs(&[0.25, 0.76]);
        let (comm, comp) = (comm_table(), comp_table());
        let mut cache = ProfileCache::new();

        let first_epoch = cache.profile_for(&mix, &comm, &comp).mix_epoch();
        // Hit: same epoch back, no recompute observable via the stamp.
        assert_eq!(cache.profile_for(&mix, &comm, &comp).mix_epoch(), first_epoch);

        mix.remove(0);
        let refreshed = cache.profile_for(&mix, &comm, &comp);
        assert_eq!(refreshed.mix_epoch(), mix.epoch());
        assert_ne!(refreshed.mix_epoch(), first_epoch);
        assert_eq!(refreshed.p(), 1);
    }

    #[test]
    fn cache_invalidate_forces_recompute() {
        let mix = WorkloadMix::from_fracs(&[0.5]);
        let (comm, comp) = (comm_table(), comp_table());
        let mut cache = ProfileCache::new();
        cache.profile_for(&mix, &comm, &comp);
        assert!(cache.peek().is_some());
        cache.invalidate();
        assert!(cache.peek().is_none());
        assert!(cache.profile_for(&mix, &comm, &comp).is_current(&mix));
    }

    #[test]
    fn dedicated_profile_is_all_ones() {
        let mix = WorkloadMix::new();
        let profile = SlowdownProfile::compute(&mix, &comm_table(), &comp_table());
        assert_eq!(profile.comm_slowdown(), Slowdown::ONE);
        for b in 0..profile.bucket_count() {
            assert_eq!(profile.comp_slowdown_at_bucket(b), Slowdown::ONE);
        }
    }
}
