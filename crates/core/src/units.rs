//! Compile-time units and checked invariants for the model's quantities.
//!
//! The model juggles quantities with incompatible meanings — seconds,
//! words, bandwidths, probabilities in `[0, 1]`, slowdown factors ≥ 1 —
//! and before this module they were all bare `f64`/`u64`. A transposed
//! `(α, β)` pair or a `dcomm`/`dcomp` mix-up type-checked silently,
//! exactly the class of bug that corrupts the piecewise Sun/Paragon fits
//! or the Poisson–binomial mix DP without any visible failure.
//!
//! Each newtype here carries one dimension, validates its domain at the
//! boundary, and provides only the arithmetic that is dimensionally
//! meaningful:
//!
//! | Type | Invariant | Meaning |
//! |---|---|---|
//! | [`Seconds`] | non-negative (∞ allowed) | durations and costs |
//! | [`Words`] | — (integer) | message and data-set sizes |
//! | [`BytesPerSec`] | finite, > 0 | link bandwidth (`β`) |
//! | [`Prob`] | in `[0, 1]` | mix probabilities `pcompᵢ`/`pcommᵢ` |
//! | [`Slowdown`] | finite, ≥ 1 | contention slowdown factors |
//!
//! Every constructor rejects NaN and out-of-domain values, so downstream
//! code never needs to re-validate. Fallible `try_new` variants exist for
//! data that crosses a serialization boundary. The wrappers are plain
//! `f64`/`u64` bit patterns — arithmetic routed through them is
//! bit-identical to the raw code it replaced (pinned by
//! `tests/units_equivalence.rs`).
//!
//! This is also the single sanctioned funnel for int → float conversion:
//! [`f64_from_u64`] and [`f64_from_usize`] debug-check that the integer is
//! exactly representable, and the `modelcheck` lint forbids raw `as`
//! casts between integer and float types elsewhere in the model crates.

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

/// Forwards `Display` to the wrapped representation.
macro_rules! fmt_delegate {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Display::fmt(&self.0, f)
        }
    };
}

/// Bytes per word on the modeled platforms (32-bit words, as on the
/// SPARC front-ends and the Paragon's NX message units).
pub const WORD_BYTES: u32 = 4;

/// Largest integer magnitude exactly representable in an `f64` (2⁵³).
const MAX_EXACT_IN_F64: u64 = 1 << 53;

/// Converts a message/word count to `f64`, debug-checking that the value
/// is exactly representable (word counts beyond 2⁵³ would silently lose
/// precision).
pub fn f64_from_u64(n: u64) -> f64 {
    debug_assert!(n <= MAX_EXACT_IN_F64, "{n} is not exactly representable in f64");
    n as f64 // modelcheck-allow: lossy-cast — the sanctioned funnel, guarded above
}

/// [`f64_from_u64`] for `usize` counts (contender indices, loop counters).
pub fn f64_from_usize(n: usize) -> f64 {
    f64_from_u64(n as u64)
}

// ---------------------------------------------------------------------------
// Seconds
// ---------------------------------------------------------------------------

/// A non-negative duration or cost in seconds. `∞` is allowed (the final
/// phase of a [`crate::phased::LoadTimeline`] is unbounded); NaN and
/// negative values are rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero seconds.
    pub const ZERO: Seconds = Seconds(0.0);
    /// An unbounded duration.
    pub const INFINITY: Seconds = Seconds(f64::INFINITY);

    /// Builds a duration; rejects NaN and negative values.
    pub fn new(s: f64) -> Self {
        assert!(s >= 0.0, "Seconds must be non-negative and not NaN, got {s}");
        Seconds(s)
    }

    /// Fallible [`Self::new`] for values crossing a trust boundary.
    pub fn try_new(s: f64) -> Option<Self> {
        if s >= 0.0 {
            Some(Seconds(s))
        } else {
            None
        }
    }

    /// The raw value in seconds.
    pub fn get(self) -> f64 {
        self.0
    }

    /// True when the duration is finite.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The larger of two durations.
    pub fn max(self, other: Self) -> Self {
        Seconds(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        Seconds(self.0.min(other.0))
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

/// Scaling a duration by a dimensionless factor (e.g. a message count).
impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

/// Scaling a duration by a dimensionless factor, factor first.
impl Mul<Seconds> for f64 {
    type Output = Seconds;
    fn mul(self, rhs: Seconds) -> Seconds {
        Seconds(self * rhs.0)
    }
}

/// `dedicated cost × slowdown = contended cost` — the model's core law.
impl Mul<Slowdown> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: Slowdown) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// The ratio of two durations is dimensionless.
impl Div for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

/// Dividing a duration by a dimensionless factor.
impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl fmt::Display for Seconds {
    fmt_delegate!();
}

/// Shorthand constructor: `secs(1.5)` reads better than
/// `Seconds::new(1.5)` in dense call sites.
pub fn secs(s: f64) -> Seconds {
    Seconds::new(s)
}

// ---------------------------------------------------------------------------
// Words
// ---------------------------------------------------------------------------

/// A size in words (the paper's unit for message and data-set sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Words(u64);

impl Words {
    /// Zero words.
    pub const ZERO: Words = Words(0);

    /// Builds a size in words.
    pub const fn new(n: u64) -> Self {
        Words(n)
    }

    /// The raw word count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The word count as `f64`, debug-checked for exactness.
    pub fn as_f64(self) -> f64 {
        f64_from_u64(self.0)
    }

    /// The size in bytes on the modeled platforms.
    pub const fn bytes(self) -> u64 {
        self.0 * WORD_BYTES as u64
    }
}

/// `words / bandwidth = transfer time`.
impl Div<BytesPerSec> for Words {
    type Output = Seconds;
    fn div(self, rhs: BytesPerSec) -> Seconds {
        Seconds(self.as_f64() / rhs.words_per_sec())
    }
}

impl fmt::Display for Words {
    fmt_delegate!();
}

/// Shorthand constructor for [`Words`].
pub const fn words(n: u64) -> Words {
    Words(n)
}

// ---------------------------------------------------------------------------
// BytesPerSec
// ---------------------------------------------------------------------------

/// An effective link bandwidth (`β`), finite and strictly positive.
///
/// Stored in bytes/second; the paper quotes words/second, so the usual
/// entry point is [`BytesPerSec::from_words_per_sec`]. The two differ by
/// the exact factor [`WORD_BYTES`] (a power of two), so round-tripping
/// through either representation is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct BytesPerSec(f64);

impl BytesPerSec {
    /// Builds a bandwidth from bytes/second; must be finite and positive.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        BytesPerSec(bytes_per_sec)
    }

    /// Fallible [`Self::new`].
    pub fn try_new(bytes_per_sec: f64) -> Option<Self> {
        if bytes_per_sec.is_finite() && bytes_per_sec > 0.0 {
            Some(BytesPerSec(bytes_per_sec))
        } else {
            None
        }
    }

    /// Builds a bandwidth from the paper's words/second convention.
    pub fn from_words_per_sec(words_per_sec: f64) -> Self {
        Self::new(words_per_sec * f64::from(WORD_BYTES))
    }

    /// The raw value in bytes/second.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The bandwidth in the paper's words/second convention.
    pub fn words_per_sec(self) -> f64 {
        self.0 / f64::from(WORD_BYTES)
    }
}

impl fmt::Display for BytesPerSec {
    fmt_delegate!();
}

// ---------------------------------------------------------------------------
// Prob
// ---------------------------------------------------------------------------

/// Numerical slack tolerated by the unchecked/debug constructors: DP
/// updates keep probabilities inside `[0, 1]` up to rounding.
const PROB_EPS: f64 = 1e-9;

/// A probability in `[0, 1]` — the mix DP's `pcompᵢ`/`pcommᵢ` weights and
/// the per-contender communication fractions `fₖ`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Prob(f64);

impl Prob {
    /// The impossible event.
    pub const ZERO: Prob = Prob(0.0);
    /// The certain event.
    pub const ONE: Prob = Prob(1.0);

    /// Builds a probability; rejects NaN, ∞, and values outside `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        Prob(p)
    }

    /// Fallible [`Self::new`] for values crossing a trust boundary.
    pub fn try_new(p: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&p) {
            Some(Prob(p))
        } else {
            None
        }
    }

    /// Wraps a value produced by in-range arithmetic (convolutions of
    /// in-range inputs) without clamping, so reads stay bit-identical to
    /// the raw representation; debug builds still verify the domain up to
    /// rounding slack.
    pub(crate) fn new_unchecked(p: f64) -> Self {
        debug_assert!(
            (-PROB_EPS..=1.0 + PROB_EPS).contains(&p),
            "probability {p} outside [0,1] beyond rounding slack"
        );
        Prob(p)
    }

    /// The raw value.
    pub fn get(self) -> f64 {
        self.0
    }

    /// `1 − p`, the probability of the complementary event.
    pub fn complement(self) -> Prob {
        Prob(1.0 - self.0)
    }
}

/// Joint probability of independent events.
impl Mul for Prob {
    type Output = Prob;
    fn mul(self, rhs: Prob) -> Prob {
        Prob::new_unchecked(self.0 * rhs.0)
    }
}

/// Probability-weighting a dimensionless quantity (a delay coefficient).
impl Mul<f64> for Prob {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl fmt::Display for Prob {
    fmt_delegate!();
}

/// Shorthand constructor: `prob(0.2)`.
pub fn prob(p: f64) -> Prob {
    Prob::new(p)
}

// ---------------------------------------------------------------------------
// Slowdown
// ---------------------------------------------------------------------------

/// A contention slowdown factor: finite and ≥ 1. Contention can only ever
/// slow an application down — a "speedup" coming out of the model is a
/// bug, and this type makes it unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Slowdown(f64);

impl Slowdown {
    /// The dedicated machine: no slowdown.
    pub const ONE: Slowdown = Slowdown(1.0);

    /// Builds a slowdown; rejects NaN, ∞, and values below 1.
    pub fn new(s: f64) -> Self {
        assert!(s.is_finite() && s >= 1.0, "slowdown must be finite and >= 1, got {s}");
        Slowdown(s)
    }

    /// Fallible [`Self::new`] for values crossing a trust boundary.
    pub fn try_new(s: f64) -> Option<Self> {
        if s.is_finite() && s >= 1.0 {
            Some(Slowdown(s))
        } else {
            None
        }
    }

    /// The raw factor.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for Slowdown {
    fn default() -> Self {
        Slowdown::ONE
    }
}

/// `slowdown × dedicated cost = contended cost`.
impl Mul<Seconds> for Slowdown {
    type Output = Seconds;
    fn mul(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// Composing independent slowdown sources (e.g. CPU contention × paging).
impl Mul for Slowdown {
    type Output = Slowdown;
    fn mul(self, rhs: Slowdown) -> Slowdown {
        Slowdown(self.0 * rhs.0)
    }
}

impl fmt::Display for Slowdown {
    fmt_delegate!();
}

// ---------------------------------------------------------------------------
// Serde: every unit serializes transparently as its raw number, and
// re-validates its domain on the way back in.
// ---------------------------------------------------------------------------

macro_rules! unit_serde_f64 {
    ($t:ident, $what:literal) => {
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                self.0.to_value()
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, serde::Error> {
                let raw = f64::from_value(v)?;
                $t::try_new(raw)
                    .ok_or_else(|| serde::Error::msg(format!("invalid {}: {raw}", $what)))
            }
        }
    };
}

unit_serde_f64!(Seconds, "duration (must be >= 0)");
unit_serde_f64!(BytesPerSec, "bandwidth (must be finite and > 0)");
unit_serde_f64!(Prob, "probability (must be in [0,1])");
unit_serde_f64!(Slowdown, "slowdown (must be finite and >= 1)");

impl Serialize for Words {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for Words {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Words(u64::from_value(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_arithmetic_is_transparent() {
        let a = secs(1.5);
        let b = secs(2.25);
        assert_eq!((a + b).get(), 1.5 + 2.25);
        assert_eq!((a * 3.0).get(), 1.5 * 3.0);
        assert_eq!((3.0 * a).get(), 3.0 * 1.5);
        assert_eq!(a / b, 1.5 / 2.25);
        assert_eq!((b / 2.0).get(), 2.25 / 2.0);
        assert_eq!([a, b].into_iter().sum::<Seconds>().get(), 1.5 + 2.25);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(Seconds::INFINITY.get().is_infinite() && !Seconds::INFINITY.is_finite());
    }

    #[test]
    fn seconds_rejects_bad_input() {
        assert!(Seconds::try_new(-1.0).is_none());
        assert!(Seconds::try_new(f64::NAN).is_none());
        assert!(Seconds::try_new(f64::INFINITY).is_some());
        assert_eq!(Seconds::try_new(0.0), Some(Seconds::ZERO));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn seconds_new_panics_on_negative() {
        secs(-0.5);
    }

    #[test]
    fn words_conversions() {
        assert_eq!(words(1024).get(), 1024);
        assert_eq!(words(3).bytes(), 12);
        assert_eq!(words(1000).as_f64(), 1000.0);
    }

    #[test]
    fn bandwidth_roundtrips_words_per_sec_exactly() {
        for wps in [1.0, 1e-3, 2e5, 8e5, 1e6, 123456.789] {
            let b = BytesPerSec::from_words_per_sec(wps);
            // ×4 / ÷4 are exact in binary floating point.
            assert_eq!(b.words_per_sec(), wps);
        }
        assert!(BytesPerSec::try_new(0.0).is_none());
        assert!(BytesPerSec::try_new(-5.0).is_none());
        assert!(BytesPerSec::try_new(f64::INFINITY).is_none());
    }

    #[test]
    fn words_over_bandwidth_is_transfer_time() {
        let b = BytesPerSec::from_words_per_sec(1e6);
        assert_eq!((words(1000) / b).get(), 1000.0 / 1e6);
    }

    #[test]
    fn prob_domain() {
        assert_eq!(prob(0.25).get(), 0.25);
        assert_eq!(prob(0.25).complement().get(), 0.75);
        assert_eq!((prob(0.5) * prob(0.5)).get(), 0.25);
        assert_eq!(prob(0.5) * 3.0, 1.5);
        assert!(Prob::try_new(-0.1).is_none());
        assert!(Prob::try_new(1.1).is_none());
        assert!(Prob::try_new(f64::NAN).is_none());
        assert_eq!(Prob::try_new(1.0), Some(Prob::ONE));
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn prob_new_panics_out_of_range() {
        prob(1.5);
    }

    #[test]
    fn slowdown_domain() {
        assert_eq!(Slowdown::new(1.0), Slowdown::ONE);
        assert_eq!((Slowdown::new(2.0) * secs(3.0)).get(), 6.0);
        assert_eq!((secs(3.0) * Slowdown::new(2.0)).get(), 6.0);
        assert_eq!((Slowdown::new(2.0) * Slowdown::new(1.5)).get(), 3.0);
        assert!(Slowdown::try_new(0.99).is_none());
        assert!(Slowdown::try_new(f64::NAN).is_none());
        assert!(Slowdown::try_new(f64::INFINITY).is_none());
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn slowdown_new_panics_below_one() {
        Slowdown::new(0.5);
    }

    #[test]
    fn serde_roundtrip_and_validation() {
        let s = secs(2.5);
        assert_eq!(Seconds::from_value(&s.to_value()), Ok(s));
        let p = prob(0.3);
        assert_eq!(Prob::from_value(&p.to_value()), Ok(p));
        let f = Slowdown::new(4.0);
        assert_eq!(Slowdown::from_value(&f.to_value()), Ok(f));
        let w = words(512);
        assert_eq!(Words::from_value(&w.to_value()), Ok(w));
        let b = BytesPerSec::from_words_per_sec(2e5);
        assert_eq!(BytesPerSec::from_value(&b.to_value()), Ok(b));
        // Deserialization re-validates the domain instead of panicking.
        assert!(Slowdown::from_value(&Value::Float(0.5)).is_err());
        assert!(Prob::from_value(&Value::Float(1.5)).is_err());
        assert!(Seconds::from_value(&Value::Float(-1.0)).is_err());
    }

    #[test]
    fn exact_conversion_helpers() {
        assert_eq!(f64_from_u64(0), 0.0);
        assert_eq!(f64_from_u64(1 << 52), (1u64 << 52) as f64);
        assert_eq!(f64_from_usize(12345), 12345.0);
    }
}
