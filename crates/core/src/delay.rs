//! System-dependent delay tables.
//!
//! The Sun/Paragon slowdown formulas weight mix probabilities with measured
//! *delays*: the average relative extra time that `i` contention generators
//! impose on a probe. All entries are expressed as `T_contended / T_dedicated
//! − 1`, so a delay of `2.0` means "three times slower". The tables are
//! measured once per platform by the calibration suite and never change at
//! run time.
//!
//! Two tables exist:
//!
//! * [`CommDelayTable`] — delays imposed **on communication** by `i`
//!   computing contenders (`delay_compⁱ`) and by `i` communicating
//!   contenders (`delay_commⁱ`, averaged over both directions).
//! * [`CompDelayTable`] — delays imposed **on computation** by `i`
//!   contenders communicating with `j`-word messages (`delay_commⁱʲ`).
//!   Message size matters here; the paper finds that measuring three
//!   buckets `j ∈ {1, 500, 1000}` suffices, that `j = 1` should only be
//!   used for messages under 95 words, and that delays saturate above
//!   roughly 1000 words.
//!
//! Delay entries are deliberately *not* newtyped: they are dimensionless
//! relative coefficients (`T_contended / T_dedicated − 1`, so ≥ 0 and
//! unbounded above), not probabilities, durations, or slowdowns. The
//! `modelcheck-allow: naked-f64` annotations below record that choice.

use serde::{Deserialize, Serialize};

/// Paper footnote 2: the `j = 1` column only applies to messages smaller
/// than this many words.
pub const SMALL_MESSAGE_CUTOFF_WORDS: u64 = 95;

/// Delays imposed on *communication*, indexed by contender count `i ≥ 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommDelayTable {
    /// `delay_compⁱ` for `i = 1..`, relative extra time from `i`
    /// compute-bound contenders.
    pub by_computing: Vec<f64>,
    /// `delay_commⁱ` for `i = 1..`, relative extra time from `i`
    /// communicating contenders (average of both link directions).
    pub by_communicating: Vec<f64>,
}

impl CommDelayTable {
    /// Builds a table; both vectors are indexed by `i - 1`.
    // modelcheck-allow: naked-f64 — dimensionless relative-delay coefficients
    pub fn new(by_computing: Vec<f64>, by_communicating: Vec<f64>) -> Self {
        assert!(
            by_computing.iter().chain(&by_communicating).all(|d| *d >= 0.0),
            "delays must be non-negative"
        );
        CommDelayTable { by_computing, by_communicating }
    }

    /// Largest `i` with a measured entry.
    pub fn max_i(&self) -> usize {
        self.by_computing.len().min(self.by_communicating.len())
    }

    /// `delay_compⁱ`; 0 for `i = 0`, saturating at the last measured entry.
    // modelcheck-allow: naked-f64 — dimensionless relative-delay coefficient
    pub fn computing(&self, i: usize) -> f64 {
        lookup_saturating(&self.by_computing, i)
    }

    /// `delay_commⁱ`; 0 for `i = 0`, saturating at the last measured entry.
    // modelcheck-allow: naked-f64 — dimensionless relative-delay coefficient
    pub fn communicating(&self, i: usize) -> f64 {
        lookup_saturating(&self.by_communicating, i)
    }
}

/// Delays imposed on *computation* by communicating contenders, bucketed by
/// message size `j`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompDelayTable {
    /// Measured message-size buckets in words, ascending (paper: `[1, 500,
    /// 1000]`).
    pub buckets: Vec<u64>,
    /// `delays[b][i-1]` = `delay_commⁱʲ` for bucket `b` and contender
    /// count `i`.
    pub delays: Vec<Vec<f64>>,
}

impl CompDelayTable {
    /// Builds a table; `delays` must have one row per bucket.
    // modelcheck-allow: naked-f64 — dimensionless relative-delay coefficients
    pub fn new(buckets: Vec<u64>, delays: Vec<Vec<f64>>) -> Self {
        assert_eq!(buckets.len(), delays.len(), "one delay row per bucket");
        assert!(!buckets.is_empty(), "at least one bucket required");
        assert!(buckets.windows(2).all(|w| w[0] < w[1]), "buckets must ascend");
        assert!(delays.iter().flatten().all(|d| *d >= 0.0), "delays must be non-negative");
        CompDelayTable { buckets, delays }
    }

    /// Selects the bucket for a message of `j_words` words, per the paper's
    /// rules: the nearest measured bucket, except that the `j = 1` bucket is
    /// only eligible for messages under [`SMALL_MESSAGE_CUTOFF_WORDS`];
    /// sizes beyond the largest bucket saturate to it.
    pub fn bucket_for(&self, j_words: u64) -> usize {
        select_bucket(&self.buckets, j_words)
    }

    /// `delay_commⁱʲ` for `i` contenders sending `j_words`-word messages;
    /// 0 for `i = 0`, saturating in `i` at the last measured entry.
    // modelcheck-allow: naked-f64 — dimensionless relative-delay coefficient
    pub fn delay(&self, i: usize, j_words: u64) -> f64 {
        lookup_saturating(&self.delays[self.bucket_for(j_words)], i)
    }

    /// `delay_commⁱʲ` using an explicit bucket index (ablation hook).
    // modelcheck-allow: naked-f64 — dimensionless relative-delay coefficient
    pub fn delay_at_bucket(&self, i: usize, bucket: usize) -> f64 {
        lookup_saturating(&self.delays[bucket], i)
    }
}

/// Bucket-selection rule shared by [`CompDelayTable::bucket_for`] and the
/// cached [`crate::profile::SlowdownProfile`]: the nearest measured bucket
/// to `j_words`, except that the `j = 1` bucket is only eligible for
/// messages under [`SMALL_MESSAGE_CUTOFF_WORDS`]; ties go to the larger
/// bucket (the conservative choice: delays grow with message size).
pub fn select_bucket(buckets: &[u64], j_words: u64) -> usize {
    let eligible = |idx: usize| buckets[idx] != 1 || j_words < SMALL_MESSAGE_CUTOFF_WORDS;
    let mut best: Option<(usize, u64)> = None;
    for idx in 0..buckets.len() {
        if !eligible(idx) {
            continue;
        }
        let dist = buckets[idx].abs_diff(j_words);
        let better = match best {
            None => true,
            Some((bi, bd)) => dist < bd || (dist == bd && buckets[idx] > buckets[bi]),
        };
        if better {
            best = Some((idx, dist));
        }
    }
    // All buckets ineligible can only happen when the table is just
    // `[1]` and the message is large; saturate to the last bucket.
    best.map(|(i, _)| i).unwrap_or(buckets.len() - 1)
}

/// Index `table` by contender count `i` (1-based); 0 for `i = 0`,
/// last entry for `i` beyond the measured range.
fn lookup_saturating(table: &[f64], i: usize) -> f64 {
    if i == 0 || table.is_empty() {
        0.0
    } else {
        table[(i - 1).min(table.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_table_lookup_and_saturation() {
        let t = CommDelayTable::new(vec![1.0, 2.0, 3.0], vec![0.5, 1.0, 1.5]);
        assert_eq!(t.computing(0), 0.0);
        assert_eq!(t.computing(1), 1.0);
        assert_eq!(t.computing(3), 3.0);
        assert_eq!(t.computing(10), 3.0); // saturates
        assert_eq!(t.communicating(2), 1.0);
        assert_eq!(t.max_i(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn comm_table_rejects_negative() {
        CommDelayTable::new(vec![-0.1], vec![]);
    }

    fn paper_buckets() -> CompDelayTable {
        CompDelayTable::new(
            vec![1, 500, 1000],
            vec![vec![0.1, 0.2], vec![0.5, 1.0], vec![0.9, 1.8]],
        )
    }

    #[test]
    fn bucket_selection_follows_paper_rules() {
        let t = paper_buckets();
        // Tiny messages use j = 1.
        assert_eq!(t.bucket_for(1), 0);
        assert_eq!(t.bucket_for(94), 0);
        // At and above the 95-word cutoff, j = 1 is ineligible.
        assert_eq!(t.bucket_for(95), 1);
        assert_eq!(t.bucket_for(200), 1);
        assert_eq!(t.bucket_for(500), 1);
        assert_eq!(t.bucket_for(700), 1); // nearest of {500, 1000} → 500
                                          // Tie at 750 goes to the larger bucket.
        assert_eq!(t.bucket_for(750), 2);
        assert_eq!(t.bucket_for(800), 2);
        assert_eq!(t.bucket_for(1200), 2);
        // Saturation far beyond the largest bucket.
        assert_eq!(t.bucket_for(1_000_000), 2);
    }

    #[test]
    fn delay_lookup() {
        let t = paper_buckets();
        assert_eq!(t.delay(0, 800), 0.0);
        assert_eq!(t.delay(1, 800), 0.9);
        assert_eq!(t.delay(2, 800), 1.8);
        assert_eq!(t.delay(5, 800), 1.8); // saturates in i
        assert_eq!(t.delay(1, 10), 0.1);
        assert_eq!(t.delay_at_bucket(2, 1), 1.0);
    }

    #[test]
    fn single_bucket_table_always_used() {
        let t = CompDelayTable::new(vec![1], vec![vec![0.3]]);
        // Even a huge message falls back to the only bucket.
        assert_eq!(t.bucket_for(10_000), 0);
        assert_eq!(t.delay(1, 10_000), 0.3);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn buckets_must_ascend() {
        CompDelayTable::new(vec![500, 1], vec![vec![0.1], vec![0.2]]);
    }
}
