//! End-to-end predictors and the placement decision.
//!
//! A task should execute on the back-end only when (paper, inequality (1))
//!
//! ```text
//! T_front > T_back + C_front→back + C_back→front
//! ```
//!
//! with every term adjusted by the platform's slowdown factors. The
//! predictors here bundle the calibrated system parameters with the
//! run-time workload description and answer that inequality.

use crate::cm2::{self, Cm2TaskCosts};
use crate::comm::{LinearCommModel, PiecewiseCommModel};
use crate::dataset::DataSet;
use crate::delay::{CommDelayTable, CompDelayTable};
use crate::mix::WorkloadMix;
use crate::paragon;
use crate::profile::SlowdownProfile;
use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// Where a task should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Execute on the front-end workstation.
    FrontEnd,
    /// Ship the data, execute on the back-end, ship results back.
    BackEnd,
}

/// The two totals behind a placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// Predicted elapsed time if the task stays on the front-end.
    pub t_front: Seconds,
    /// Predicted back-end elapsed time (computation only).
    pub t_back: Seconds,
    /// Predicted cost of moving inputs to the back-end.
    pub c_to: Seconds,
    /// Predicted cost of moving results back.
    pub c_from: Seconds,
    /// The verdict of inequality (1).
    pub placement: Placement,
}

impl PlacementDecision {
    fn decide(t_front: Seconds, t_back: Seconds, c_to: Seconds, c_from: Seconds) -> Self {
        let placement =
            if t_front > t_back + c_to + c_from { Placement::BackEnd } else { Placement::FrontEnd };
        PlacementDecision { t_front, t_back, c_to, c_from, placement }
    }

    /// Total predicted time of the chosen placement.
    pub fn best_time(&self) -> Seconds {
        match self.placement {
            Placement::FrontEnd => self.t_front,
            Placement::BackEnd => self.t_back + self.c_to + self.c_from,
        }
    }
}

// ---------------------------------------------------------------------------
// Sun/CM2
// ---------------------------------------------------------------------------

/// A task as the Sun/CM2 predictor sees it: dedicated cost decomposition
/// plus the data sets crossing the link in each direction when off-loaded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cm2Task {
    /// Dedicated-mode cost decomposition.
    pub costs: Cm2TaskCosts,
    /// Data sets moved front-end → CM2 before execution.
    pub to_backend: Vec<DataSet>,
    /// Data sets moved CM2 → front-end afterwards.
    pub from_backend: Vec<DataSet>,
}

/// Calibrated predictor for the Sun/CM2 platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cm2Predictor {
    /// Dedicated transfer model, front-end → CM2 (`α_sun`, `β_sun`).
    pub comm_to: LinearCommModel,
    /// Dedicated transfer model, CM2 → front-end (`α_cm2`, `β_cm2`).
    pub comm_from: LinearCommModel,
}

impl Cm2Predictor {
    /// `C_sun→cm2` under `p` extra CPU-bound front-end processes.
    pub fn comm_cost_to(&self, sets: &[DataSet], p: u32) -> Seconds {
        cm2::comm_cost(self.comm_to.dcomm(sets), p)
    }

    /// `C_cm2→sun` under `p` extra CPU-bound front-end processes.
    pub fn comm_cost_from(&self, sets: &[DataSet], p: u32) -> Seconds {
        cm2::comm_cost(self.comm_from.dcomm(sets), p)
    }

    /// Full placement decision for a task under `p` contenders.
    pub fn decide(&self, task: &Cm2Task, p: u32) -> PlacementDecision {
        PlacementDecision::decide(
            task.costs.t_sun(p),
            task.costs.t_cm2(p),
            self.comm_cost_to(&task.to_backend, p),
            self.comm_cost_from(&task.from_backend, p),
        )
    }
}

// ---------------------------------------------------------------------------
// Sun/Paragon
// ---------------------------------------------------------------------------

/// A task as the Sun/Paragon predictor sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParagonTask {
    /// Dedicated time on the front-end.
    pub dcomp_sun: Seconds,
    /// Elapsed time on the Paragon. The Paragon is space-shared, so this is
    /// unaffected by front-end contention; mesh or gang-scheduling effects
    /// are folded in by the caller, as the paper prescribes.
    pub t_paragon: Seconds,
    /// Data sets moved front-end → Paragon.
    pub to_backend: Vec<DataSet>,
    /// Data sets moved Paragon → front-end.
    pub from_backend: Vec<DataSet>,
}

/// Calibrated predictor for the Sun/Paragon platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParagonPredictor {
    /// Piecewise dedicated transfer model, front-end → Paragon.
    pub comm_to: PiecewiseCommModel,
    /// Piecewise dedicated transfer model, Paragon → front-end.
    pub comm_from: PiecewiseCommModel,
    /// Delays imposed on communication by contenders.
    pub comm_delays: CommDelayTable,
    /// Delays imposed on computation by communicating contenders.
    pub comp_delays: CompDelayTable,
}

impl ParagonPredictor {
    /// `C_sun→p` under the given workload mix.
    pub fn comm_cost_to(&self, sets: &[DataSet], mix: &WorkloadMix) -> Seconds {
        paragon::comm_cost(self.comm_to.dcomm(sets), mix, &self.comm_delays)
    }

    /// `C_p→sun` under the given workload mix.
    pub fn comm_cost_from(&self, sets: &[DataSet], mix: &WorkloadMix) -> Seconds {
        paragon::comm_cost(self.comm_from.dcomm(sets), mix, &self.comm_delays)
    }

    /// `T_sun` under the given mix; `j_words` is the contenders' message
    /// size (paper: the maximum in use on the system).
    pub fn t_sun(&self, dcomp_sun: Seconds, mix: &WorkloadMix, j_words: u64) -> Seconds {
        paragon::comp_cost(dcomp_sun, mix, &self.comp_delays, j_words)
    }

    /// Full placement decision for a task under the given mix.
    pub fn decide(&self, task: &ParagonTask, mix: &WorkloadMix, j_words: u64) -> PlacementDecision {
        PlacementDecision::decide(
            self.t_sun(task.dcomp_sun, mix, j_words),
            task.t_paragon,
            self.comm_cost_to(&task.to_backend, mix),
            self.comm_cost_from(&task.from_backend, mix),
        )
    }

    // -- Cached-profile fast path ------------------------------------------

    /// Folds `mix` into a reusable [`SlowdownProfile`] against this
    /// predictor's delay tables. One `O(p·buckets)` evaluation amortized
    /// over every subsequent `*_with` call.
    pub fn profile(&self, mix: &WorkloadMix) -> SlowdownProfile {
        SlowdownProfile::compute(mix, &self.comm_delays, &self.comp_delays)
    }

    /// `C_sun→p` using cached slowdown factors.
    pub fn comm_cost_to_with(&self, sets: &[DataSet], profile: &SlowdownProfile) -> Seconds {
        self.comm_to.dcomm(sets) * profile.comm_slowdown()
    }

    /// `C_p→sun` using cached slowdown factors.
    pub fn comm_cost_from_with(&self, sets: &[DataSet], profile: &SlowdownProfile) -> Seconds {
        self.comm_from.dcomm(sets) * profile.comm_slowdown()
    }

    /// `T_sun` using cached slowdown factors.
    pub fn t_sun_with(
        &self,
        dcomp_sun: Seconds,
        profile: &SlowdownProfile,
        j_words: u64,
    ) -> Seconds {
        dcomp_sun * profile.comp_slowdown(j_words)
    }

    /// Placement decision using cached slowdown factors. Agrees exactly
    /// with [`decide`](Self::decide) when `profile` was computed from the
    /// same mix and tables.
    pub fn decide_with(
        &self,
        task: &ParagonTask,
        profile: &SlowdownProfile,
        j_words: u64,
    ) -> PlacementDecision {
        PlacementDecision::decide(
            self.t_sun_with(task.dcomp_sun, profile, j_words),
            task.t_paragon,
            self.comm_cost_to_with(&task.to_backend, profile),
            self.comm_cost_from_with(&task.from_backend, profile),
        )
    }

    /// Decides a whole batch of tasks against one contention state. The
    /// mix is folded once; each task then costs only the `dcomm` walks
    /// and three multiplies, instead of re-evaluating the `O(p)` slowdown
    /// sums per task.
    pub fn decide_batch(
        &self,
        tasks: &[ParagonTask],
        profile: &SlowdownProfile,
        j_words: u64,
    ) -> Vec<PlacementDecision> {
        let comp_slowdown = profile.comp_slowdown(j_words);
        tasks
            .iter()
            .map(|task| {
                PlacementDecision::decide(
                    task.dcomp_sun * comp_slowdown,
                    task.t_paragon,
                    self.comm_cost_to_with(&task.to_backend, profile),
                    self.comm_cost_from_with(&task.from_backend, profile),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{prob, secs, BytesPerSec};

    fn linear(alpha: f64, beta_wps: f64) -> LinearCommModel {
        LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_wps))
    }

    fn cm2_predictor() -> Cm2Predictor {
        Cm2Predictor { comm_to: linear(1e-3, 1e6), comm_from: linear(1e-3, 5e5) }
    }

    fn cm2_costs(a: f64, b: f64, c: f64, d: f64) -> Cm2TaskCosts {
        Cm2TaskCosts::new(secs(a), secs(b), secs(c), secs(d))
    }

    #[test]
    fn cm2_offload_wins_when_parallel_speedup_dominates() {
        let task = Cm2Task {
            costs: cm2_costs(100.0, 5.0, 1.0, 2.0),
            to_backend: vec![DataSet::matrix_rows(100, 100)],
            from_backend: vec![DataSet::matrix_rows(100, 100)],
        };
        let d = cm2_predictor().decide(&task, 0);
        // comm ≈ 0.1 + 0.01 + 0.1 + 0.02 ≈ 0.23s, far below the 94s gain.
        assert_eq!(d.placement, Placement::BackEnd);
        assert!(d.best_time() < secs(10.0));
    }

    #[test]
    fn cm2_contention_shifts_the_decision_toward_backend() {
        // Front-end work 10s vs back-end 8s + 3s of transfers: stays local
        // when dedicated, off-loads once contention triples the local time
        // (transfer slowdown grows too, but from a smaller base).
        let task = Cm2Task {
            costs: cm2_costs(10.0, 7.9, 0.05, 0.1),
            to_backend: vec![DataSet::single(1_500_000)],
            from_backend: vec![DataSet::single(750_000)],
        };
        let p = cm2_predictor();
        let ded = p.decide(&task, 0);
        assert_eq!(ded.placement, Placement::FrontEnd, "{ded:?}");
        let loaded = p.decide(&task, 3);
        assert_eq!(loaded.placement, Placement::BackEnd, "{loaded:?}");
    }

    #[test]
    fn cm2_comm_costs_scale_with_p() {
        let p = cm2_predictor();
        let sets = [DataSet::single(1000)];
        let base = p.comm_cost_to(&sets, 0);
        assert!((p.comm_cost_to(&sets, 3).get() - 4.0 * base.get()).abs() < 1e-12);
    }

    fn paragon_predictor() -> ParagonPredictor {
        let small = linear(2e-3, 2e5);
        let large = linear(6e-3, 8e5);
        ParagonPredictor {
            comm_to: PiecewiseCommModel::new(1024, small, large),
            comm_from: PiecewiseCommModel::new(1024, small, large),
            comm_delays: CommDelayTable::new(vec![1.0, 2.0], vec![0.8, 1.4]),
            comp_delays: CompDelayTable::new(
                vec![1, 500, 1000],
                vec![vec![0.1, 0.2], vec![0.5, 1.0], vec![0.8, 1.6]],
            ),
        }
    }

    #[test]
    fn paragon_dedicated_decision_uses_raw_costs() {
        let task = ParagonTask {
            dcomp_sun: secs(10.0),
            t_paragon: secs(2.0),
            to_backend: vec![DataSet::burst(100, 2000)],
            from_backend: vec![DataSet::burst(100, 2000)],
        };
        let pred = paragon_predictor();
        let mix = WorkloadMix::new();
        let d = pred.decide(&task, &mix, 2000);
        assert_eq!(d.t_front, secs(10.0));
        // Each direction: 100 × (6ms + 2000/8e5 s) = 0.85s.
        assert!((d.c_to.get() - 0.85).abs() < 1e-9, "{}", d.c_to);
        assert_eq!(d.placement, Placement::BackEnd);
    }

    #[test]
    fn paragon_comm_heavy_contenders_keep_task_local() {
        // The gain from the Paragon is outweighed once the link is busy.
        let task = ParagonTask {
            dcomp_sun: secs(4.0),
            t_paragon: secs(1.0),
            to_backend: vec![DataSet::burst(1000, 2000)],
            from_backend: vec![],
        };
        let pred = paragon_predictor();
        let idle = WorkloadMix::new();
        assert_eq!(pred.decide(&task, &idle, 2000).placement, Placement::FrontEnd);
        // c_to alone is 8.5s dedicated — already above the 3s gain; with two
        // communication-bound contenders it grows by 1+delay_comm².
        let busy = WorkloadMix::from_fracs(&[0.9, 0.9]);
        let d = pred.decide(&task, &busy, 2000);
        assert_eq!(d.placement, Placement::FrontEnd);
        assert!(d.c_to > secs(8.5));
    }

    #[test]
    fn paragon_t_sun_matches_formula() {
        let pred = paragon_predictor();
        let mix = WorkloadMix::from_fracs(&[0.0, 0.0]);
        // Two pure CPU hogs: slowdown = 1 + 2 = 3.
        assert!((pred.t_sun(secs(5.0), &mix, 1000).get() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn decide_with_matches_decide_exactly() {
        let pred = paragon_predictor();
        let mix = WorkloadMix::from_fracs(&[0.25, 0.76]);
        let profile = pred.profile(&mix);
        let task = ParagonTask {
            dcomp_sun: secs(7.3),
            t_paragon: secs(1.9),
            to_backend: vec![DataSet::burst(40, 900)],
            from_backend: vec![DataSet::burst(10, 30)],
        };
        for j in [1u64, 94, 95, 500, 750, 2000] {
            let direct = pred.decide(&task, &mix, j);
            let cached = pred.decide_with(&task, &profile, j);
            assert_eq!(direct, cached, "j = {j}");
        }
    }

    #[test]
    fn decide_batch_matches_per_call_decide() {
        let pred = paragon_predictor();
        let mix = WorkloadMix::from_fracs(&[0.4, 0.1, 0.9]);
        let profile = pred.profile(&mix);
        let tasks: Vec<ParagonTask> = (1..20)
            .map(|k| ParagonTask {
                dcomp_sun: secs(k as f64 * 0.7),
                t_paragon: secs((20 - k) as f64 * 0.3),
                to_backend: vec![DataSet::burst(k, 100 * k)],
                from_backend: vec![DataSet::single(50 * k)],
            })
            .collect();
        let batch = pred.decide_batch(&tasks, &profile, 512);
        assert_eq!(batch.len(), tasks.len());
        for (task, got) in tasks.iter().zip(&batch) {
            assert_eq!(*got, pred.decide(task, &mix, 512));
        }
    }

    #[test]
    fn stale_profile_is_detectable() {
        let pred = paragon_predictor();
        let mut mix = WorkloadMix::from_fracs(&[0.5]);
        let profile = pred.profile(&mix);
        assert!(profile.is_current(&mix));
        mix.add(prob(0.25));
        assert!(!profile.is_current(&mix));
        // Refreshing restores agreement.
        let fresh = pred.profile(&mix);
        let task = ParagonTask {
            dcomp_sun: secs(3.0),
            t_paragon: secs(1.0),
            to_backend: vec![],
            from_backend: vec![],
        };
        assert_eq!(pred.decide_with(&task, &fresh, 500), pred.decide(&task, &mix, 500));
    }

    #[test]
    fn decision_boundary_prefers_front_end_on_ties() {
        // Equal costs: inequality (1) is strict, so stay local.
        let task = Cm2Task {
            costs: cm2_costs(10.0, 10.0, 0.0, 0.0),
            to_backend: vec![],
            from_backend: vec![],
        };
        let d = cm2_predictor().decide(&task, 0);
        assert_eq!(d.placement, Placement::FrontEnd);
        assert_eq!(d.best_time(), secs(10.0));
    }
}
