//! The Sun/Paragon contention model (paper §3.2).
//!
//! The front-end and the Paragon are independent machines joined by a
//! dedicated Ethernet link that is shared by the applications. Contention
//! affects a probe application in two ways, each weighted by the
//! probability that exactly `i` of the `p` contenders are in the relevant
//! state at a given instant (see [`crate::mix`]):
//!
//! * **Communication** is delayed by contenders computing on the front-end
//!   (stealing the CPU cycles that data-format conversion needs) and by
//!   contenders communicating (occupying the link):
//!
//!   ```text
//!   slowdown = 1 + Σᵢ pcompᵢ·delay_compⁱ + Σᵢ pcommᵢ·delay_commⁱ
//!   ```
//!
//! * **Computation** is delayed by computing contenders — CPU cycles split
//!   evenly, so `i` of them contribute a delay of exactly `i` — and by
//!   communicating contenders, whose impact depends on their message size
//!   `j`:
//!
//!   ```text
//!   slowdown = 1 + Σᵢ pcompᵢ·i + Σᵢ pcommᵢ·delay_commⁱʲ
//!   ```

use crate::delay::{CommDelayTable, CompDelayTable};
use crate::mix::WorkloadMix;
use crate::units::{f64_from_usize, Seconds, Slowdown};

/// Communication slowdown on the Sun/Paragon platform.
pub fn comm_slowdown(mix: &WorkloadMix, delays: &CommDelayTable) -> Slowdown {
    let mut s = 1.0;
    for i in 1..=mix.p() {
        s += mix.pcomp(i) * delays.computing(i);
        s += mix.pcomm(i) * delays.communicating(i);
    }
    Slowdown::new(s)
}

/// Computation slowdown on the front-end of the Sun/Paragon platform.
/// `j_words` is the contenders' message size (the paper recommends the
/// maximum message size in use on the system).
pub fn comp_slowdown(mix: &WorkloadMix, delays: &CompDelayTable, j_words: u64) -> Slowdown {
    let mut s = 1.0;
    for i in 1..=mix.p() {
        s += mix.pcomp(i) * f64_from_usize(i);
        s += mix.pcomm(i) * delays.delay(i, j_words);
    }
    Slowdown::new(s)
}

/// Computation slowdown with an explicit delay-table bucket, bypassing the
/// nearest-`j` rule — used for the paper's `j`-sensitivity study (Figures 7
/// and 8 report errors for `j = 1`, `500`, `1000` separately).
pub fn comp_slowdown_at_bucket(
    mix: &WorkloadMix,
    delays: &CompDelayTable,
    bucket: usize,
) -> Slowdown {
    let mut s = 1.0;
    for i in 1..=mix.p() {
        s += mix.pcomp(i) * f64_from_usize(i);
        s += mix.pcomm(i) * delays.delay_at_bucket(i, bucket);
    }
    Slowdown::new(s)
}

/// `C = dcomm × slowdown` — non-dedicated communication cost.
pub fn comm_cost(dcomm: Seconds, mix: &WorkloadMix, delays: &CommDelayTable) -> Seconds {
    dcomm * comm_slowdown(mix, delays)
}

/// `T_sun = dcomp_sun × slowdown` — non-dedicated front-end execution time.
pub fn comp_cost(
    dcomp_sun: Seconds,
    mix: &WorkloadMix,
    delays: &CompDelayTable,
    j_words: u64,
) -> Seconds {
    dcomp_sun * comp_slowdown(mix, delays, j_words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::secs;

    fn comm_table() -> CommDelayTable {
        // delay_comp^i = i (pure CPU splitting), delay_comm^i grows slower.
        CommDelayTable::new(vec![1.0, 2.0, 3.0], vec![0.6, 1.1, 1.5])
    }

    fn comp_table() -> CompDelayTable {
        CompDelayTable::new(
            vec![1, 500, 1000],
            vec![vec![0.2, 0.4, 0.6], vec![0.6, 1.2, 1.8], vec![0.9, 1.8, 2.7]],
        )
    }

    #[test]
    fn dedicated_mix_gives_unit_slowdown() {
        let mix = WorkloadMix::new();
        assert_eq!(comm_slowdown(&mix, &comm_table()), Slowdown::ONE);
        assert_eq!(comp_slowdown(&mix, &comp_table(), 1000), Slowdown::ONE);
    }

    #[test]
    fn all_computing_contenders_reduce_to_cpu_splitting() {
        // Two contenders that never communicate: pcomp_2 = 1.
        let mix = WorkloadMix::from_fracs(&[0.0, 0.0]);
        // Communication: slowdown = 1 + delay_comp^2.
        assert!((comm_slowdown(&mix, &comm_table()).get() - 3.0).abs() < 1e-12);
        // Computation: slowdown = 1 + 2 = p + 1, recovering the CM2 law.
        assert!((comp_slowdown(&mix, &comp_table(), 1000).get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_communicating_contenders_use_comm_delays() {
        let mix = WorkloadMix::from_fracs(&[1.0, 1.0]);
        assert!((comm_slowdown(&mix, &comm_table()).get() - (1.0 + 1.1)).abs() < 1e-12);
        // p = 2 communicating contenders at the j = 1000 bucket: delay 1.8.
        assert!((comp_slowdown(&mix, &comp_table(), 1000).get() - (1.0 + 1.8)).abs() < 1e-12);
    }

    #[test]
    fn mixed_contenders_weight_by_probability() {
        // Paper's example mix: 20% and 30% communication.
        let mix = WorkloadMix::from_fracs(&[0.2, 0.3]);
        let t = comm_table();
        let expect =
            1.0 + mix.pcomp(1) * 1.0 + mix.pcomp(2) * 2.0 + mix.pcomm(1) * 0.6 + mix.pcomm(2) * 1.1;
        assert!((comm_slowdown(&mix, &t).get() - expect).abs() < 1e-12);
    }

    #[test]
    fn comp_slowdown_depends_on_message_size() {
        let mix = WorkloadMix::from_fracs(&[0.5, 0.5]);
        let t = comp_table();
        let small = comp_slowdown(&mix, &t, 10);
        let mid = comp_slowdown(&mix, &t, 500);
        let large = comp_slowdown(&mix, &t, 1200);
        assert!(small < mid && mid < large, "{small} {mid} {large}");
    }

    #[test]
    fn bucket_override_matches_direct_lookup() {
        let mix = WorkloadMix::from_fracs(&[0.4, 0.76]);
        let t = comp_table();
        assert_eq!(comp_slowdown_at_bucket(&mix, &t, 2), comp_slowdown(&mix, &t, 1000));
        assert_eq!(comp_slowdown_at_bucket(&mix, &t, 1), comp_slowdown(&mix, &t, 500));
        assert_eq!(comp_slowdown_at_bucket(&mix, &t, 0), comp_slowdown(&mix, &t, 1));
    }

    #[test]
    fn costs_scale_dedicated_values() {
        let mix = WorkloadMix::from_fracs(&[0.0]);
        let s = comm_slowdown(&mix, &comm_table());
        assert!((comm_cost(secs(2.0), &mix, &comm_table()).get() - 2.0 * s.get()).abs() < 1e-12);
        let sc = comp_slowdown(&mix, &comp_table(), 500);
        assert!(
            (comp_cost(secs(3.0), &mix, &comp_table(), 500).get() - 3.0 * sc.get()).abs() < 1e-12
        );
    }

    #[test]
    fn slowdown_is_at_least_one() {
        let mix = WorkloadMix::from_fracs(&[0.33, 0.66, 0.99]);
        assert!(comm_slowdown(&mix, &comm_table()) >= Slowdown::ONE);
        assert!(comp_slowdown(&mix, &comp_table(), 1) >= Slowdown::ONE);
    }
}
