//! Workload-mix probabilities `pcompᵢ` / `pcommᵢ`.
//!
//! Each of the `p` contending applications alternates computation with
//! communication; application `k` communicates a fraction `fₖ` of the time.
//! Treating the applications' instantaneous states as independent
//! Bernoulli variables, the probability that **exactly `i`** of them are
//! communicating is a Poisson–binomial distribution. The paper computes all
//! `pcommᵢ` (and symmetrically `pcompᵢ`) with a dynamic program:
//!
//! * full generation: `O(p²)`,
//! * adding an application: `O(p)` (one convolution step),
//! * removing one: the paper regenerates in `O(p²)`; this implementation
//!   also offers an `O(p)` deconvolution (numerically guarded).
//!
//! `pcompᵢ = pcomm₍p−i₎` because every application is in exactly one of the
//! two states at any instant, so a single distribution serves both.
//!
//! All updates mutate the distribution **in place** — steady-state `add`
//! and `remove` perform no heap allocation beyond `Vec` growth — and bump
//! a globally unique [`epoch`](WorkloadMix::epoch), which downstream
//! caches (see [`crate::profile`]) use to detect staleness in O(1).

use crate::units::{f64_from_usize, Prob};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tolerance for the deconvolution fallback and invariant checks.
const EPS: f64 = 1e-9;

/// Monotone source of mix epochs. Starts at 1 so 0 can mean "never built"
/// in downstream caches.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// The set of contending applications on the front-end, tracked as the
/// distribution of how many are communicating simultaneously.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    /// Communication fraction per contender.
    fracs: Vec<Prob>,
    /// `comm_dist[i]` = probability exactly `i` contenders communicate.
    comm_dist: Vec<f64>,
    /// Version stamp, replaced with a globally fresh value on every
    /// mutation. Two mixes with equal epochs hold identical
    /// distributions (clones that have not diverged); the converse does
    /// not hold.
    epoch: u64,
}

/// Equality is distribution equality; the epoch is a cache key, not state.
impl PartialEq for WorkloadMix {
    fn eq(&self, other: &Self) -> bool {
        self.fracs == other.fracs && self.comm_dist == other.comm_dist
    }
}

impl Default for WorkloadMix {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadMix {
    /// An empty mix (dedicated machine, `p = 0`).
    pub fn new() -> Self {
        WorkloadMix { fracs: Vec::new(), comm_dist: vec![1.0], epoch: next_epoch() }
    }

    /// Builds a mix from validated communication fractions.
    pub fn from_probs(fracs: &[Prob]) -> Self {
        let mut m = WorkloadMix {
            fracs: fracs.to_vec(),
            comm_dist: Vec::with_capacity(fracs.len() + 1),
            epoch: 0,
        };
        m.regenerate();
        m
    }

    /// Builds a mix from raw communication fractions; panics if any falls
    /// outside `[0, 1]`. Prefer [`Self::from_probs`] where the caller
    /// already holds validated values.
    // modelcheck-allow: naked-f64 — validated convenience boundary for raw inputs
    pub fn from_fracs(fracs: &[f64]) -> Self {
        let probs: Vec<Prob> = fracs.iter().map(|&f| Prob::new(f)).collect();
        Self::from_probs(&probs)
    }

    /// Number of contending applications, `p`.
    pub fn p(&self) -> usize {
        self.fracs.len()
    }

    /// The communication fractions, in insertion order.
    pub fn fracs(&self) -> &[Prob] {
        &self.fracs
    }

    /// The mix's version stamp. Bumped to a globally unique value by
    /// every mutation ([`add`](Self::add), [`remove`](Self::remove),
    /// [`regenerate`](Self::regenerate)), so a cached derivation tagged
    /// with this value can be revalidated in O(1).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adds a contender that communicates a fraction `frac` of the time.
    /// `O(p)` — the paper's incremental arrival update. The convolution
    /// runs in place; no allocation happens beyond amortized `Vec` growth.
    pub fn add(&mut self, frac: Prob) {
        self.convolve_in_place(frac.get());
        self.fracs.push(frac);
        self.epoch = next_epoch();
        self.debug_check_normalized();
    }

    /// One convolution step with `[1-f, f]`, entirely within `comm_dist`.
    /// Walking top-down lets each slot read its old value and its left
    /// neighbor's old value before either is overwritten.
    fn convolve_in_place(&mut self, frac: f64) {
        let d = &mut self.comm_dist;
        d.push(0.0);
        for i in (1..d.len()).rev() {
            d[i] = d[i] * (1.0 - frac) + d[i - 1] * frac;
        }
        d[0] *= 1.0 - frac;
    }

    /// Debug check of the DP's defining invariant: the communicating-count
    /// distribution is a probability distribution, so it must sum to
    /// 1 ± 1e-9 after every mutation.
    fn debug_check_normalized(&self) {
        debug_assert!(
            {
                let total: f64 = self.comm_dist.iter().sum();
                (total - 1.0).abs() <= EPS
            },
            "mix distribution no longer sums to 1: {:?}",
            self.comm_dist
        );
    }

    /// Removes the contender at `index` by `O(p)` deconvolution, falling
    /// back to `O(p²)` regeneration when the division is ill-conditioned.
    /// Runs in place (the fallback reuses the existing buffer). Returns
    /// the removed fraction, or `None` if out of range.
    pub fn remove(&mut self, index: usize) -> Option<Prob> {
        if index >= self.fracs.len() {
            return None;
        }
        let removed = self.fracs.remove(index);
        let f = removed.get();
        self.epoch = next_epoch();
        // Deconvolve: comm_dist = old ⊛ [1-f, f]  =>  recover old. Each
        // step divides by (1 - f), amplifying rounding error by up to
        // (1/(1-f))^p overall, so fall back to regeneration (the paper's
        // O(p²) path) unless the division is comfortably conditioned.
        let n = self.comm_dist.len() - 1;
        if 1.0 - f > 0.1 {
            // Forward pass overwrites comm_dist[i] with the recovered
            // old[i]; slot i only needs the not-yet-touched comm_dist[i]
            // and the already-recovered carry, so in place is safe. A
            // bail-out mid-pass leaves the buffer partially overwritten,
            // which is fine: the fallback rebuilds it from `fracs`.
            let mut carry = 0.0;
            let mut ok = true;
            for i in 0..n {
                let v = (self.comm_dist[i] - carry * f) / (1.0 - f);
                if !(-EPS..=1.0 + EPS).contains(&v) {
                    ok = false;
                    break;
                }
                carry = v.clamp(0.0, 1.0);
                self.comm_dist[i] = carry;
            }
            if ok {
                self.comm_dist.truncate(n);
                self.debug_check_normalized();
                return Some(removed);
            }
        } else if (1.0 - f).abs() <= EPS {
            // f == 1: the contender always communicates; old dist is a
            // left shift.
            self.comm_dist.remove(0);
            self.debug_check_normalized();
            return Some(removed);
        }
        // Ill-conditioned: regenerate as in the paper.
        self.regenerate();
        Some(removed)
    }

    /// Rebuilds the distribution from scratch — the paper's `O(p²)` path.
    /// Reuses the existing buffer; allocation-free once capacity exists.
    pub fn regenerate(&mut self) {
        self.comm_dist.clear();
        self.comm_dist.push(1.0);
        for k in 0..self.fracs.len() {
            let f = self.fracs[k].get();
            self.convolve_in_place(f);
        }
        self.epoch = next_epoch();
        self.debug_check_normalized();
    }

    /// Probability that exactly `i` contenders are communicating
    /// (`pcommᵢ`). Zero outside `0..=p`.
    pub fn pcomm(&self, i: usize) -> Prob {
        Prob::new_unchecked(self.comm_dist.get(i).copied().unwrap_or(0.0))
    }

    /// Probability that exactly `i` contenders are computing (`pcompᵢ`).
    /// Equals `pcomm₍p−i₎`.
    pub fn pcomp(&self, i: usize) -> Prob {
        if i > self.p() {
            Prob::ZERO
        } else {
            Prob::new_unchecked(self.comm_dist[self.p() - i])
        }
    }

    /// The full communicating-count distribution, indices `0..=p`.
    // modelcheck-allow: naked-f64 — raw view of the DP buffer for diagnostics
    pub fn comm_dist(&self) -> &[f64] {
        &self.comm_dist
    }

    /// Expected number of communicating contenders (diagnostic).
    // modelcheck-allow: naked-f64 — dimensionless expectation, may exceed 1
    pub fn expected_communicating(&self) -> f64 {
        self.comm_dist.iter().enumerate().map(|(i, &c)| f64_from_usize(i) * c).sum()
    }
}

// The epoch is process-local, so it is excluded from the wire format and
// reassigned fresh on deserialization (a stored epoch could collide with
// a live one and confuse epoch-keyed caches).
impl Serialize for WorkloadMix {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("fracs".to_string(), self.fracs.to_value()),
            ("comm_dist".to_string(), self.comm_dist.to_value()),
        ])
    }
}

impl Deserialize for WorkloadMix {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| serde::Error::msg(format!("missing field `{name}`")))
        };
        Ok(WorkloadMix {
            fracs: Vec::<Prob>::from_value(field("fracs")?)?,
            comm_dist: Vec::<f64>::from_value(field("comm_dist")?)?,
            epoch: next_epoch(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::prob;

    fn close(a: Prob, b: f64) -> bool {
        (a.get() - b).abs() < 1e-12
    }

    #[test]
    fn empty_mix_is_certainly_idle() {
        let m = WorkloadMix::new();
        assert_eq!(m.p(), 0);
        assert!(close(m.pcomm(0), 1.0));
        assert!(close(m.pcomp(0), 1.0));
        assert_eq!(m.pcomm(1), Prob::ZERO);
    }

    #[test]
    fn paper_worked_example() {
        // p = 2; one app communicates 20% / computes 80%, the other 30%/70%.
        let m = WorkloadMix::from_fracs(&[0.2, 0.3]);
        assert!(close(m.pcomm(1), 0.2 * 0.7 + 0.3 * 0.8), "pcomm1 = {}", m.pcomm(1));
        assert!(close(m.pcomm(2), 0.2 * 0.3));
        assert!(close(m.pcomp(1), 0.2 * 0.7 + 0.3 * 0.8));
        assert!(close(m.pcomp(2), 0.7 * 0.8));
        // And the leftover mass:
        assert!(close(m.pcomm(0), 0.8 * 0.7));
        assert!(close(m.pcomp(0), 0.2 * 0.3));
    }

    #[test]
    fn from_probs_matches_from_fracs() {
        let a = WorkloadMix::from_probs(&[prob(0.2), prob(0.3)]);
        let b = WorkloadMix::from_fracs(&[0.2, 0.3]);
        assert_eq!(a, b);
        assert_eq!(a.fracs(), &[prob(0.2), prob(0.3)]);
    }

    #[test]
    fn distribution_sums_to_one() {
        let m = WorkloadMix::from_fracs(&[0.1, 0.5, 0.9, 0.33, 0.66]);
        let total: f64 = m.comm_dist().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pcomp_is_mirror_of_pcomm() {
        let m = WorkloadMix::from_fracs(&[0.25, 0.76]);
        for i in 0..=m.p() {
            assert!(close(m.pcomp(i), m.pcomm(m.p() - i).get()));
        }
    }

    #[test]
    fn remove_inverts_add() {
        let mut m = WorkloadMix::from_fracs(&[0.2, 0.5, 0.8]);
        let before = WorkloadMix::from_fracs(&[0.2, 0.8]);
        assert_eq!(m.remove(1), Some(prob(0.5)));
        assert_eq!(m.p(), 2);
        for i in 0..=2 {
            assert!(
                (m.pcomm(i).get() - before.pcomm(i).get()).abs() < 1e-9,
                "i={i}: {} vs {}",
                m.pcomm(i),
                before.pcomm(i)
            );
        }
    }

    #[test]
    fn remove_handles_always_communicating() {
        let mut m = WorkloadMix::from_fracs(&[1.0, 0.5]);
        assert_eq!(m.remove(0), Some(Prob::ONE));
        assert!(close(m.pcomm(0), 0.5));
        assert!(close(m.pcomm(1), 0.5));
    }

    #[test]
    fn remove_out_of_range() {
        let mut m = WorkloadMix::from_fracs(&[0.5]);
        assert_eq!(m.remove(3), None);
        assert_eq!(m.p(), 1);
    }

    #[test]
    fn regenerate_matches_incremental() {
        let mut m = WorkloadMix::from_fracs(&[0.12, 0.34, 0.56, 0.78]);
        let snapshot = m.clone();
        m.regenerate();
        for i in 0..=m.p() {
            assert!(close(m.pcomm(i), snapshot.pcomm(i).get()));
        }
    }

    #[test]
    fn expected_value_is_sum_of_fracs() {
        let fracs = [0.2, 0.3, 0.5];
        let m = WorkloadMix::from_fracs(&fracs);
        assert!((m.expected_communicating() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_fraction_rejected() {
        WorkloadMix::from_fracs(&[1.5]);
    }

    #[test]
    fn all_certain_states() {
        let m = WorkloadMix::from_fracs(&[0.0, 0.0, 1.0]);
        assert!(close(m.pcomm(1), 1.0));
        assert!(close(m.pcomp(2), 1.0));
    }

    #[test]
    fn epochs_are_unique_and_bump_on_mutation() {
        let a = WorkloadMix::new();
        let b = WorkloadMix::new();
        assert_ne!(a.epoch(), b.epoch(), "fresh mixes get distinct epochs");

        let mut m = WorkloadMix::from_fracs(&[0.2]);
        let e0 = m.epoch();
        m.add(prob(0.5));
        let e1 = m.epoch();
        assert_ne!(e0, e1, "add bumps the epoch");
        m.remove(0);
        let e2 = m.epoch();
        assert_ne!(e1, e2, "remove bumps the epoch");
        m.regenerate();
        assert_ne!(e2, m.epoch(), "regenerate bumps the epoch");
    }

    #[test]
    fn clones_share_epoch_until_divergence() {
        let m = WorkloadMix::from_fracs(&[0.3, 0.6]);
        let mut c = m.clone();
        assert_eq!(m.epoch(), c.epoch());
        c.add(prob(0.1));
        assert_ne!(m.epoch(), c.epoch());
    }

    #[test]
    fn equality_ignores_epoch() {
        let a = WorkloadMix::from_fracs(&[0.2, 0.4]);
        let b = WorkloadMix::from_fracs(&[0.2, 0.4]);
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a, b);
    }

    #[test]
    fn steady_state_updates_do_not_allocate() {
        // After one add at peak size, capacity suffices for any
        // add/remove cycle at or below that size.
        let mut m = WorkloadMix::from_fracs(&[0.2, 0.4, 0.6]);
        m.add(prob(0.5));
        m.remove(3);
        let cap_dist = m.comm_dist.capacity();
        let cap_fracs = m.fracs.capacity();
        for _ in 0..100 {
            m.add(prob(0.5));
            m.remove(3);
        }
        assert_eq!(m.comm_dist.capacity(), cap_dist);
        assert_eq!(m.fracs.capacity(), cap_fracs);
    }

    #[test]
    fn serde_roundtrip_refreshes_epoch() {
        let m = WorkloadMix::from_fracs(&[0.25, 0.76]);
        let v = m.to_value();
        let back = WorkloadMix::from_value(&v).expect("roundtrip");
        assert_eq!(m, back);
        assert_ne!(m.epoch(), back.epoch());
    }
}
