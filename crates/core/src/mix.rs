//! Workload-mix probabilities `pcompᵢ` / `pcommᵢ`.
//!
//! Each of the `p` contending applications alternates computation with
//! communication; application `k` communicates a fraction `fₖ` of the time.
//! Treating the applications' instantaneous states as independent
//! Bernoulli variables, the probability that **exactly `i`** of them are
//! communicating is a Poisson–binomial distribution. The paper computes all
//! `pcommᵢ` (and symmetrically `pcompᵢ`) with a dynamic program:
//!
//! * full generation: `O(p²)`,
//! * adding an application: `O(p)` (one convolution step),
//! * removing one: the paper regenerates in `O(p²)`; this implementation
//!   also offers an `O(p)` deconvolution (numerically guarded).
//!
//! `pcompᵢ = pcomm₍p−i₎` because every application is in exactly one of the
//! two states at any instant, so a single distribution serves both.

use serde::{Deserialize, Serialize};

/// Tolerance for the deconvolution fallback and invariant checks.
const EPS: f64 = 1e-9;

/// The set of contending applications on the front-end, tracked as the
/// distribution of how many are communicating simultaneously.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Communication fraction per contender, in `[0, 1]`.
    fracs: Vec<f64>,
    /// `comm_dist[i]` = probability exactly `i` contenders communicate.
    comm_dist: Vec<f64>,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadMix {
    /// An empty mix (dedicated machine, `p = 0`).
    pub fn new() -> Self {
        WorkloadMix { fracs: Vec::new(), comm_dist: vec![1.0] }
    }

    /// Builds a mix from communication fractions.
    pub fn from_fracs(fracs: &[f64]) -> Self {
        let mut m = WorkloadMix::new();
        for &f in fracs {
            m.add(f);
        }
        m
    }

    /// Number of contending applications, `p`.
    pub fn p(&self) -> usize {
        self.fracs.len()
    }

    /// The communication fractions, in insertion order.
    pub fn fracs(&self) -> &[f64] {
        &self.fracs
    }

    /// Adds a contender that communicates a fraction `frac` of the time.
    /// `O(p)` — the paper's incremental arrival update.
    pub fn add(&mut self, frac: f64) {
        assert!((0.0..=1.0).contains(&frac), "communication fraction {frac} outside [0,1]");
        let n = self.comm_dist.len();
        let mut next = vec![0.0; n + 1];
        for (i, &c) in self.comm_dist.iter().enumerate() {
            next[i] += c * (1.0 - frac);
            next[i + 1] += c * frac;
        }
        self.comm_dist = next;
        self.fracs.push(frac);
    }

    /// Removes the contender at `index` by `O(p)` deconvolution, falling
    /// back to `O(p²)` regeneration when the division is ill-conditioned.
    /// Returns the removed fraction, or `None` if out of range.
    pub fn remove(&mut self, index: usize) -> Option<f64> {
        if index >= self.fracs.len() {
            return None;
        }
        let f = self.fracs.remove(index);
        // Deconvolve: comm_dist = old ⊛ [1-f, f]  =>  recover old. Each
        // step divides by (1 - f), amplifying rounding error by up to
        // (1/(1-f))^p overall, so fall back to regeneration (the paper's
        // O(p²) path) unless the division is comfortably conditioned.
        let n = self.comm_dist.len() - 1;
        if 1.0 - f > 0.1 {
            let mut old = vec![0.0; n];
            let mut carry = 0.0;
            let mut ok = true;
            for i in 0..n {
                let v = (self.comm_dist[i] - carry * f) / (1.0 - f);
                if !(-EPS..=1.0 + EPS).contains(&v) {
                    ok = false;
                    break;
                }
                old[i] = v.clamp(0.0, 1.0);
                carry = old[i];
            }
            if ok {
                self.comm_dist = old;
                return Some(f);
            }
        } else if (1.0 - f).abs() <= EPS {
            // f == 1: the contender always communicates; old dist is a
            // left shift.
            self.comm_dist = self.comm_dist[1..].to_vec();
            return Some(f);
        }
        // Ill-conditioned: regenerate as in the paper.
        self.regenerate();
        Some(f)
    }

    /// Rebuilds the distribution from scratch — the paper's `O(p²)` path.
    pub fn regenerate(&mut self) {
        let fracs = std::mem::take(&mut self.fracs);
        *self = WorkloadMix::from_fracs(&fracs);
    }

    /// Probability that exactly `i` contenders are communicating
    /// (`pcommᵢ`). Zero outside `0..=p`.
    pub fn pcomm(&self, i: usize) -> f64 {
        self.comm_dist.get(i).copied().unwrap_or(0.0)
    }

    /// Probability that exactly `i` contenders are computing (`pcompᵢ`).
    /// Equals `pcomm₍p−i₎`.
    pub fn pcomp(&self, i: usize) -> f64 {
        if i > self.p() {
            0.0
        } else {
            self.comm_dist[self.p() - i]
        }
    }

    /// The full communicating-count distribution, indices `0..=p`.
    pub fn comm_dist(&self) -> &[f64] {
        &self.comm_dist
    }

    /// Expected number of communicating contenders (diagnostic).
    pub fn expected_communicating(&self) -> f64 {
        self.comm_dist
            .iter()
            .enumerate()
            .map(|(i, &c)| i as f64 * c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn empty_mix_is_certainly_idle() {
        let m = WorkloadMix::new();
        assert_eq!(m.p(), 0);
        assert!(close(m.pcomm(0), 1.0));
        assert!(close(m.pcomp(0), 1.0));
        assert_eq!(m.pcomm(1), 0.0);
    }

    #[test]
    fn paper_worked_example() {
        // p = 2; one app communicates 20% / computes 80%, the other 30%/70%.
        let m = WorkloadMix::from_fracs(&[0.2, 0.3]);
        assert!(close(m.pcomm(1), 0.2 * 0.7 + 0.3 * 0.8), "pcomm1 = {}", m.pcomm(1));
        assert!(close(m.pcomm(2), 0.2 * 0.3));
        assert!(close(m.pcomp(1), 0.2 * 0.7 + 0.3 * 0.8));
        assert!(close(m.pcomp(2), 0.7 * 0.8));
        // And the leftover mass:
        assert!(close(m.pcomm(0), 0.8 * 0.7));
        assert!(close(m.pcomp(0), 0.2 * 0.3));
    }

    #[test]
    fn distribution_sums_to_one() {
        let m = WorkloadMix::from_fracs(&[0.1, 0.5, 0.9, 0.33, 0.66]);
        let total: f64 = m.comm_dist().iter().sum();
        assert!(close(total, 1.0));
    }

    #[test]
    fn pcomp_is_mirror_of_pcomm() {
        let m = WorkloadMix::from_fracs(&[0.25, 0.76]);
        for i in 0..=m.p() {
            assert!(close(m.pcomp(i), m.pcomm(m.p() - i)));
        }
    }

    #[test]
    fn remove_inverts_add() {
        let mut m = WorkloadMix::from_fracs(&[0.2, 0.5, 0.8]);
        let before = WorkloadMix::from_fracs(&[0.2, 0.8]);
        assert_eq!(m.remove(1), Some(0.5));
        assert_eq!(m.p(), 2);
        for i in 0..=2 {
            assert!(
                (m.pcomm(i) - before.pcomm(i)).abs() < 1e-9,
                "i={i}: {} vs {}",
                m.pcomm(i),
                before.pcomm(i)
            );
        }
    }

    #[test]
    fn remove_handles_always_communicating() {
        let mut m = WorkloadMix::from_fracs(&[1.0, 0.5]);
        assert_eq!(m.remove(0), Some(1.0));
        assert!(close(m.pcomm(0), 0.5));
        assert!(close(m.pcomm(1), 0.5));
    }

    #[test]
    fn remove_out_of_range() {
        let mut m = WorkloadMix::from_fracs(&[0.5]);
        assert_eq!(m.remove(3), None);
        assert_eq!(m.p(), 1);
    }

    #[test]
    fn regenerate_matches_incremental() {
        let mut m = WorkloadMix::from_fracs(&[0.12, 0.34, 0.56, 0.78]);
        let snapshot = m.clone();
        m.regenerate();
        for i in 0..=m.p() {
            assert!(close(m.pcomm(i), snapshot.pcomm(i)));
        }
    }

    #[test]
    fn expected_value_is_sum_of_fracs() {
        let fracs = [0.2, 0.3, 0.5];
        let m = WorkloadMix::from_fracs(&fracs);
        assert!(close(m.expected_communicating(), 1.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_fraction_rejected() {
        WorkloadMix::from_fracs(&[1.5]);
    }

    #[test]
    fn all_certain_states() {
        let m = WorkloadMix::from_fracs(&[0.0, 0.0, 1.0]);
        assert!(close(m.pcomm(1), 1.0));
        assert!(close(m.pcomp(2), 1.0));
    }
}
