//! Memory constraints (paper §4, future work).
//!
//! The base model assumes "the working set of each application executing
//! on the platform fits in memory, i.e., no delay is imposed by
//! swapping". The paper lists relaxing this as future work: "We are
//! currently extending our model to include memory constraints."
//!
//! This module adds that extension: a machine has a physical memory
//! capacity; the resident working sets of all applications compete for
//! it. While total demand fits, nothing changes. Once it overflows, every
//! application pays a paging penalty that grows with the overcommit ratio
//! — the classic thrashing knee. The penalty multiplies the CPU slowdown
//! produced by the base model (paging steals cycles *and* overlaps badly
//! with timesharing).

use crate::units::{f64_from_u64, Slowdown};
use serde::{Deserialize, Serialize};

/// Memory description of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Physical memory available to applications, in words.
    pub capacity_words: u64,
    /// Penalty steepness: extra relative slowdown per unit of overcommit
    /// (demand/capacity − 1). Measured once per platform, like the delay
    /// tables; a few units is typical for 1996 paging-to-disk systems.
    pub thrash_factor: f64,
}

impl MemoryModel {
    /// Builds a model; capacity must be positive.
    // modelcheck-allow: naked-f64 — thrash_factor is a dimensionless steepness coefficient
    pub fn new(capacity_words: u64, thrash_factor: f64) -> Self {
        assert!(capacity_words > 0, "zero memory capacity");
        assert!(thrash_factor >= 0.0, "negative thrash factor");
        MemoryModel { capacity_words, thrash_factor }
    }

    /// Total working-set demand of a set of applications, in words.
    pub fn total_demand(working_sets: &[u64]) -> u64 {
        working_sets.iter().sum()
    }

    /// The paging multiplier for the given resident working sets: `1`
    /// while everything fits, growing linearly in the overcommit ratio
    /// beyond capacity.
    ///
    /// `multiplier = 1 + thrash_factor × max(0, demand/capacity − 1)`
    pub fn paging_multiplier(&self, working_sets: &[u64]) -> Slowdown {
        let demand = f64_from_u64(Self::total_demand(working_sets));
        let over = (demand / f64_from_u64(self.capacity_words) - 1.0).max(0.0);
        Slowdown::new(1.0 + self.thrash_factor * over)
    }

    /// True if the sets fit without paging (the base model's assumption).
    pub fn fits(&self, working_sets: &[u64]) -> bool {
        Self::total_demand(working_sets) <= self.capacity_words
    }

    /// Memory-adjusted slowdown: the base model's CPU slowdown multiplied
    /// by the paging penalty.
    pub fn adjust_slowdown(&self, base_slowdown: Slowdown, working_sets: &[u64]) -> Slowdown {
        base_slowdown * self.paging_multiplier(working_sets)
    }

    /// The largest additional working set (words) that still avoids
    /// paging given the currently resident sets — the admission headroom
    /// a memory-aware scheduler would check before placing a task.
    pub fn headroom(&self, working_sets: &[u64]) -> u64 {
        self.capacity_words.saturating_sub(Self::total_demand(working_sets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MemoryModel {
        // 8 M words (32 MB of f64-ish data) and a steep thrash penalty.
        MemoryModel::new(8_000_000, 4.0)
    }

    #[test]
    fn no_penalty_while_fitting() {
        let m = mm();
        let sets = [2_000_000u64, 3_000_000, 3_000_000];
        assert!(m.fits(&sets));
        assert_eq!(m.paging_multiplier(&sets), Slowdown::ONE);
        assert_eq!(m.adjust_slowdown(Slowdown::new(4.0), &sets).get(), 4.0);
    }

    #[test]
    fn penalty_grows_linearly_beyond_capacity() {
        let m = mm();
        // 50% overcommit → multiplier 1 + 4 × 0.5 = 3.
        let sets = [12_000_000u64];
        assert!(!m.fits(&sets));
        assert!((m.paging_multiplier(&sets).get() - 3.0).abs() < 1e-12);
        assert!((m.adjust_slowdown(Slowdown::new(2.0), &sets).get() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn exact_fit_is_free() {
        let m = mm();
        let sets = [8_000_000u64];
        assert!(m.fits(&sets));
        assert_eq!(m.paging_multiplier(&sets), Slowdown::ONE);
        assert_eq!(m.headroom(&sets), 0);
    }

    #[test]
    fn headroom_accounting() {
        let m = mm();
        assert_eq!(m.headroom(&[]), 8_000_000);
        assert_eq!(m.headroom(&[5_000_000]), 3_000_000);
        assert_eq!(m.headroom(&[9_000_000]), 0);
    }

    #[test]
    fn multiplier_monotone_in_demand() {
        let m = mm();
        let mut prev = Slowdown::ONE;
        for extra in (0..10).map(|i| i * 2_000_000) {
            let mult = m.paging_multiplier(&[6_000_000, extra]);
            assert!(mult >= prev);
            prev = mult;
        }
    }

    #[test]
    #[should_panic(expected = "zero memory")]
    fn zero_capacity_rejected() {
        MemoryModel::new(0, 1.0);
    }
}
