//! The Sun/CM2 contention model (paper §3.1).
//!
//! The CM2 is driven synchronously by the front-end, whose scheduler splits
//! CPU cycles evenly among equal-priority processes. With `p` extra
//! CPU-bound applications on the front-end everything that consumes
//! front-end CPU — local computation, element-wise transfers to/from the
//! CM2, and the serial/scalar portion of CM2 programs — runs `p + 1` times
//! slower. The CM2-resident parallel work itself is unaffected because only
//! one application can hold the sequencer.

use crate::units::{Seconds, Slowdown};
use serde::{Deserialize, Serialize};

/// The front-end slowdown with `p` extra CPU-bound processes: `p + 1`.
pub fn slowdown(p: u32) -> Slowdown {
    Slowdown::new(f64::from(p + 1))
}

/// Dedicated-mode cost decomposition of a task that runs its parallel
/// instructions on the CM2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cm2TaskCosts {
    /// `dcomp_sun` — dedicated time to execute the task entirely on the
    /// front-end.
    pub dcomp_sun: Seconds,
    /// `dcomp_cm2` — dedicated time of the parallel instructions on the CM2.
    pub dcomp_cm2: Seconds,
    /// `didle_cm2` — dedicated CM2 idle time while waiting for instructions
    /// from the front-end. Never exceeds `dserial_cm2` (the front-end may
    /// pre-execute serial code while the CM2 computes).
    pub didle_cm2: Seconds,
    /// `dserial_cm2` — dedicated front-end time of the serial/scalar parts
    /// of the CM2 version of the task.
    pub dserial_cm2: Seconds,
}

impl Cm2TaskCosts {
    /// Builds a cost decomposition, checking the paper's structural
    /// invariant `didle_cm2 ≤ dserial_cm2`. (Non-negativity is already
    /// guaranteed by the [`Seconds`] type.)
    pub fn new(
        dcomp_sun: Seconds,
        dcomp_cm2: Seconds,
        didle_cm2: Seconds,
        dserial_cm2: Seconds,
    ) -> Self {
        assert!(
            didle_cm2.get() <= dserial_cm2.get() + 1e-12,
            "didle_cm2 ({didle_cm2}) cannot exceed dserial_cm2 ({dserial_cm2})"
        );
        Cm2TaskCosts { dcomp_sun, dcomp_cm2, didle_cm2, dserial_cm2 }
    }

    /// `T_sun = dcomp_sun × (p + 1)` — predicted time on the front-end.
    pub fn t_sun(&self, p: u32) -> Seconds {
        self.dcomp_sun * slowdown(p)
    }

    /// `T_cm2 = max(dcomp_cm2 + didle_cm2, dserial_cm2 × (p + 1))` —
    /// predicted time when the parallel instructions run on the CM2.
    ///
    /// The first argument is the CM2-side critical path (parallel work plus
    /// dedicated idle waiting for the front-end); the second is the
    /// slowed-down front-end serial stream. Whichever is longer bounds the
    /// elapsed time.
    pub fn t_cm2(&self, p: u32) -> Seconds {
        (self.dcomp_cm2 + self.didle_cm2).max(self.dserial_cm2 * slowdown(p))
    }

    /// Smallest `p` at which the slowed serial stream, rather than the CM2
    /// pipeline, dominates `T_cm2` — i.e. where contention starts to hurt
    /// the back-end execution. `None` if the serial part is zero.
    pub fn contention_onset(&self) -> Option<u32> {
        if self.dserial_cm2 <= Seconds::ZERO {
            return None;
        }
        let ratio = (self.dcomp_cm2 + self.didle_cm2) / self.dserial_cm2;
        // Need (p+1) > ratio, so p = ceil(ratio - 1), clamped at 0.
        // modelcheck-allow: lossy-cast — ratio is a small non-negative count
        Some(((ratio - 1.0).max(0.0)).ceil() as u32)
    }
}

/// `C = dcomm × (p + 1)` — non-dedicated communication cost on the
/// Sun/CM2 platform, where transfers are front-end CPU-driven.
pub fn comm_cost(dcomm: Seconds, p: u32) -> Seconds {
    dcomm * slowdown(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::secs;

    fn costs(dcomp_sun: f64, dcomp_cm2: f64, didle_cm2: f64, dserial_cm2: f64) -> Cm2TaskCosts {
        Cm2TaskCosts::new(secs(dcomp_sun), secs(dcomp_cm2), secs(didle_cm2), secs(dserial_cm2))
    }

    #[test]
    fn slowdown_law() {
        assert_eq!(slowdown(0), Slowdown::ONE);
        assert_eq!(slowdown(3).get(), 4.0);
    }

    #[test]
    fn t_sun_scales_linearly() {
        let c = costs(10.0, 0.0, 0.0, 0.0);
        assert_eq!(c.t_sun(0).get(), 10.0);
        assert_eq!(c.t_sun(3).get(), 40.0);
    }

    #[test]
    fn t_cm2_takes_the_max() {
        // CM2-dominated: parallel work large, serial tiny.
        let big_parallel = costs(0.0, 100.0, 5.0, 6.0);
        assert_eq!(big_parallel.t_cm2(0).get(), 105.0);
        assert_eq!(big_parallel.t_cm2(3).get(), 105.0); // contention invisible
                                                        // Serial-dominated under contention.
        let serial_heavy = costs(0.0, 10.0, 2.0, 8.0);
        assert_eq!(serial_heavy.t_cm2(0).get(), 12.0); // 10+2 > 8
        assert_eq!(serial_heavy.t_cm2(3).get(), 32.0); // 8*4 > 12
    }

    #[test]
    fn contention_onset_threshold() {
        let c = costs(0.0, 10.0, 2.0, 4.0);
        // ratio = 12/4 = 3 → need p+1 > 3 → onset at p = 2.
        assert_eq!(c.contention_onset(), Some(2));
        assert!(c.t_cm2(1).get() == 12.0 && c.t_cm2(2).get() == 12.0 && c.t_cm2(3).get() > 12.0);
        let pure = costs(0.0, 10.0, 0.0, 0.0);
        assert_eq!(pure.contention_onset(), None);
    }

    #[test]
    fn comm_cost_scales_with_p() {
        assert_eq!(comm_cost(secs(2.5), 0).get(), 2.5);
        assert_eq!(comm_cost(secs(2.5), 3).get(), 10.0);
    }

    #[test]
    #[should_panic(expected = "didle_cm2")]
    fn idle_cannot_exceed_serial() {
        costs(0.0, 1.0, 5.0, 2.0);
    }
}
