//! Dedicated-mode communication cost models.
//!
//! Both platforms model the dedicated time to move data sets across the
//! link as a startup-plus-bandwidth law per message,
//!
//! ```text
//! dcomm = Σᵢ Nᵢ × (α + sizeᵢ / β)
//! ```
//!
//! with `α` the startup time (seconds) and `β` the effective bandwidth
//! (words/second). The Sun/Paragon platform refines this into a
//! **piecewise-linear** function of message size with a calibrated
//! `threshold`: one `(α, β)` pair for messages of at most `threshold` words
//! and another for larger ones (1024 words on the real platform).
//!
//! Dedicated costs depend only on the `<application, problem-size,
//! platform>` triple — they are computed once and never at run time.

use crate::dataset::DataSet;
use serde::{Deserialize, Serialize};

/// Single-piece startup/bandwidth model: `t(msg) = α + words/β`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCommModel {
    /// Per-message startup time, seconds (`α`).
    pub alpha: f64,
    /// Effective bandwidth, words per second (`β`).
    pub beta: f64,
}

impl LinearCommModel {
    /// Builds a model; `beta` must be positive, `alpha` non-negative.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha >= 0.0, "negative startup time");
        assert!(beta > 0.0, "bandwidth must be positive");
        LinearCommModel { alpha, beta }
    }

    /// Builds a model from a regression fit. Unlike [`Self::new`], a
    /// negative intercept is allowed: a fitted piece is an empirical
    /// approximation valid on its own size range, and convex cost curves
    /// (e.g. buffer-overflow regimes) produce large-message pieces whose
    /// extrapolated intercept is below zero.
    pub fn from_fit(alpha: f64, beta: f64) -> Self {
        assert!(beta > 0.0, "bandwidth must be positive");
        LinearCommModel { alpha, beta }
    }

    /// Dedicated time for one message of `words` words.
    pub fn message_time(&self, words: u64) -> f64 {
        self.alpha + words as f64 / self.beta
    }

    /// Dedicated time for one data set.
    pub fn dataset_time(&self, set: DataSet) -> f64 {
        set.messages as f64 * self.message_time(set.words)
    }

    /// Dedicated time for a collection of data sets — the paper's `dcomm`.
    pub fn dcomm(&self, sets: &[DataSet]) -> f64 {
        sets.iter().map(|&s| self.dataset_time(s)).sum()
    }
}

/// Piecewise-linear model: one `(α, β)` pair per side of `threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseCommModel {
    /// Piece boundary in words; messages with `words <= threshold` use
    /// `small`, larger ones use `large`.
    pub threshold: u64,
    /// Model for messages of at most `threshold` words (`α₁`, `β₁`).
    pub small: LinearCommModel,
    /// Model for messages of more than `threshold` words (`α₂`, `β₂`).
    pub large: LinearCommModel,
}

impl PiecewiseCommModel {
    /// Builds a piecewise model from its two pieces.
    pub fn new(threshold: u64, small: LinearCommModel, large: LinearCommModel) -> Self {
        PiecewiseCommModel { threshold, small, large }
    }

    /// A degenerate piecewise model that uses `model` everywhere — handy
    /// for comparing single-piece vs piecewise accuracy (ablation).
    pub fn uniform(model: LinearCommModel) -> Self {
        PiecewiseCommModel { threshold: u64::MAX, small: model, large: model }
    }

    /// The piece governing a message of `words` words.
    pub fn piece(&self, words: u64) -> &LinearCommModel {
        if words <= self.threshold {
            &self.small
        } else {
            &self.large
        }
    }

    /// Dedicated time for one message of `words` words.
    pub fn message_time(&self, words: u64) -> f64 {
        self.piece(words).message_time(words)
    }

    /// Dedicated time for one data set (all messages share one piece).
    pub fn dataset_time(&self, set: DataSet) -> f64 {
        set.messages as f64 * self.message_time(set.words)
    }

    /// Dedicated time for a collection of data sets — the paper's
    /// two-term `dcomm` with `{data sets}₁` and `{data sets}₂` split at
    /// `threshold`.
    pub fn dcomm(&self, sets: &[DataSet]) -> f64 {
        sets.iter().map(|&s| self.dataset_time(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_message_time() {
        let m = LinearCommModel::new(1e-3, 1e6);
        // 1000 words at 10^6 words/s = 1 ms, plus 1 ms startup.
        assert!((m.message_time(1000) - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn dcomm_sums_over_sets() {
        let m = LinearCommModel::new(0.5, 2.0);
        let sets = [DataSet::new(2, 4), DataSet::new(3, 2)];
        // 2*(0.5 + 2) + 3*(0.5 + 1) = 5 + 4.5 = 9.5
        assert!((m.dcomm(&sets) - 9.5).abs() < 1e-12);
        assert_eq!(m.dcomm(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        LinearCommModel::new(0.0, 0.0);
    }

    #[test]
    fn piecewise_selects_piece_inclusively() {
        let small = LinearCommModel::new(1.0, 10.0);
        let large = LinearCommModel::new(5.0, 100.0);
        let m = PiecewiseCommModel::new(1024, small, large);
        // At the threshold: small piece (paper: "threshold or less words").
        assert!((m.message_time(1024) - (1.0 + 102.4)).abs() < 1e-9);
        // Just above: large piece.
        assert!((m.message_time(1025) - (5.0 + 10.25)).abs() < 1e-9);
    }

    #[test]
    fn piecewise_dcomm_splits_sets() {
        let small = LinearCommModel::new(1.0, 1.0);
        let large = LinearCommModel::new(2.0, 2.0);
        let m = PiecewiseCommModel::new(10, small, large);
        let sets = [DataSet::new(1, 10), DataSet::new(1, 20)];
        // small: 1 + 10 = 11; large: 2 + 10 = 12.
        assert!((m.dcomm(&sets) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_matches_single_piece() {
        let base = LinearCommModel::new(0.25, 8.0);
        let m = PiecewiseCommModel::uniform(base);
        let sets = [DataSet::new(7, 3), DataSet::new(2, 1_000_000)];
        assert!((m.dcomm(&sets) - base.dcomm(&sets)).abs() < 1e-9);
    }
}
