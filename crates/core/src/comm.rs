//! Dedicated-mode communication cost models.
//!
//! Both platforms model the dedicated time to move data sets across the
//! link as a startup-plus-bandwidth law per message,
//!
//! ```text
//! dcomm = Σᵢ Nᵢ × (α + sizeᵢ / β)
//! ```
//!
//! with `α` the startup time (seconds) and `β` the effective bandwidth
//! (words/second). The Sun/Paragon platform refines this into a
//! **piecewise-linear** function of message size with a calibrated
//! `threshold`: one `(α, β)` pair for messages of at most `threshold` words
//! and another for larger ones (1024 words on the real platform).
//!
//! Dedicated costs depend only on the `<application, problem-size,
//! platform>` triple — they are computed once and never at run time.

use crate::dataset::DataSet;
use crate::units::{f64_from_u64, secs, BytesPerSec, Seconds, Words};
use serde::{Deserialize, Serialize};

/// Single-piece startup/bandwidth model: `t(msg) = α + words/β`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCommModel {
    /// Per-message startup time in seconds (`α`). Physical startups are
    /// non-negative — use [`Self::new`] to enforce that; pieces produced
    /// by [`Self::from_fit`] are empirical intercepts valid on their own
    /// size range and may extrapolate below zero, which is why this field
    /// is a raw number rather than a [`Seconds`].
    pub alpha: f64,
    /// Effective bandwidth (`β`).
    pub beta: BytesPerSec,
}

impl LinearCommModel {
    /// Builds a model from a physical startup time and bandwidth. The
    /// distinct parameter types make a transposed `(α, β)` pair a compile
    /// error instead of a silently corrupted prediction.
    pub fn new(alpha: Seconds, beta: BytesPerSec) -> Self {
        LinearCommModel { alpha: alpha.get(), beta }
    }

    /// Builds a model from a regression fit in the paper's raw units
    /// (`alpha` seconds, `beta` words/second). Unlike [`Self::new`], a
    /// negative intercept is allowed: a fitted piece is an empirical
    /// approximation valid on its own size range, and convex cost curves
    /// (e.g. buffer-overflow regimes) produce large-message pieces whose
    /// extrapolated intercept is below zero.
    // modelcheck-allow: naked-f64 — raw regression boundary; alpha may be negative here
    pub fn from_fit(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite(), "fitted startup time must be finite");
        LinearCommModel { alpha, beta: BytesPerSec::from_words_per_sec(beta) }
    }

    /// Dedicated time for one message of `size` words.
    pub fn message_time(&self, size: Words) -> Seconds {
        secs(self.alpha + size.as_f64() / self.beta.words_per_sec())
    }

    /// Dedicated time for one data set.
    pub fn dataset_time(&self, set: DataSet) -> Seconds {
        f64_from_u64(set.messages) * self.message_time(Words::new(set.words))
    }

    /// Dedicated time for a collection of data sets — the paper's `dcomm`.
    pub fn dcomm(&self, sets: &[DataSet]) -> Seconds {
        sets.iter().map(|&s| self.dataset_time(s)).sum()
    }
}

/// Piecewise-linear model: one `(α, β)` pair per side of `threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseCommModel {
    /// Piece boundary in words; messages with `words <= threshold` use
    /// `small`, larger ones use `large`.
    pub threshold: u64,
    /// Model for messages of at most `threshold` words (`α₁`, `β₁`).
    pub small: LinearCommModel,
    /// Model for messages of more than `threshold` words (`α₂`, `β₂`).
    pub large: LinearCommModel,
}

impl PiecewiseCommModel {
    /// Builds a piecewise model from its two pieces.
    ///
    /// Debug builds check that the cost curve does not collapse across
    /// the piece boundary: the first large-piece message must cost at
    /// least 80% of the last small-piece message. (Costs may legitimately
    /// jump *up* at the boundary — the inbound rendezvous regime — and
    /// fitted pieces carry regression noise, hence the one-sided, slack
    /// check rather than strict monotonicity.)
    pub fn new(threshold: u64, small: LinearCommModel, large: LinearCommModel) -> Self {
        let m = PiecewiseCommModel { threshold, small, large };
        // Raw arithmetic (not `message_time`) so a fitted piece that
        // extrapolates below zero reports a boundary collapse instead of
        // tripping the `Seconds` invariant first.
        #[cfg(debug_assertions)]
        if threshold < u64::MAX {
            let at_threshold = small.alpha + f64_from_u64(threshold) / small.beta.words_per_sec();
            let just_above = large.alpha + f64_from_u64(threshold + 1) / large.beta.words_per_sec();
            debug_assert!(
                just_above >= 0.8 * at_threshold,
                "comm cost collapses across the {threshold}-word piece boundary: \
                 {at_threshold} s at the threshold vs {just_above} s just above",
            );
        }
        m
    }

    /// A degenerate piecewise model that uses `model` everywhere — handy
    /// for comparing single-piece vs piecewise accuracy (ablation).
    pub fn uniform(model: LinearCommModel) -> Self {
        PiecewiseCommModel { threshold: u64::MAX, small: model, large: model }
    }

    /// The piece governing a message of `size` words.
    pub fn piece(&self, size: Words) -> &LinearCommModel {
        if size.get() <= self.threshold {
            &self.small
        } else {
            &self.large
        }
    }

    /// Dedicated time for one message of `size` words.
    pub fn message_time(&self, size: Words) -> Seconds {
        self.piece(size).message_time(size)
    }

    /// Dedicated time for one data set (all messages share one piece).
    pub fn dataset_time(&self, set: DataSet) -> Seconds {
        f64_from_u64(set.messages) * self.message_time(Words::new(set.words))
    }

    /// Dedicated time for a collection of data sets — the paper's
    /// two-term `dcomm` with `{data sets}₁` and `{data sets}₂` split at
    /// `threshold`.
    pub fn dcomm(&self, sets: &[DataSet]) -> Seconds {
        sets.iter().map(|&s| self.dataset_time(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::words;

    fn linear(alpha: f64, beta_wps: f64) -> LinearCommModel {
        LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_wps))
    }

    #[test]
    fn linear_message_time() {
        let m = linear(1e-3, 1e6);
        // 1000 words at 10^6 words/s = 1 ms, plus 1 ms startup.
        assert!((m.message_time(words(1000)).get() - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn dcomm_sums_over_sets() {
        let m = linear(0.5, 2.0);
        let sets = [DataSet::new(2, 4), DataSet::new(3, 2)];
        // 2*(0.5 + 2) + 3*(0.5 + 1) = 5 + 4.5 = 9.5
        assert!((m.dcomm(&sets).get() - 9.5).abs() < 1e-12);
        assert_eq!(m.dcomm(&[]), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        linear(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_startup_rejected() {
        linear(-1.0, 10.0);
    }

    #[test]
    fn from_fit_permits_negative_intercept() {
        let m = LinearCommModel::from_fit(-2e-3, 1e6);
        assert_eq!(m.alpha, -2e-3);
        assert_eq!(m.beta.words_per_sec(), 1e6);
    }

    #[test]
    fn piecewise_selects_piece_inclusively() {
        let small = linear(1.0, 10.0);
        let large = linear(100.0, 100.0);
        let m = PiecewiseCommModel::new(1024, small, large);
        // At the threshold: small piece (paper: "threshold or less words").
        assert!((m.message_time(words(1024)).get() - (1.0 + 102.4)).abs() < 1e-9);
        // Just above: large piece.
        assert!((m.message_time(words(1025)).get() - (100.0 + 10.25)).abs() < 1e-9);
    }

    #[test]
    fn piecewise_dcomm_splits_sets() {
        let small = linear(1.0, 1.0);
        let large = linear(6.0, 2.0);
        let m = PiecewiseCommModel::new(10, small, large);
        let sets = [DataSet::new(1, 10), DataSet::new(1, 20)];
        // small: 1 + 10 = 11; large: 6 + 10 = 16.
        assert!((m.dcomm(&sets).get() - 27.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_matches_single_piece() {
        let base = linear(0.25, 8.0);
        let m = PiecewiseCommModel::uniform(base);
        let sets = [DataSet::new(7, 3), DataSet::new(2, 1_000_000)];
        assert!((m.dcomm(&sets).get() - base.dcomm(&sets).get()).abs() < 1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "collapses across")]
    fn collapsing_boundary_rejected_in_debug() {
        // The large piece undercuts the small piece by far more than
        // regression noise could explain: 11.0 at the threshold, 1.001
        // just above.
        let small = linear(1.0, 1.0);
        let large = linear(1.0, 1000.0);
        PiecewiseCommModel::new(10, small, large);
    }
}
