//! Time-shared CPU models.
//!
//! Two interchangeable schedulers stand behind the [`Cpu`] trait:
//!
//! * [`PsCpu`] — ideal processor sharing: `n` active jobs each progress at
//!   rate `1/n`. This is the idealization behind the paper's `slowdown = p+1`
//!   law for equal-priority CPU-bound competitors.
//! * [`RrCpu`] — quantum-based round-robin with a per-dispatch context-switch
//!   overhead. This is what the "actual" platform simulations use; over long
//!   runs it converges to processor sharing but exhibits the quantum
//!   granularity and switching costs that make measured times deviate from
//!   the model by a few percent, as on the real machines.
//!
//! ## Event protocol
//!
//! The CPU owns no event queue. After *any* call that mutates the CPU
//! (`arrive`, `cancel`, `on_event`), the caller re-queries [`Cpu::next_event`]
//! and schedules a completion event carrying the returned generation stamp.
//! When that event fires the caller passes it to [`Cpu::on_event`]; a stale
//! generation is ignored, so superseded events need no cancellation.

use crate::ids::JobId;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Generation stamp distinguishing live completion events from stale ones.
pub type Gen = u64;

/// A time-shared CPU holding a set of jobs with fixed service demands.
pub trait Cpu {
    /// Adds a job with `work` seconds of dedicated CPU demand.
    ///
    /// Panics if `id` is already active.
    fn arrive(&mut self, now: SimTime, id: JobId, work: SimDuration) {
        self.arrive_weighted(now, id, work, 1.0);
    }

    /// Adds a job with a scheduling weight. Under processor sharing a
    /// job's rate is `wᵢ / Σw(active)`: weights above 1 model
    /// kernel-priority work (network receive processing) that preempts
    /// ordinary timesharing jobs. The round-robin scheduler ignores
    /// weights.
    fn arrive_weighted(&mut self, now: SimTime, id: JobId, work: SimDuration, weight: f64);

    /// Removes a job before completion; returns its remaining demand,
    /// or `None` if the job is not active.
    fn cancel(&mut self, now: SimTime, id: JobId) -> Option<SimDuration>;

    /// The next instant at which a job may complete, stamped with the
    /// current generation. `None` when the CPU is idle.
    fn next_event(&self) -> Option<(SimTime, Gen)>;

    /// Delivers a completion event. Returns the jobs that completed at
    /// `now` (empty if the generation is stale or nothing finished).
    fn on_event(&mut self, now: SimTime, gen: Gen) -> Vec<JobId>;

    /// Number of active jobs.
    fn active(&self) -> usize;

    /// True if `id` is currently active.
    fn contains(&self, id: JobId) -> bool;
}

// ---------------------------------------------------------------------------
// Ideal processor sharing
// ---------------------------------------------------------------------------

/// Ideal processor-sharing CPU: each of `n` active jobs runs at rate `1/n`.
#[derive(Debug, Clone)]
pub struct PsCpu {
    /// (id, remaining demand in nanoseconds, weight). `p` is small on
    /// these platforms, so a linear scan beats any indexed structure.
    jobs: Vec<(JobId, f64, f64)>,
    last_update: SimTime,
    generation: Gen,
}

impl Default for PsCpu {
    fn default() -> Self {
        Self::new()
    }
}

impl PsCpu {
    /// An idle processor-sharing CPU.
    pub fn new() -> Self {
        PsCpu { jobs: Vec::new(), last_update: SimTime::ZERO, generation: 0 }
    }

    /// Advances the fluid state to `now`, draining each job's share of
    /// the elapsed time (`wᵢ / Σw`).
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "PsCpu time went backwards");
        let total_w: f64 = self.jobs.iter().map(|&(_, _, w)| w).sum();
        if total_w > 0.0 {
            let elapsed = crate::num::f64_approx_from_nanos((now - self.last_update).as_nanos());
            for (_, rem, w) in &mut self.jobs {
                *rem = (*rem - elapsed * *w / total_w).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// Remaining demand of `id` as of the last update (test/diagnostic).
    pub fn remaining(&self, id: JobId) -> Option<SimDuration> {
        self.jobs
            .iter()
            .find(|(j, _, _)| *j == id)
            .map(|(_, rem, _)| SimDuration(crate::num::sat_u64_from_f64(rem.ceil())))
    }
}

impl Cpu for PsCpu {
    fn arrive_weighted(&mut self, now: SimTime, id: JobId, work: SimDuration, weight: f64) {
        assert!(!self.contains(id), "job {id} already on CPU");
        assert!(weight > 0.0, "weight must be positive");
        self.advance(now);
        self.jobs.push((id, crate::num::f64_approx_from_nanos(work.as_nanos()), weight));
        self.generation += 1;
    }

    fn cancel(&mut self, now: SimTime, id: JobId) -> Option<SimDuration> {
        self.advance(now);
        let pos = self.jobs.iter().position(|(j, _, _)| *j == id)?;
        let (_, rem, _) = self.jobs.swap_remove(pos);
        self.generation += 1;
        Some(SimDuration(crate::num::sat_u64_from_f64(rem.ceil())))
    }

    fn next_event(&self) -> Option<(SimTime, Gen)> {
        if self.jobs.is_empty() {
            return None;
        }
        let total_w: f64 = self.jobs.iter().map(|&(_, _, w)| w).sum();
        // Completion of the job that finishes first at the current rates.
        // Round up so the event never fires before the fluid model
        // finishes the job.
        let eta_ns =
            self.jobs.iter().map(|&(_, rem, w)| rem * total_w / w).fold(f64::INFINITY, f64::min);
        let eta = SimDuration(crate::num::sat_u64_from_f64(eta_ns.ceil()));
        Some((self.last_update + eta, self.generation))
    }

    fn on_event(&mut self, now: SimTime, gen: Gen) -> Vec<JobId> {
        if gen != self.generation {
            return Vec::new();
        }
        self.advance(now);
        // Sub-nanosecond residue from ceil-rounding counts as done.
        let done: Vec<JobId> =
            self.jobs.iter().filter(|(_, rem, _)| *rem < 1.0).map(|(id, _, _)| *id).collect();
        if !done.is_empty() {
            self.jobs.retain(|(_, rem, _)| *rem >= 1.0);
            self.generation += 1;
        }
        done
    }

    fn active(&self) -> usize {
        self.jobs.len()
    }

    fn contains(&self, id: JobId) -> bool {
        self.jobs.iter().any(|(j, _, _)| *j == id)
    }
}

// ---------------------------------------------------------------------------
// Quantum round-robin
// ---------------------------------------------------------------------------

/// Round-robin CPU: the head of the run queue executes one quantum (or its
/// remaining demand, whichever is shorter) and rotates to the back. Each
/// dispatch that switches between different jobs pays `ctx_switch`.
#[derive(Debug, Clone)]
pub struct RrCpu {
    quantum: SimDuration,
    ctx_switch: SimDuration,
    /// Run queue; the head is the running job when `slice_end` is set.
    queue: VecDeque<(JobId, SimDuration)>,
    /// End instant of the slice in flight, if any.
    slice_end: Option<SimTime>,
    /// Start instant of the slice in flight (after context switch).
    slice_start: SimTime,
    /// Job that last held the CPU, to decide whether a switch is charged.
    last_ran: Option<JobId>,
    generation: Gen,
}

impl RrCpu {
    /// A round-robin CPU with the given quantum and context-switch cost.
    pub fn new(quantum: SimDuration, ctx_switch: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        RrCpu {
            quantum,
            ctx_switch,
            queue: VecDeque::new(),
            slice_end: None,
            slice_start: SimTime::ZERO,
            last_ran: None,
            generation: 0,
        }
    }

    /// Dispatches the head of the run queue, if idle and non-empty.
    fn dispatch(&mut self, now: SimTime) {
        if self.slice_end.is_some() {
            return;
        }
        let Some(&(id, rem)) = self.queue.front() else { return };
        let switch = if self.last_ran == Some(id) { SimDuration::ZERO } else { self.ctx_switch };
        let slice = rem.min(self.quantum);
        self.slice_start = now + switch;
        self.slice_end = Some(self.slice_start + slice);
        self.generation += 1;
    }

    /// Remaining demand of `id` (test/diagnostic). For the running job this
    /// is the demand as of its slice start.
    pub fn remaining(&self, id: JobId) -> Option<SimDuration> {
        self.queue.iter().find(|(j, _)| *j == id).map(|&(_, rem)| rem)
    }
}

impl Cpu for RrCpu {
    /// Round-robin ignores weights: every job gets the same quantum.
    fn arrive_weighted(&mut self, now: SimTime, id: JobId, work: SimDuration, _weight: f64) {
        assert!(!self.contains(id), "job {id} already on CPU");
        // Zero-demand jobs still take one trip through the queue (one
        // dispatch), which mirrors a real zero-work process wakeup.
        self.queue.push_back((id, work));
        self.dispatch(now);
    }

    fn cancel(&mut self, now: SimTime, id: JobId) -> Option<SimDuration> {
        let pos = self.queue.iter().position(|(j, _)| *j == id)?;
        let (_, mut rem) = self.queue.remove(pos).expect("position just found");
        if pos == 0 && self.slice_end.is_some() {
            // The job is mid-slice: credit the time it already ran.
            let ran =
                if now > self.slice_start { now - self.slice_start } else { SimDuration::ZERO };
            rem = rem.saturating_sub(ran);
            self.slice_end = None;
            self.last_ran = Some(id);
            self.generation += 1;
            self.dispatch(now);
        }
        Some(rem)
    }

    fn next_event(&self) -> Option<(SimTime, Gen)> {
        self.slice_end.map(|t| (t, self.generation))
    }

    fn on_event(&mut self, now: SimTime, gen: Gen) -> Vec<JobId> {
        if gen != self.generation || self.slice_end != Some(now) {
            return Vec::new();
        }
        self.slice_end = None;
        let (id, rem) = self.queue.pop_front().expect("slice without a running job");
        self.last_ran = Some(id);
        let ran = now - self.slice_start;
        let left = rem.saturating_sub(ran);
        let mut done = Vec::new();
        if left.is_zero() {
            done.push(id);
        } else {
            self.queue.push_back((id, left));
        }
        self.generation += 1;
        self.dispatch(now);
        done
    }

    fn active(&self) -> usize {
        self.queue.len()
    }

    fn contains(&self, id: JobId) -> bool {
        self.queue.iter().any(|(j, _)| *j == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a CPU to completion, returning (job, completion time) pairs.
    fn drain(cpu: &mut dyn Cpu) -> Vec<(JobId, SimTime)> {
        let mut out = Vec::new();
        while let Some((t, gen)) = cpu.next_event() {
            for id in cpu.on_event(t, gen) {
                out.push((id, t));
            }
        }
        out
    }

    #[test]
    fn ps_single_job_runs_at_full_speed() {
        let mut cpu = PsCpu::new();
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_secs(5));
        let done = drain(&mut cpu);
        assert_eq!(done, vec![(JobId(1), SimTime::ZERO + SimDuration::from_secs(5))]);
    }

    #[test]
    fn ps_two_equal_jobs_halve_speed() {
        let mut cpu = PsCpu::new();
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_secs(5));
        cpu.arrive(SimTime::ZERO, JobId(2), SimDuration::from_secs(5));
        let done = drain(&mut cpu);
        // Both finish at t = 10 (5s of demand at rate 1/2).
        assert_eq!(done.len(), 2);
        for (_, t) in done {
            let err = (t.as_secs_f64() - 10.0).abs();
            assert!(err < 1e-6, "finish at {t}");
        }
    }

    #[test]
    fn ps_p_plus_one_slowdown_law() {
        // A 1-second job against p long-lived hogs finishes in ~p+1 seconds:
        // exactly the paper's Sun/CM2 slowdown.
        for p in 0..6u64 {
            let mut cpu = PsCpu::new();
            for i in 0..p {
                cpu.arrive(SimTime::ZERO, JobId(100 + i), SimDuration::from_secs(1000));
            }
            cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_secs(1));
            let (t, gen) = cpu.next_event().expect("a job is pending");
            let done = cpu.on_event(t, gen);
            assert_eq!(done, vec![JobId(1)]);
            let expect = (p + 1) as f64;
            assert!(
                (t.as_secs_f64() - expect).abs() < 1e-6,
                "p={p}: finished at {t}, expected {expect}s"
            );
        }
    }

    #[test]
    fn ps_late_arrival_shares_from_arrival_only() {
        let mut cpu = PsCpu::new();
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_secs(4));
        // After 2s alone, job1 has 2s left; job2 arrives.
        cpu.arrive(SimTime::ZERO + SimDuration::from_secs(2), JobId(2), SimDuration::from_secs(1));
        let done = drain(&mut cpu);
        // job2 (1s demand) at rate 1/2 finishes at t=4; job1's last 2s run
        // 2s shared (1s progress) + 1s alone => t=5.
        let t2 = done.iter().find(|(id, _)| *id == JobId(2)).expect("job 2 completed").1;
        let t1 = done.iter().find(|(id, _)| *id == JobId(1)).expect("job 1 completed").1;
        assert!((t2.as_secs_f64() - 4.0).abs() < 1e-6, "job2 at {t2}");
        assert!((t1.as_secs_f64() - 5.0).abs() < 1e-6, "job1 at {t1}");
    }

    #[test]
    fn ps_cancel_returns_remaining() {
        let mut cpu = PsCpu::new();
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_secs(4));
        cpu.arrive(SimTime::ZERO, JobId(2), SimDuration::from_secs(4));
        let rem = cpu
            .cancel(SimTime::ZERO + SimDuration::from_secs(2), JobId(1))
            .expect("job 1 still running");
        // Ran 2s at rate 1/2 = 1s progress; 3s left.
        assert!((rem.as_secs_f64() - 3.0).abs() < 1e-6);
        assert_eq!(cpu.active(), 1);
        assert!(cpu.cancel(SimTime::ZERO + SimDuration::from_secs(2), JobId(9)).is_none());
    }

    #[test]
    fn ps_stale_generation_ignored() {
        let mut cpu = PsCpu::new();
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_secs(2));
        let (t, gen) = cpu.next_event().expect("a job is pending");
        cpu.arrive(SimTime::ZERO + SimDuration::from_secs(1), JobId(2), SimDuration::from_secs(2));
        // The old event is now stale and must be ignored.
        assert!(cpu.on_event(t, gen).is_empty());
        assert_eq!(cpu.active(), 2);
    }

    #[test]
    fn rr_single_job_exact() {
        let mut cpu = RrCpu::new(SimDuration::from_millis(10), SimDuration::ZERO);
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_millis(35));
        let done = drain(&mut cpu);
        assert_eq!(done, vec![(JobId(1), SimTime::ZERO + SimDuration::from_millis(35))]);
    }

    #[test]
    fn rr_two_jobs_interleave_and_finish_near_double() {
        let q = SimDuration::from_millis(10);
        let mut cpu = RrCpu::new(q, SimDuration::ZERO);
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_millis(100));
        cpu.arrive(SimTime::ZERO, JobId(2), SimDuration::from_millis(100));
        let done = drain(&mut cpu);
        let t_last = done.iter().map(|&(_, t)| t).max().expect("completions recorded");
        assert_eq!(t_last, SimTime::ZERO + SimDuration::from_millis(200));
        // First finisher completes within one quantum of the other.
        let t_first = done.iter().map(|&(_, t)| t).min().expect("completions recorded");
        assert!(t_last - t_first <= q);
    }

    #[test]
    fn rr_context_switch_inflates_makespan() {
        let q = SimDuration::from_millis(10);
        let cs = SimDuration::from_micros(100);
        let mut cpu = RrCpu::new(q, cs);
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_millis(100));
        cpu.arrive(SimTime::ZERO, JobId(2), SimDuration::from_millis(100));
        let done = drain(&mut cpu);
        let t_last = done.iter().map(|&(_, t)| t).max().expect("completions recorded");
        // 20 slices, each a switch between different jobs: +20 * 0.1ms.
        assert_eq!(t_last, SimTime::ZERO + SimDuration::from_millis(202));
    }

    #[test]
    fn rr_no_switch_cost_when_alone() {
        let cs = SimDuration::from_millis(1);
        let mut cpu = RrCpu::new(SimDuration::from_millis(10), cs);
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_millis(50));
        let done = drain(&mut cpu);
        // One switch on first dispatch only; subsequent slices re-dispatch
        // the same job without paying again.
        assert_eq!(done[0].1, SimTime::ZERO + SimDuration::from_millis(51));
    }

    #[test]
    fn rr_cancel_running_job_credits_partial_slice() {
        let mut cpu = RrCpu::new(SimDuration::from_millis(10), SimDuration::ZERO);
        cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_millis(100));
        // Cancel 4ms into the first slice.
        let rem = cpu
            .cancel(SimTime::ZERO + SimDuration::from_millis(4), JobId(1))
            .expect("job 1 still running");
        assert_eq!(rem, SimDuration::from_millis(96));
        assert_eq!(cpu.active(), 0);
        assert!(cpu.next_event().is_none());
    }

    #[test]
    fn rr_long_run_matches_ps_rate() {
        // Over many quanta, RR's per-job throughput approaches PS's 1/n.
        let mut cpu = RrCpu::new(SimDuration::from_millis(10), SimDuration::ZERO);
        for i in 0..4 {
            cpu.arrive(SimTime::ZERO, JobId(i), SimDuration::from_secs(1));
        }
        let done = drain(&mut cpu);
        let t_last = done.iter().map(|&(_, t)| t).max().expect("completions recorded");
        assert!((t_last.as_secs_f64() - 4.0).abs() < 0.05, "makespan {t_last}");
    }
}
