//! Deterministic randomness plumbing.
//!
//! Every stochastic element of a scenario (contention-generator phase
//! jitter, synthetic workload mixes) draws from a stream derived from one
//! root seed, so each experiment is a pure function of its configuration.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG used throughout the simulator.
pub type SimRng = ChaCha8Rng;

/// Root RNG for a run.
pub fn root_rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Derives an independent stream for a named component. Stream derivation
/// (rather than sequential draws) keeps component behaviour stable when
/// unrelated components are added to a scenario.
pub fn derive_rng(seed: u64, component: &str, index: u64) -> SimRng {
    // Cheap stable string hash (FNV-1a) mixed into the stream id.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in component.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = SimRng::seed_from_u64(seed ^ h.rotate_left(17));
    rng.set_stream(index);
    rng
}

/// A multiplicative jitter factor in `[1 - frac, 1 + frac]`.
pub fn jitter_factor(rng: &mut impl Rng, frac: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&frac));
    if frac == 0.0 {
        1.0
    } else {
        1.0 + rng.gen_range(-frac..=frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = derive_rng(42, "hog", 3);
        let mut b = derive_rng(42, "hog", 3);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_components_differ() {
        let mut a = derive_rng(42, "hog", 0);
        let mut b = derive_rng(42, "pingpong", 0);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_indices_differ() {
        let mut a = derive_rng(42, "hog", 0);
        let mut b = derive_rng(42, "hog", 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = root_rng(7);
        for _ in 0..1000 {
            let j = jitter_factor(&mut rng, 0.2);
            assert!((0.8..=1.2).contains(&j), "jitter {j} out of range");
        }
        assert_eq!(jitter_factor(&mut rng, 0.0), 1.0);
    }
}
