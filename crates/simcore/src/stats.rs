//! Measurement statistics: running moments, error metrics, and the
//! least-squares fit used to calibrate `(α, β)` from ping-pong data.

use serde::{Deserialize, Serialize};

/// Running mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Accum {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accum {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accum { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / crate::num::f64_from_u64(self.n);
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / crate::num::f64_from_u64(self.n - 1)
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

impl Extend<f64> for Accum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut a = Accum::new();
        a.extend(iter);
        a
    }
}

/// Absolute percentage error of `predicted` against `actual`, in percent.
/// Zero `actual` with nonzero `predicted` yields infinity.
pub fn ape(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((predicted - actual) / actual).abs() * 100.0
    }
}

/// Mean absolute percentage error over (predicted, actual) pairs, in percent.
/// Returns 0 for an empty input.
pub fn mape<I>(pairs: I) -> f64
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let mut acc = Accum::new();
    for (p, a) in pairs {
        acc.push(ape(p, a));
    }
    acc.mean()
}

/// Largest absolute percentage error over (predicted, actual) pairs.
pub fn max_ape<I>(pairs: I) -> f64
where
    I: IntoIterator<Item = (f64, f64)>,
{
    pairs.into_iter().map(|(p, a)| ape(p, a)).fold(0.0, f64::max)
}

/// Kendall's τ rank correlation between two equal-length sequences —
/// used to check that model-predicted orderings of candidate schedules
/// match simulated ground truth. Returns a value in `[-1, 1]`; ties
/// count as discordant-neutral (τ-a). `None` for sequences shorter
/// than 2 or of different lengths.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = crate::num::f64_from_usize(n * (n - 1) / 2);
    Some(crate::num::f64_from_i64(concordant - discordant) / pairs)
}

/// Least-squares line fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r2: f64,
}

impl LinearFit {
    /// Fits a line to `(x, y)` points. Requires at least two points with
    /// distinct x values; returns `None` otherwise.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        let n = crate::num::f64_from_usize(points.len());
        if points.len() < 2 {
            return None;
        }
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let syy: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = points.iter().map(|p| (p.1 - (intercept + slope * p.0)).powi(2)).sum();
        let r2 = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
        Some(LinearFit { slope, intercept, r2 })
    }

    /// Evaluates the fitted line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_moments() {
        let a: Accum = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; unbiased sample variance = 32/7.
        assert!((a.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn accum_empty_is_sane() {
        let a = Accum::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert!(a.min().is_nan());
    }

    #[test]
    fn ape_basics() {
        assert!((ape(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert!((ape(90.0, 100.0) - 10.0).abs() < 1e-12);
        assert_eq!(ape(0.0, 0.0), 0.0);
        assert_eq!(ape(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn mape_and_max() {
        let pairs = [(110.0, 100.0), (95.0, 100.0), (100.0, 100.0)];
        assert!((mape(pairs) - 5.0).abs() < 1e-12);
        assert!((max_ape(pairs) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = LinearFit::fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.eval(100.0) - 203.0).abs() < 1e-9);
    }

    #[test]
    fn fit_noisy_line_recovers_parameters() {
        // Deterministic "noise" from a fixed pattern.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 10.0 + 0.25 * x + noise)
            })
            .collect();
        let f = LinearFit::fit(&pts).unwrap();
        assert!((f.slope - 0.25).abs() < 0.01, "slope {}", f.slope);
        assert!((f.intercept - 10.0).abs() < 0.5, "intercept {}", f.intercept);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn kendall_tau_extremes() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_same = [10.0, 20.0, 30.0, 40.0];
        let y_rev = [40.0, 30.0, 20.0, 10.0];
        assert_eq!(kendall_tau(&x, &y_same), Some(1.0));
        assert_eq!(kendall_tau(&x, &y_rev), Some(-1.0));
    }

    #[test]
    fn kendall_tau_partial_agreement() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0]; // one swapped pair of three
        let tau = kendall_tau(&x, &y).unwrap();
        assert!((tau - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_degenerate() {
        assert_eq!(kendall_tau(&[1.0], &[1.0]), None);
        assert_eq!(kendall_tau(&[1.0, 2.0], &[1.0]), None);
        // All ties → τ = 0.
        assert_eq!(kendall_tau(&[1.0, 1.0], &[2.0, 3.0]), Some(0.0));
    }

    #[test]
    fn fit_degenerate_inputs() {
        assert!(LinearFit::fit(&[]).is_none());
        assert!(LinearFit::fit(&[(1.0, 1.0)]).is_none());
        assert!(LinearFit::fit(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
    }
}
