//! Sanctioned numeric conversions for the simulation kernel.
//!
//! Bare `as` casts between integer and float types truncate or lose
//! precision silently, so the `lossy-cast` rule bans them in model
//! code. The handful of conversions the kernel actually needs funnel
//! through this module instead, where each one states its bound and
//! is checked — or explicitly documented as approximate — exactly
//! once. Downstream crates (`hetplat`, `hetload`) use these helpers
//! too rather than re-justifying casts at every call site.

/// Largest integer `f64` represents exactly (2⁵³).
pub const MAX_EXACT_IN_F64: u64 = 1 << 53;

/// Converts a count to `f64`, debug-checking that the value is exactly
/// representable. Use for observation counts, matrix dimensions, word
/// and flop counts — quantities far below 2⁵³.
pub fn f64_from_u64(n: u64) -> f64 {
    debug_assert!(n <= MAX_EXACT_IN_F64, "{n} is not exactly representable in f64");
    n as f64 // modelcheck-allow: lossy-cast — the sanctioned funnel, guarded above
}

/// [`f64_from_u64`] for `usize` counts (indices, lengths).
pub fn f64_from_usize(n: usize) -> f64 {
    f64_from_u64(n as u64)
}

/// Converts a signed tally (concordant − discordant pair counts and
/// the like) to `f64`, debug-checking exactness.
pub fn f64_from_i64(n: i64) -> f64 {
    debug_assert!(n.unsigned_abs() <= MAX_EXACT_IN_F64, "{n} is not exactly representable in f64");
    n as f64 // modelcheck-allow: lossy-cast — the sanctioned funnel, guarded above
}

/// Converts a nanosecond tick count to `f64`, rounding to nearest
/// above 2⁵³ ticks (≈ 104 simulated days — including the
/// `SimTime::MAX` "never" sentinel). The approximation is accepted by
/// design: the result feeds seconds-granularity float arithmetic, not
/// exact tick comparisons.
pub fn f64_approx_from_nanos(n: u64) -> f64 {
    n as f64 // modelcheck-allow: lossy-cast — documented approximate conversion
}

/// Converts an already-rounded non-negative float into `u64` ticks or
/// counts with saturating semantics: NaN maps to 0, negatives clamp
/// to 0, values at or beyond 2⁶⁴ clamp to `u64::MAX`. Callers choose
/// the rounding (`.ceil()`, `.round().max(1.0)`) before converting.
pub fn sat_u64_from_f64(x: f64) -> u64 {
    x as u64
}

/// [`sat_u64_from_f64`] for `usize` results (plot columns, indices).
pub fn sat_usize_from_f64(x: f64) -> usize {
    x as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_conversions_round_trip() {
        assert_eq!(f64_from_u64(0), 0.0);
        assert_eq!(f64_from_u64(MAX_EXACT_IN_F64), 9007199254740992.0);
        assert_eq!(f64_from_usize(12345), 12345.0);
        assert_eq!(f64_from_i64(-42), -42.0);
    }

    #[test]
    fn saturating_conversions_clamp_the_edges() {
        assert_eq!(sat_u64_from_f64(f64::NAN), 0);
        assert_eq!(sat_u64_from_f64(-1.5), 0);
        assert_eq!(sat_u64_from_f64(1.9), 1, "truncates after the caller's rounding");
        assert_eq!(sat_u64_from_f64(f64::INFINITY), u64::MAX);
        assert_eq!(sat_u64_from_f64(2.0f64.powi(64)), u64::MAX);
        assert_eq!(sat_usize_from_f64(7.0), 7);
        assert_eq!(sat_usize_from_f64(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn approx_nanos_is_monotone_at_the_sentinel() {
        assert_eq!(f64_approx_from_nanos(1_000_000_000), 1.0e9);
        assert!(f64_approx_from_nanos(u64::MAX) >= f64_approx_from_nanos(u64::MAX - 1));
    }
}
