//! A single-server FIFO resource.
//!
//! Models a serialized shared medium — the dedicated Ethernet link between
//! the front-end and the Paragon: one transfer occupies the wire at a time
//! and the rest queue in arrival order. The caller computes each transfer's
//! service time (latency + size / bandwidth) and drives events with the same
//! generation-stamp protocol as [`crate::cpu`].

use crate::cpu::Gen;
use crate::ids::XferId;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One-at-a-time FIFO server.
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    waiting: VecDeque<(XferId, SimDuration)>,
    in_service: Option<(XferId, SimTime)>,
    generation: Gen,
    /// Cumulative busy time (diagnostics / utilization checks).
    busy: SimDuration,
}

impl FifoServer {
    /// An idle server with an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a transfer needing `service` time on the wire. Starts it
    /// immediately if the server is idle.
    pub fn enqueue(&mut self, now: SimTime, id: XferId, service: SimDuration) {
        self.waiting.push_back((id, service));
        self.try_start(now);
    }

    fn try_start(&mut self, now: SimTime) {
        if self.in_service.is_some() {
            return;
        }
        if let Some((id, service)) = self.waiting.pop_front() {
            self.in_service = Some((id, now + service));
            self.busy += service;
            self.generation += 1;
        }
    }

    /// Completion instant of the transfer in service, stamped with the
    /// current generation.
    pub fn next_event(&self) -> Option<(SimTime, Gen)> {
        self.in_service.map(|(_, t)| (t, self.generation))
    }

    /// Delivers a completion event; returns the finished transfer (if the
    /// generation is live) and starts the next one.
    pub fn on_event(&mut self, now: SimTime, gen: Gen) -> Option<XferId> {
        if gen != self.generation {
            return None;
        }
        let (id, end) = self.in_service?;
        if end != now {
            return None;
        }
        self.in_service = None;
        self.try_start(now);
        Some(id)
    }

    /// Transfers waiting plus in service.
    pub fn backlog(&self) -> usize {
        self.waiting.len() + usize::from(self.in_service.is_some())
    }

    /// True when nothing is queued or in service.
    pub fn is_idle(&self) -> bool {
        self.backlog() == 0
    }

    /// Total time the server has been occupied.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut FifoServer) -> Vec<(XferId, SimTime)> {
        let mut out = Vec::new();
        while let Some((t, gen)) = s.next_event() {
            if let Some(id) = s.on_event(t, gen) {
                out.push((id, t));
            }
        }
        out
    }

    #[test]
    fn serves_in_arrival_order() {
        let mut s = FifoServer::new();
        s.enqueue(SimTime::ZERO, XferId(1), SimDuration::from_secs(2));
        s.enqueue(SimTime::ZERO, XferId(2), SimDuration::from_secs(3));
        s.enqueue(SimTime::ZERO, XferId(3), SimDuration::from_secs(1));
        let done = drain(&mut s);
        assert_eq!(
            done,
            vec![
                (XferId(1), SimTime::ZERO + SimDuration::from_secs(2)),
                (XferId(2), SimTime::ZERO + SimDuration::from_secs(5)),
                (XferId(3), SimTime::ZERO + SimDuration::from_secs(6)),
            ]
        );
        assert_eq!(s.busy_time(), SimDuration::from_secs(6));
        assert!(s.is_idle());
    }

    #[test]
    fn idle_gap_then_new_arrival() {
        let mut s = FifoServer::new();
        s.enqueue(SimTime::ZERO, XferId(1), SimDuration::from_secs(1));
        let done = drain(&mut s);
        assert_eq!(done.len(), 1);
        // Arrives after an idle gap; service starts at arrival.
        let t5 = SimTime::ZERO + SimDuration::from_secs(5);
        s.enqueue(t5, XferId(2), SimDuration::from_secs(1));
        let (t, gen) = s.next_event().unwrap();
        assert_eq!(t, t5 + SimDuration::from_secs(1));
        assert_eq!(s.on_event(t, gen), Some(XferId(2)));
    }

    #[test]
    fn stale_generation_ignored() {
        let mut s = FifoServer::new();
        s.enqueue(SimTime::ZERO, XferId(1), SimDuration::from_secs(2));
        let (t1, gen1) = s.next_event().unwrap();
        // Finish xfer1 normally; gen bumps when xfer2 starts.
        s.enqueue(SimTime::ZERO, XferId(2), SimDuration::from_secs(2));
        assert_eq!(s.on_event(t1, gen1), Some(XferId(1)));
        // Replaying the old event is harmless.
        assert_eq!(s.on_event(t1, gen1), None);
        assert_eq!(s.backlog(), 1);
    }

    #[test]
    fn backlog_counts_in_service() {
        let mut s = FifoServer::new();
        assert_eq!(s.backlog(), 0);
        s.enqueue(SimTime::ZERO, XferId(1), SimDuration::from_secs(1));
        s.enqueue(SimTime::ZERO, XferId(2), SimDuration::from_secs(1));
        assert_eq!(s.backlog(), 2);
    }
}
