//! The simulation driver.
//!
//! A [`Model`] owns all mutable world state and interprets events; the
//! [`Engine`] owns the clock and the pending-event set and runs the classic
//! discrete-event loop: pop the earliest event, advance the clock to it,
//! hand it to the model, repeat.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulated world: the state plus the event interpreter.
pub trait Model {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at instant `now`. New events are scheduled through
    /// `queue`; scheduling in the past is a bug and panics in the engine.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Discrete-event engine: clock + pending events + a [`Model`].
pub struct Engine<M: Model> {
    /// The simulated world. Public so scenario code can inspect/seed state
    /// between runs.
    pub model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
}

impl<M: Model> Engine<M> {
    /// Wraps a model with a fresh clock and empty event set.
    pub fn new(model: M) -> Self {
        Engine { model, queue: EventQueue::new(), now: SimTime::ZERO, processed: 0 }
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an initial/external event.
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, event);
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((at, event)) => {
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                self.processed += 1;
                self.model.handle(at, event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the event set drains; returns the final instant.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs until the next event would fire strictly after `deadline`
    /// (those later events stay pending). The clock is left at the time of
    /// the last processed event (or unchanged if none fired).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Runs with a safety valve: panics after `limit` events. Useful in
    /// tests to catch runaway self-scheduling loops.
    pub fn run_bounded(&mut self, limit: u64) -> SimTime {
        let start = self.processed;
        while self.step() {
            assert!(
                self.processed - start <= limit,
                "event budget of {limit} exhausted at {} — runaway schedule loop?",
                self.now
            );
        }
        self.now
    }

    /// Pending event count (diagnostics).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A model that counts down: each event re-schedules itself `n` times.
    struct Countdown {
        fired: Vec<(SimTime, u32)>,
    }

    impl Model for Countdown {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.fired.push((now, ev));
            if ev > 0 {
                q.schedule(now + SimDuration::from_secs(1), ev - 1);
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.schedule(SimTime::ZERO, 3);
        let end = eng.run();
        assert_eq!(end, SimTime::ZERO + SimDuration::from_secs(3));
        assert_eq!(eng.model.fired.len(), 4);
        assert_eq!(eng.events_processed(), 4);
    }

    #[test]
    fn run_until_leaves_later_events_pending() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.schedule(SimTime::ZERO, 10);
        eng.run_until(SimTime::ZERO + SimDuration::from_secs(4));
        assert_eq!(eng.model.fired.len(), 5); // t=0..4
        assert_eq!(eng.pending(), 1);
        eng.run();
        assert_eq!(eng.model.fired.len(), 11);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut eng = Engine::new(Countdown { fired: vec![] });
        eng.schedule(SimTime(100), 0);
        eng.run();
        eng.schedule(SimTime(50), 0);
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn run_bounded_catches_runaway() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
                q.schedule(now + SimDuration::from_nanos(1), ());
            }
        }
        let mut eng = Engine::new(Forever);
        eng.schedule(SimTime::ZERO, ());
        eng.run_bounded(1000);
    }
}
