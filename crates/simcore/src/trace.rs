//! Execution tracing and text Gantt rendering.
//!
//! Used to reproduce the paper's Figure 2 — the interleaving of serial
//! instructions on the front-end with parallel instructions on the CM2 —
//! and generally useful when debugging platform scenarios.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One traced activity interval on a named lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Lane (machine/resource) this span belongs to.
    pub lane: String,
    /// Activity label, e.g. `serial`, `parallel`, `idle`, `xfer`.
    pub label: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

/// Collects spans during a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tracer {
    spans: Vec<Span>,
    enabled: bool,
}

impl Tracer {
    /// A tracer that records nothing (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        Tracer { spans: Vec::new(), enabled: false }
    }

    /// A tracer that records every span.
    pub fn enabled() -> Self {
        Tracer { spans: Vec::new(), enabled: true }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one interval; ignored when disabled or empty.
    pub fn record(&mut self, lane: &str, label: &str, start: SimTime, end: SimTime) {
        if !self.enabled || end <= start {
            return;
        }
        self.spans.push(Span { lane: lane.to_string(), label: label.to_string(), start, end });
    }

    /// All recorded spans in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans on one lane, ordered by start time.
    pub fn lane(&self, lane: &str) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.lane == lane).collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Total time a lane spends in spans with the given label.
    pub fn lane_label_time(&self, lane: &str, label: &str) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.lane == lane && s.label == label)
            .map(|s| s.end - s.start)
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Renders an ASCII Gantt chart with `width` character columns spanning
    /// the full traced interval. Each lane is one row; span labels are
    /// abbreviated to their first character.
    pub fn render_gantt(&self, width: usize) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            out.push_str("(empty trace)\n");
            return out;
        }
        let t0 = self.spans.iter().map(|s| s.start).min().expect("nonempty");
        let t1 = self.spans.iter().map(|s| s.end).max().expect("nonempty");
        let total = (t1 - t0).as_secs_f64().max(1e-12);

        let mut lanes: Vec<String> = Vec::new();
        for s in &self.spans {
            if !lanes.contains(&s.lane) {
                lanes.push(s.lane.clone());
            }
        }
        let name_w = lanes.iter().map(|l| l.len()).max().unwrap_or(4).max(4);

        let _ = writeln!(
            out,
            "{:name_w$} |{}| {:.6}s .. {:.6}s",
            "lane",
            "-".repeat(width),
            t0.as_secs_f64(),
            t1.as_secs_f64()
        );
        for lane in &lanes {
            let mut row = vec![b'.'; width];
            for s in self.spans.iter().filter(|s| &s.lane == lane) {
                let a = crate::num::sat_usize_from_f64(
                    ((s.start - t0).as_secs_f64() / total) * crate::num::f64_from_usize(width),
                );
                let b = crate::num::sat_usize_from_f64(
                    (((s.end - t0).as_secs_f64() / total) * crate::num::f64_from_usize(width))
                        .ceil(),
                );
                let ch = s.label.bytes().next().unwrap_or(b'?');
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            let _ = writeln!(out, "{:name_w$} |{}|", lane, String::from_utf8_lossy(&row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = Tracer::disabled();
        tr.record("sun", "serial", t(0), t(1));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn records_and_filters_lanes() {
        let mut tr = Tracer::enabled();
        tr.record("sun", "serial", t(0), t(2));
        tr.record("cm2", "parallel", t(1), t(3));
        tr.record("sun", "idle", t(2), t(3));
        assert_eq!(tr.spans().len(), 3);
        assert_eq!(tr.lane("sun").len(), 2);
        assert_eq!(tr.lane_label_time("sun", "serial"), SimDuration::from_secs(2));
        assert_eq!(tr.lane_label_time("cm2", "parallel"), SimDuration::from_secs(2));
    }

    #[test]
    fn empty_spans_dropped() {
        let mut tr = Tracer::enabled();
        tr.record("sun", "serial", t(1), t(1));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn gantt_renders_all_lanes() {
        let mut tr = Tracer::enabled();
        tr.record("sun", "serial", t(0), t(5));
        tr.record("cm2", "parallel", t(5), t(10));
        let g = tr.render_gantt(20);
        assert!(g.contains("sun"));
        assert!(g.contains("cm2"));
        // First half of sun row is 's', second half of cm2 row is 'p'.
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("ssss"));
        assert!(lines[2].contains("pppp"));
    }

    #[test]
    fn gantt_empty_trace() {
        let tr = Tracer::enabled();
        assert!(tr.render_gantt(10).contains("empty"));
    }
}
