//! The pending-event set.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number breaks ties
//! in insertion order, which makes runs deterministic: two events scheduled
//! for the same instant always fire in the order they were scheduled.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of pending events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at absolute instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(5), ());
        q.schedule(SimTime(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
    }
}
