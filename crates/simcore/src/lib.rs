//! # simcore — deterministic discrete-event simulation kernel
//!
//! The substrate beneath the contention-model reproduction: an integer-time
//! event engine plus the two resource types the paper's platforms are built
//! from — a time-shared CPU (ideal processor sharing or quantum round-robin)
//! and a serialized FIFO link — together with statistics and tracing.
//!
//! Nothing in this crate knows about Suns, CM2s, or Paragons; see the
//! `hetplat` crate for the platform models and `contention-model` for the
//! paper's analytical formulas.
//!
//! ## Example
//!
//! ```
//! use simcore::prelude::*;
//!
//! // Two equal CPU-bound jobs on a processor-sharing CPU finish together
//! // at twice their dedicated time — the paper's p+1 slowdown with p = 1.
//! let mut cpu = PsCpu::new();
//! cpu.arrive(SimTime::ZERO, JobId(0), SimDuration::from_secs(3));
//! cpu.arrive(SimTime::ZERO, JobId(1), SimDuration::from_secs(3));
//! let (t, gen) = cpu.next_event().unwrap();
//! assert_eq!(t.as_secs_f64(), 6.0);
//! assert_eq!(cpu.on_event(t, gen).len(), 2);
//! ```
//!
//! modelcheck: no-todo-dbg, lossy-cast

#![warn(missing_docs)]

pub mod cpu;
pub mod engine;
pub mod fifo;
pub mod ids;
pub mod num;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::cpu::{Cpu, Gen, PsCpu, RrCpu};
    pub use crate::engine::{Engine, Model};
    pub use crate::fifo::FifoServer;
    pub use crate::ids::{IdGen, JobId, ProcId, XferId};
    pub use crate::queue::EventQueue;
    pub use crate::rng::{derive_rng, jitter_factor, root_rng, SimRng};
    pub use crate::stats::{ape, kendall_tau, mape, max_ape, Accum, LinearFit};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Span, Tracer};
}

pub use prelude::*;
