//! Small integer id newtypes used across resources.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A unit of CPU demand scheduled on a [`crate::cpu::Cpu`].
    JobId,
    "job"
);
id_type!(
    /// A transfer occupying a [`crate::fifo::FifoServer`].
    XferId,
    "xfer"
);
id_type!(
    /// A simulated application process.
    ProcId,
    "proc"
);

/// Monotonic id allocator.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Fresh allocator starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next raw id.
    pub fn next_raw(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Returns the next [`JobId`].
    pub fn next_job(&mut self) -> JobId {
        JobId(self.next_raw())
    }

    /// Returns the next [`XferId`].
    pub fn next_xfer(&mut self) -> XferId {
        XferId(self.next_raw())
    }

    /// Returns the next [`ProcId`].
    pub fn next_proc(&mut self) -> ProcId {
        ProcId(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_and_ordered() {
        let mut g = IdGen::new();
        let a = g.next_job();
        let b = g.next_job();
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(JobId(7).to_string(), "job7");
        assert_eq!(XferId(1).to_string(), "xfer1");
        assert_eq!(ProcId(0).to_string(), "proc0");
    }
}
