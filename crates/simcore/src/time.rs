//! Simulated time.
//!
//! All simulator state advances on an integer nanosecond clock. Integer time
//! keeps the event queue totally ordered without float comparison hazards and
//! makes runs bit-for-bit reproducible. Model-side math (the paper's formulas)
//! happens in `f64` seconds; the boundary conversions live here.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second, as both integer and float.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_SEC_F: f64 = 1e9;

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds. Always non-negative.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The instant the simulation starts at.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from a second count (saturating on overflow/NaN).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// This instant as seconds since the start of the run.
    pub fn as_secs_f64(self) -> f64 {
        crate::num::f64_approx_from_nanos(self.0) / NANOS_PER_SEC_F
    }

    /// Time elapsed since `earlier`. Panics in debug builds if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "since() called with a future instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from whole nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Builds a span from fractional seconds, rounding up to the next
    /// nanosecond so that nonzero work never collapses to a zero span.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// This span in seconds.
    pub fn as_secs_f64(self) -> f64 {
        crate::num::f64_approx_from_nanos(self.0) / NANOS_PER_SEC_F
    }

    /// This span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// True if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float factor, rounding up.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration factor");
        SimDuration(secs_to_nanos(self.as_secs_f64() * factor))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }
}

/// Converts non-negative seconds to nanoseconds, rounding up, saturating.
/// NaN and negatives map to zero; overflow clamps to `u64::MAX` inside
/// [`crate::num::sat_u64_from_f64`].
fn secs_to_nanos(secs: f64) -> u64 {
    if secs.is_nan() || secs <= 0.0 {
        return 0;
    }
    crate::num::sat_u64_from_f64((secs * NANOS_PER_SEC_F).ceil())
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(self >= other, "SimDuration underflow");
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_rounds_up() {
        // half a nanosecond of work must not vanish
        let d = SimDuration::from_secs_f64(0.5e-9);
        assert_eq!(d.as_nanos(), 1);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(250);
        assert_eq!(t.0, 250_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(250));
        let t2 = t + SimDuration::from_millis(750);
        assert_eq!(t2 - t, SimDuration::from_millis(750));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 4, SimDuration::from_millis(500));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(3));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime(5) < SimTime(6));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
