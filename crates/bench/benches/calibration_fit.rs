//! Calibration-time costs: the linear regression and the exhaustive
//! threshold search behind the Figure-4 piecewise fit. The paper argues
//! these are cheap enough to run "statically, just once for each
//! platform" — these benches show they are cheap enough to run anywhere.

use calibration::paragon::{fit_linear, fit_piecewise, PingPongPoint};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simcore::stats::LinearFit;

/// Synthetic ping-pong sweep resembling a real measurement.
fn points(n: usize) -> Vec<PingPongPoint> {
    (1..=n)
        .map(|i| {
            let words = (i * 4096 / n) as u64 + 1;
            let per_msg = if words <= 1024 {
                1.6e-3 + words as f64 / 79_000.0
            } else {
                5.6e-3 + words as f64 / 104_000.0
            };
            PingPongPoint { words, burst_time: 1000.0 * per_msg }
        })
        .collect()
}

fn linear_fit(c: &mut Criterion) {
    let xy: Vec<(f64, f64)> =
        points(64).iter().map(|p| (p.words as f64, p.per_message(1000))).collect();
    c.bench_function("calibration/linear_fit_64pts", |b| b.iter(|| LinearFit::fit(black_box(&xy))));
    let pts = points(64);
    c.bench_function("calibration/fit_linear_model", |b| {
        b.iter(|| fit_linear(black_box(&pts), 1000))
    });
}

fn threshold_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibration/threshold_search");
    for n in [12usize, 32, 128] {
        let pts = points(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| fit_piecewise(black_box(pts), 1000))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = bench::quick_config();
    targets = linear_fit, threshold_search
}
criterion_main!(benches);
