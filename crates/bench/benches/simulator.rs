//! Simulator throughput on the scenarios behind the "actual" curves,
//! plus the PS-vs-RR front-end scheduler ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetload::apps::{burst_app, cm2_matrix_transfer_app, cm2_program_app, sun_task_app};
use hetload::costs::Cm2ProgramParams;
use hetload::generators::{CommGenerator, CpuHog, GenDirection};
use hetload::programs::gauss_program;
use hetplat::config::{FrontendParams, PlatformConfig, SchedulerKind};
use hetplat::phase::Direction;
use hetplat::platform::Platform;
use simcore::time::{SimDuration, SimTime};

fn ps_cfg() -> PlatformConfig {
    PlatformConfig { frontend: FrontendParams::processor_sharing(), ..Default::default() }
}

/// The Figure-1 scenario: a matrix transfer against three hogs.
fn fig1_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/fig1_cm2_transfer");
    g.sample_size(20);
    g.bench_function("m300_p3", |b| {
        b.iter(|| {
            let mut p = Platform::new(ps_cfg(), 1);
            for i in 0..3 {
                p.spawn(Box::new(CpuHog::new(format!("hog{i}"))));
            }
            let id = p.spawn(Box::new(cm2_matrix_transfer_app("probe", 300)));
            p.run_until_done(id).expect("stalled")
        })
    });
    g.finish();
}

/// The Figure-3 scenario: Gaussian elimination instruction stream.
fn fig3_scenario(c: &mut Criterion) {
    let params = Cm2ProgramParams::default();
    let mut g = c.benchmark_group("sim/fig3_gauss_cm2");
    g.sample_size(20);
    for m in [100u64, 300] {
        let prog = gauss_program(m, &params);
        g.bench_with_input(BenchmarkId::from_parameter(m), &prog, |b, prog| {
            b.iter(|| {
                let mut p = Platform::new(ps_cfg(), 1);
                for i in 0..3 {
                    p.spawn(Box::new(CpuHog::new(format!("hog{i}"))));
                }
                let id = p.spawn(Box::new(cm2_program_app("ge", prog.clone())));
                p.run_until_done(id).expect("stalled")
            })
        });
    }
    g.finish();
}

/// The Figure-5 scenario: a contended Paragon burst.
fn fig5_scenario(c: &mut Criterion) {
    let cfg = ps_cfg();
    let mut g = c.benchmark_group("sim/fig5_contended_burst");
    g.sample_size(10);
    g.bench_function("200msgs_200w_2gens", |b| {
        b.iter(|| {
            let mut p = Platform::new(cfg, 1);
            p.spawn(Box::new(CommGenerator::new("g25", 0.25, 200, GenDirection::Alternate, &cfg)));
            p.spawn(Box::new(CommGenerator::new("g76", 0.76, 200, GenDirection::Alternate, &cfg)));
            let id = p.spawn_at(
                Box::new(burst_app("probe", 200, 200, Direction::ToParagon)),
                SimTime::ZERO + SimDuration::from_secs(1),
            );
            p.run_until_done(id).expect("stalled")
        })
    });
    g.finish();
}

/// Ablation: identical contended-compute scenario on the processor-sharing
/// vs the quantum round-robin front-end.
fn scheduler_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/scheduler_ablation");
    g.sample_size(20);
    for kind in [SchedulerKind::ProcessorSharing, SchedulerKind::RoundRobin] {
        let mut cfg = PlatformConfig::default();
        cfg.frontend.scheduler = kind;
        let name = match kind {
            SchedulerKind::ProcessorSharing => "processor_sharing",
            SchedulerKind::RoundRobin => "round_robin",
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut p = Platform::new(cfg, 1);
                for i in 0..3 {
                    p.spawn(Box::new(CpuHog::new(format!("hog{i}"))));
                }
                let id = p.spawn(Box::new(sun_task_app("probe", SimDuration::from_secs(5))));
                p.run_until_done(id).expect("stalled")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = bench::quick_config();
    targets = fig1_scenario, fig3_scenario, fig5_scenario, scheduler_ablation
}
criterion_main!(benches);
