//! Service-path throughput: loadcast ingest + forecast, and predictd
//! request handling end to end (encode → dispatch → model → encode),
//! measured through the same [`Service::handle_line`] entry the TCP and
//! stdio transports call.
//!
//! [`Service::handle_line`]: predictd::Service::handle_line

use contention_model::units::{f64_from_usize, secs};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use loadcast::{LoadMonitor, MonitorConfig};
use predictd::{Service, ServiceConfig};

/// A deterministic sawtooth load trace: exercises every forecaster
/// without ever being constant (no fast paths).
fn trace(n: usize) -> Vec<(f64, f64)> {
    (0..n).map(|k| (f64_from_usize(k), f64_from_usize(k % 7) * 0.75)).collect()
}

fn loadcast_ingest_forecast(c: &mut Criterion) {
    let mut g = c.benchmark_group("loadcast");
    for n in [64usize, 1024] {
        let t = trace(n);
        g.bench_with_input(BenchmarkId::new("ingest_forecast", n), &t, |b, t| {
            b.iter(|| {
                let mut m = LoadMonitor::new(MonitorConfig::default());
                for &(at, load) in t {
                    m.report(secs(at), black_box(load), None);
                }
                black_box(m.forecast(secs(f64_from_usize(t.len()))))
            })
        });
    }
    g.finish();
}

/// One warmed service with a reporting machine, plus the request lines a
/// client would send.
fn warmed_service() -> (Service, String, String) {
    let svc = Service::with_default_predictor(ServiceConfig::default());
    for k in 0..8 {
        let line = format!(
            "{{\"kind\":\"load_report\",\"machine\":\"m0\",\"at\":{k}.0,\
             \"load\":2.0,\"comm_frac\":0.4}}"
        );
        let (_, shutdown) = svc.handle_line(&line);
        assert!(!shutdown);
    }
    let report = "{\"kind\":\"load_report\",\"machine\":\"m0\",\"at\":9.0,\
                  \"load\":2.0,\"comm_frac\":0.4}"
        .to_string();
    let predict = "{\"kind\":\"predict\",\"machine\":\"m0\",\"now\":9.5,\
                   \"task\":{\"dcomp_sun\":30.0,\"t_paragon\":6.0,\
                   \"to_backend\":[{\"messages\":10,\"words\":2000}],\
                   \"from_backend\":[{\"messages\":1,\"words\":1000}]},\"j_words\":500}"
        .to_string();
    (svc, report, predict)
}

fn predictd_requests(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictd");
    let (svc, report, _) = warmed_service();
    g.bench_function("load_report", |b| b.iter(|| black_box(svc.handle_line(black_box(&report)))));
    let (svc, _, predict) = warmed_service();
    g.bench_function("predict_warm_cache", |b| {
        b.iter(|| black_box(svc.handle_line(black_box(&predict))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = bench::quick_config();
    targets = loadcast_ingest_forecast, predictd_requests
}
criterion_main!(benches);
