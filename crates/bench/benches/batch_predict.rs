//! Batched prediction throughput: per-call [`decide`] (which re-folds the
//! mix into slowdown factors on every prediction) against
//! [`decide_batch`] over a cached [`SlowdownProfile`] (which folds once
//! and reuses the factors for every task).
//!
//! [`decide`]: contention_model::predict::ParagonPredictor::decide
//! [`decide_batch`]: contention_model::predict::ParagonPredictor::decide_batch

use bench::paragon_predictor;
use contention_model::dataset::DataSet;
use contention_model::mix::WorkloadMix;
use contention_model::predict::ParagonTask;
use contention_model::units::secs;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// A deterministic batch of placement candidates with varied costs and
/// message sizes.
fn tasks(n: usize) -> Vec<ParagonTask> {
    (0..n)
        .map(|i| ParagonTask {
            dcomp_sun: secs(5.0 + (i % 17) as f64),
            t_paragon: secs(0.8 + (i % 5) as f64 * 0.3),
            to_backend: vec![DataSet::burst(1000, 128 + (i as u64 % 8) * 128)],
            from_backend: vec![DataSet::burst(1000, 128 + (i as u64 % 8) * 128)],
        })
        .collect()
}

/// A mix big enough that the per-prediction `O(p)` fold is visible.
fn mix() -> WorkloadMix {
    let fracs: Vec<f64> = (0..24).map(|i| (i as f64 * 0.37 + 0.11).fract()).collect();
    WorkloadMix::from_fracs(&fracs)
}

fn batch_predict(c: &mut Criterion) {
    let pred = paragon_predictor();
    let m = mix();
    let mut g = c.benchmark_group("batch_predict");
    for n in [16usize, 256, 4096] {
        let ts = tasks(n);
        g.bench_with_input(BenchmarkId::new("per_call", n), &ts, |b, ts| {
            b.iter(|| {
                ts.iter()
                    .map(|t| pred.decide(black_box(t), black_box(&m), black_box(512)))
                    .collect::<Vec<_>>()
            })
        });
        g.bench_with_input(BenchmarkId::new("cached_profile", n), &ts, |b, ts| {
            b.iter(|| {
                // Fold the mix once per batch, as a scheduler would.
                let profile = pred.profile(black_box(&m));
                pred.decide_batch(black_box(ts), &profile, black_box(512))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = bench::quick_config();
    targets = batch_predict
}
criterion_main!(benches);
