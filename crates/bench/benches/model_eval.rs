//! Model-evaluation cost per table/figure: the arithmetic a scheduler
//! pays at run time to regenerate each prediction of the paper.

use bench::{cm2_predictor, paragon_predictor};
use contention_model::cm2::Cm2TaskCosts;
use contention_model::dataset::DataSet;
use contention_model::mix::WorkloadMix;
use contention_model::paragon::{comp_slowdown, comp_slowdown_at_bucket};
use contention_model::predict::{Cm2Task, ParagonTask};
use contention_model::units::secs;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched::eval::{
    best_chain_dp, best_exhaustive, best_exhaustive_oracle, best_exhaustive_with, rank_all,
    rank_all_oracle, SearchScratch,
};
use hetsched::example;
use hetsched::task::{Environment, Matrix, Task, Workflow};

/// Tables 1–4: evaluating and ranking every schedule of the intro example.
fn tab_intro(c: &mut Criterion) {
    let wf = example::workflow();
    let env = example::env_cpu_and_link_contention();
    c.bench_function("tab1-4/rank_all", |b| b.iter(|| rank_all(black_box(&wf), black_box(&env))));
    c.bench_function("tab1-4/best_exhaustive", |b| {
        b.iter(|| best_exhaustive(black_box(&wf), black_box(&env)))
    });
    c.bench_function("tab1-4/best_chain_dp", |b| {
        b.iter(|| best_chain_dp(black_box(&wf), black_box(&env)))
    });
}

/// A deterministic chain instance of `tasks` tasks over `machines`
/// machines, with contended compute and link factors.
fn chain_instance(machines: usize, tasks: usize) -> (Workflow, Environment) {
    let mut s = 7u64;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) * 10.0
    };
    let mut v = Vec::new();
    for i in 0..tasks {
        let exec: Vec<f64> = (0..machines).map(|_| next() + 0.1).collect();
        if i + 1 < tasks {
            let mut comm = Matrix::filled(machines, 0.0);
            for a in 0..machines {
                for b in 0..machines {
                    if a != b {
                        comm.set(a, b, next());
                    }
                }
            }
            v.push(Task::with_edge(format!("t{i}"), exec, comm));
        } else {
            v.push(Task::terminal(format!("t{i}"), exec));
        }
    }
    let mut env = Environment::dedicated(machines);
    for f in env.comp_slowdown.iter_mut() {
        *f = 1.0 + next() / 5.0;
    }
    (Workflow::new(v), env)
}

/// Gray-code delta-evaluated search against the seed's full-re-evaluation
/// oracle, across instance sizes.
fn search(c: &mut Criterion) {
    let mut g = c.benchmark_group("search");
    for &(machines, tasks) in &[(3usize, 6usize), (4, 8), (3, 10)] {
        let (wf, env) = chain_instance(machines, tasks);
        let label = format!("{machines}m{tasks}t");
        g.bench_with_input(BenchmarkId::new("oracle", &label), &wf, |b, wf| {
            b.iter(|| best_exhaustive_oracle(black_box(wf), black_box(&env)))
        });
        let mut scratch = SearchScratch::new();
        g.bench_with_input(BenchmarkId::new("gray", &label), &wf, |b, wf| {
            b.iter(|| best_exhaustive_with(black_box(wf), black_box(&env), &mut scratch))
        });
    }
    let (wf, env) = chain_instance(4, 8); // 65536 schedules, rankable
    g.bench_with_input(BenchmarkId::new("rank_all_oracle", "4m8t"), &wf, |b, wf| {
        b.iter(|| rank_all_oracle(black_box(wf), black_box(&env)))
    });
    g.bench_with_input(BenchmarkId::new("rank_all_gray", "4m8t"), &wf, |b, wf| {
        b.iter(|| rank_all(black_box(wf), black_box(&env)))
    });
    g.finish();
}

/// Figure 1: CM2 transfer prediction across the matrix sweep.
fn fig1(c: &mut Criterion) {
    let pred = cm2_predictor();
    let sizes: Vec<u64> = (1..=8).map(|i| i * 100).collect();
    c.bench_function("fig1/model_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &m in &sizes {
                let sets = [DataSet::matrix_rows(m, m)];
                for p in [0u32, 3] {
                    acc += pred.comm_cost_to(black_box(&sets), p).get();
                    acc += pred.comm_cost_from(black_box(&sets), p).get();
                }
            }
            acc
        })
    });
}

/// Figure 3: the `max(dcomp + didle, dserial × (p+1))` law.
fn fig3(c: &mut Criterion) {
    let costs = Cm2TaskCosts::new(secs(5.0), secs(1.2), secs(0.3), secs(0.4));
    c.bench_function("fig3/t_cm2", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in 0..8 {
                acc += black_box(&costs).t_cm2(p).get();
            }
            acc
        })
    });
}

/// Figure 4: piecewise dedicated cost across the size sweep.
fn fig4(c: &mut Criterion) {
    let pred = paragon_predictor();
    let sizes = [1u64, 16, 64, 128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096];
    c.bench_function("fig4/piecewise_dcomm_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &w in &sizes {
                acc += pred.comm_to.dcomm(black_box(&[DataSet::burst(1000, w)])).get();
                acc += pred.comm_from.dcomm(black_box(&[DataSet::burst(1000, w)])).get();
            }
            acc
        })
    });
}

/// Figures 5–6: non-dedicated communication cost under a mix.
fn fig56(c: &mut Criterion) {
    let pred = paragon_predictor();
    let mix = WorkloadMix::from_fracs(&[0.25, 0.76]);
    let sets = [DataSet::burst(1000, 200)];
    c.bench_function("fig5/comm_cost_to", |b| {
        b.iter(|| pred.comm_cost_to(black_box(&sets), black_box(&mix)))
    });
    c.bench_function("fig6/comm_cost_from", |b| {
        b.iter(|| pred.comm_cost_from(black_box(&sets), black_box(&mix)))
    });
}

/// Figures 7–8: computation slowdown across the j buckets.
fn fig78(c: &mut Criterion) {
    let pred = paragon_predictor();
    let mix = WorkloadMix::from_fracs(&[0.66, 0.33]);
    c.bench_function("fig7/comp_slowdown_nearest_j", |b| {
        b.iter(|| comp_slowdown(black_box(&mix), &pred.comp_delays, black_box(1200)))
    });
    c.bench_function("fig8/comp_slowdown_all_buckets", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bucket in 0..3 {
                acc += comp_slowdown_at_bucket(black_box(&mix), &pred.comp_delays, bucket).get();
            }
            acc
        })
    });
}

/// Full placement decisions (inequality (1)) on both platforms.
fn placement(c: &mut Criterion) {
    let cm2 = cm2_predictor();
    let cm2_task = Cm2Task {
        costs: Cm2TaskCosts::new(secs(30.0), secs(3.8), secs(0.2), secs(0.5)),
        to_backend: vec![DataSet::matrix_rows(600, 600)],
        from_backend: vec![DataSet::matrix_rows(600, 600)],
    };
    c.bench_function("placement/cm2_decide", |b| {
        b.iter(|| cm2.decide(black_box(&cm2_task), black_box(3)))
    });

    let paragon = paragon_predictor();
    let mix = WorkloadMix::from_fracs(&[0.25, 0.76]);
    let p_task = ParagonTask {
        dcomp_sun: secs(12.0),
        t_paragon: secs(1.5),
        to_backend: vec![DataSet::burst(1000, 512)],
        from_backend: vec![DataSet::burst(1000, 512)],
    };
    c.bench_function("placement/paragon_decide", |b| {
        b.iter(|| paragon.decide(black_box(&p_task), black_box(&mix), black_box(512)))
    });
}

criterion_group! {
    name = benches;
    config = bench::quick_config();
    targets = tab_intro, search, fig1, fig3, fig4, fig56, fig78, placement
}
criterion_main!(benches);
