//! The paper's complexity claims for the `pcompᵢ`/`pcommᵢ` dynamic
//! program: `O(p²)` full generation, `O(p)` incremental arrival, `O(p)`
//! slowdown evaluation — "the overhead imposed by its calculation is
//! negligible". These benches put numbers on that.

use contention_model::delay::{CommDelayTable, CompDelayTable};
use contention_model::mix::WorkloadMix;
use contention_model::paragon::comm_slowdown;
use contention_model::profile::ProfileCache;
use contention_model::units::prob;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn fracs(p: usize) -> Vec<f64> {
    (0..p).map(|i| (i as f64 * 0.37 + 0.11).fract()).collect()
}

/// Full O(p²) generation across p.
fn generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("mix/generate_full");
    for p in [4usize, 16, 64, 256] {
        let f = fracs(p);
        g.bench_with_input(BenchmarkId::from_parameter(p), &f, |b, f| {
            b.iter(|| WorkloadMix::from_fracs(black_box(f)))
        });
    }
    g.finish();
}

/// O(p) incremental arrival across p.
fn add(c: &mut Criterion) {
    let mut g = c.benchmark_group("mix/incremental_add");
    for p in [4usize, 16, 64, 256] {
        let base = WorkloadMix::from_fracs(&fracs(p));
        g.bench_with_input(BenchmarkId::from_parameter(p), &base, |b, base| {
            b.iter(|| {
                let mut m = base.clone();
                m.add(black_box(prob(0.42)));
                m
            })
        });
    }
    g.finish();
}

/// O(p) deconvolution removal across p (vs. the O(p²) regenerate).
fn remove(c: &mut Criterion) {
    let mut g = c.benchmark_group("mix/remove");
    for p in [4usize, 16, 64, 256] {
        let base = WorkloadMix::from_fracs(&fracs(p));
        g.bench_with_input(BenchmarkId::new("deconvolve", p), &base, |b, base| {
            b.iter(|| {
                let mut m = base.clone();
                m.remove(black_box(p / 2));
                m
            })
        });
        g.bench_with_input(BenchmarkId::new("regenerate", p), &base, |b, base| {
            b.iter(|| {
                let mut m = base.clone();
                m.regenerate();
                m
            })
        });
    }
    g.finish();
}

/// O(p) slowdown evaluation across p.
fn slowdown_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("mix/slowdown_eval");
    for p in [4usize, 16, 64, 256] {
        let mix = WorkloadMix::from_fracs(&fracs(p));
        let delays = CommDelayTable::new(vec![0.4; p], vec![0.3; p]);
        g.bench_with_input(BenchmarkId::from_parameter(p), &mix, |b, mix| {
            b.iter(|| comm_slowdown(black_box(mix), black_box(&delays)))
        });
    }
    g.finish();
}

/// Epoch-keyed profile cache hit vs. re-folding the mix every time.
fn profile_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("mix/profile");
    for p in [4usize, 16, 64, 256] {
        let mix = WorkloadMix::from_fracs(&fracs(p));
        let comm = CommDelayTable::new(vec![0.4; p], vec![0.3; p]);
        let comp =
            CompDelayTable::new(vec![1, 500, 1000], vec![vec![0.2; p], vec![0.6; p], vec![0.9; p]]);
        g.bench_with_input(BenchmarkId::new("direct_fold", p), &mix, |b, mix| {
            b.iter(|| comm_slowdown(black_box(mix), black_box(&comm)))
        });
        let mut cache = ProfileCache::new();
        g.bench_with_input(BenchmarkId::new("cached_hit", p), &mix, |b, mix| {
            b.iter(|| {
                cache
                    .profile_for(black_box(mix), black_box(&comm), black_box(&comp))
                    .comm_slowdown()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = bench::quick_config();
    targets = generate, add, remove, slowdown_eval, profile_cache
}
criterion_main!(benches);
