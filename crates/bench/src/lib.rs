//! Shared fixtures for the Criterion benches.
//!
//! Each table/figure of the paper has a bench exercising the code that
//! regenerates it: the *model-side* evaluation (the math a scheduler runs
//! at run time) lives in `benches/model_eval.rs`, the simulator scenarios
//! behind the "actual" curves in `benches/simulator.rs`, the `pcompᵢ`
//! complexity claims in `benches/mix_updates.rs`, and the calibration
//! fitting in `benches/calibration_fit.rs`.
//!
//! modelcheck: no-todo-dbg, lossy-cast

pub mod loadgen;

use contention_model::comm::{LinearCommModel, PiecewiseCommModel};
use contention_model::delay::{CommDelayTable, CompDelayTable};
use contention_model::predict::{Cm2Predictor, ParagonPredictor};
use contention_model::units::{secs, BytesPerSec};

fn linear(alpha: f64, beta_words_per_sec: f64) -> LinearCommModel {
    LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_words_per_sec))
}

/// A representative calibrated Sun/CM2 predictor (values from a real
/// calibration run; fixed here so benches need no simulation at startup).
pub fn cm2_predictor() -> Cm2Predictor {
    Cm2Predictor { comm_to: linear(660e-6, 497_000.0), comm_from: linear(660e-6, 249_000.0) }
}

/// A representative calibrated Sun/Paragon predictor.
pub fn paragon_predictor() -> ParagonPredictor {
    ParagonPredictor {
        comm_to: PiecewiseCommModel::new(1024, linear(1.6e-3, 79_000.0), linear(5.6e-3, 104_000.0)),
        comm_from: PiecewiseCommModel::new(
            1024,
            linear(1.5e-3, 149_000.0),
            LinearCommModel::from_fit(-4.0e-3, 83_000.0),
        ),
        comm_delays: CommDelayTable::new(
            vec![0.27, 0.61, 1.02, 1.40],
            vec![0.19, 0.49, 0.81, 1.10],
        ),
        comp_delays: CompDelayTable::new(
            vec![1, 500, 1000],
            vec![
                vec![0.22, 0.37, 0.37, 0.37],
                vec![0.66, 1.15, 1.59, 1.90],
                vec![1.68, 3.59, 5.52, 7.00],
            ],
        ),
    }
}

/// Criterion configuration shared by all benches: short warm-up and
/// measurement windows so the full suite (`cargo bench`) finishes in
/// minutes, not hours.
pub fn quick_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_sane() {
        let c = cm2_predictor();
        assert!(c.comm_to.beta.words_per_sec() > c.comm_from.beta.words_per_sec());
        let p = paragon_predictor();
        assert_eq!(p.comm_to.threshold, 1024);
        assert_eq!(p.comp_delays.buckets, vec![1, 500, 1000]);
    }
}
