//! Command-line traffic generator for a running `predictd` — or a
//! `predictgw` federation gateway, which speaks the same protocol and
//! answers the post-run `stats` probe with its per-backend counters.
//!
//! ```text
//! loadgen --connect 127.0.0.1:7171 [--conns 4] [--requests 1000]
//!         [--pipeline 8] [--mix predict=3,load_report=1,decide_batch=0]
//!         [--codec json|binary]
//! ```
//!
//! Prints client-side throughput and client-observed latency quantiles
//! (flush-to-reply, so pipelined queueing counts), plus the server's
//! own latency histogram (p50/p99/max from a `stats` request issued
//! after the run). `--pipeline 1` is a closed loop; `--codec binary`
//! negotiates the length-prefixed binary codec on every connection.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

use bench::loadgen::{drive, Codec, GenConfig, Mix};
use predictd::proto::{Request, Response};
use predictd::Client;

struct Args {
    addr: SocketAddr,
    cfg: GenConfig,
}

fn usage() -> String {
    "usage: loadgen --connect ADDR [--conns N] [--requests N] [--pipeline K] \
     [--mix predict=3,load_report=1,decide_batch=0] [--codec json|binary]"
        .to_string()
}

fn parse_mix(spec: &str) -> Result<Mix, String> {
    let mut mix = Mix { load_report: 0, predict: 0, decide_batch: 0 };
    for part in spec.split(',') {
        let (kind, weight) = part
            .split_once('=')
            .ok_or_else(|| format!("bad mix entry {part:?}, want kind=weight"))?;
        let weight: u32 =
            weight.parse().map_err(|_| format!("bad mix weight {weight:?} in {part:?}"))?;
        match kind {
            "load_report" => mix.load_report = weight,
            "predict" => mix.predict = weight,
            "decide_batch" => mix.decide_batch = weight,
            other => return Err(format!("unknown mix kind {other:?}")),
        }
    }
    if mix.load_report + mix.predict + mix.decide_batch == 0 {
        return Err("mix must have at least one non-zero weight".to_string());
    }
    Ok(mix)
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut cfg = GenConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => {
                let spec = value("--connect")?;
                addr = spec
                    .to_socket_addrs()
                    .map_err(|e| format!("cannot resolve {spec:?}: {e}"))?
                    .next();
            }
            "--conns" => {
                cfg.conns = value("--conns")?.parse().map_err(|e| format!("--conns: {e}"))?;
            }
            "--requests" => {
                cfg.requests_per_conn =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--pipeline" => {
                cfg.pipeline =
                    value("--pipeline")?.parse().map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--mix" => cfg.mix = parse_mix(&value("--mix")?)?,
            "--codec" => {
                cfg.codec = match value("--codec")?.as_str() {
                    "json" => Codec::Json,
                    "binary" => Codec::Binary,
                    other => return Err(format!("--codec must be json or binary, got {other:?}")),
                }
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if cfg.conns == 0 || cfg.requests_per_conn == 0 || cfg.pipeline == 0 {
        return Err("--conns, --requests, and --pipeline must be at least 1".to_string());
    }
    let addr = addr.ok_or_else(usage)?;
    Ok(Args { addr, cfg })
}

fn run(args: &Args) -> Result<(), String> {
    let summary = drive(args.addr, &args.cfg).map_err(|e| format!("loadgen run failed: {e}"))?;
    let codec = match args.cfg.codec {
        Codec::Json => "json",
        Codec::Binary => "binary",
    };
    println!(
        "loadgen: {} requests over {} conns (pipeline {}, {codec}) in {:.3}s -> {:.0} req/s, \
         {} errors",
        summary.requests,
        args.cfg.conns,
        args.cfg.pipeline,
        summary.elapsed_secs,
        summary.requests_per_sec,
        summary.errors,
    );
    println!(
        "client latency: p50 {}us p95 {}us p99 {}us max {}us",
        summary.p50_us, summary.p95_us, summary.p99_us, summary.max_us,
    );

    let mut client =
        Client::connect(args.addr).map_err(|e| format!("stats connection failed: {e}"))?;
    let resp = client.request(&Request::Stats).map_err(|e| format!("stats request failed: {e}"))?;
    match resp {
        Response::Stats(st) => println!(
            "server histogram: count {} p50 {}us p99 {}us max {}us (uptime {:.1}s, {} machines)",
            st.latency_us.count,
            st.latency_us.p50_us,
            st.latency_us.p99_us,
            st.latency_us.max_us,
            st.uptime_secs,
            st.machines,
        ),
        // A gateway target answers with its federation counters; print
        // the routing split and the per-backend request distribution.
        Response::GwStats(gs) => {
            println!(
                "gateway: {} hits, {} misses, {} failovers, journal {} frames / {} bytes \
                 (uptime {:.1}s)",
                gs.hits,
                gs.misses,
                gs.failovers,
                gs.journal_frames,
                gs.journal_bytes,
                gs.uptime_secs,
            );
            for b in &gs.backends {
                println!(
                    "backend {}: {} requests, {} failovers, {} replayed{}",
                    b.addr,
                    b.requests,
                    b.failovers,
                    b.replayed,
                    if b.healthy { "" } else { " (down)" },
                );
            }
        }
        other => return Err(format!("want stats reply, got {other:?}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
