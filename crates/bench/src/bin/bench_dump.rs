//! Headline performance numbers as machine-readable JSON.
//!
//! A tiny, self-timed (no criterion) summary of the prediction engine's
//! before/after comparisons, written to `BENCH_model_eval.json` at the
//! repository root so CI can archive the numbers per commit:
//!
//! * per-call `decide` vs `decide_batch` over a cached profile,
//! * brute-force exhaustive search vs the Gray-code delta-evaluated walk,
//! * refolding the mix vs an epoch-keyed `ProfileCache` hit.
//!
//! A second file, `BENCH_service.json`, covers the online service path:
//! loadcast ingest+forecast and `predictd` request throughput
//! (`load_report` and warm-cache `predict`) through `handle_line`, plus
//! a concurrency sweep over real TCP — a single-threaded closed-loop
//! baseline against the pooled, pipelined server at 1/4/16 connections,
//! and the evented engine in both the JSON and binary codecs at the
//! same connection counts, client-observed latency quantiles included.

use bench::paragon_predictor;
use contention_model::dataset::DataSet;
use contention_model::mix::WorkloadMix;
use contention_model::paragon::comm_slowdown;
use contention_model::predict::ParagonTask;
use contention_model::profile::ProfileCache;
use contention_model::units::{f64_from_u64, f64_from_usize, secs};
use hetsched::eval::{best_exhaustive_oracle, best_exhaustive_with, SearchScratch};
use hetsched::task::{Environment, Matrix, Task, Workflow};
use serde::Value;
use std::hint::black_box;
use std::time::Instant;

/// Median-of-5 wall time of `iters` runs of `f`, in nanoseconds per run.
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters.div_ceil(5) {
        f(); // warm-up
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[2]
}

fn tasks(n: usize) -> Vec<ParagonTask> {
    (0..n)
        .map(|i| ParagonTask {
            dcomp_sun: secs(5.0 + f64_from_usize(i % 17)),
            t_paragon: secs(0.8 + f64_from_usize(i % 5) * 0.3),
            to_backend: vec![DataSet::burst(1000, 128 + (i as u64 % 8) * 128)],
            from_backend: vec![DataSet::burst(1000, 128 + (i as u64 % 8) * 128)],
        })
        .collect()
}

fn chain_instance(machines: usize, n_tasks: usize) -> (Workflow, Environment) {
    let mut s = 7u64;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (f64_from_u64(s >> 33) / f64_from_u64(1u64 << 31)) * 10.0
    };
    let mut v = Vec::new();
    for i in 0..n_tasks {
        let exec: Vec<f64> = (0..machines).map(|_| next() + 0.1).collect();
        if i + 1 < n_tasks {
            let mut comm = Matrix::filled(machines, 0.0);
            for a in 0..machines {
                for b in 0..machines {
                    if a != b {
                        comm.set(a, b, next());
                    }
                }
            }
            v.push(Task::with_edge(format!("t{i}"), exec, comm));
        } else {
            v.push(Task::terminal(format!("t{i}"), exec));
        }
    }
    let mut env = Environment::dedicated(machines);
    for f in env.comp_slowdown.iter_mut() {
        *f = 1.0 + next() / 5.0;
    }
    (Workflow::new(v), env)
}

fn comparison(baseline_ns: f64, engine_ns: f64) -> Value {
    Value::Map(vec![
        ("baseline_ns".to_string(), Value::Float(baseline_ns)),
        ("engine_ns".to_string(), Value::Float(engine_ns)),
        ("speedup".to_string(), Value::Float(baseline_ns / engine_ns)),
    ])
}

fn main() {
    let pred = paragon_predictor();

    // Batched predictions: 256 tasks, one profile fold per batch.
    let mix = WorkloadMix::from_fracs(
        &(0..24).map(|i| (f64_from_u64(i) * 0.37 + 0.11).fract()).collect::<Vec<_>>(),
    );
    let batch = tasks(256);
    let per_call = time_ns(200, || {
        black_box(
            batch
                .iter()
                .map(|t| pred.decide(black_box(t), black_box(&mix), 512))
                .collect::<Vec<_>>(),
        );
    });
    let batched = time_ns(200, || {
        let profile = pred.profile(black_box(&mix));
        black_box(pred.decide_batch(black_box(&batch), &profile, 512));
    });

    // Exhaustive search: 4 machines x 8 tasks = 65536 schedules.
    let (wf, env) = chain_instance(4, 8);
    let oracle = time_ns(20, || {
        black_box(best_exhaustive_oracle(black_box(&wf), black_box(&env)));
    });
    let mut scratch = SearchScratch::new();
    let gray = time_ns(20, || {
        black_box(best_exhaustive_with(black_box(&wf), black_box(&env), &mut scratch));
    });

    // Slowdown factors at p = 64: direct fold vs cached hit.
    let big = WorkloadMix::from_fracs(
        &(0..64).map(|i| (f64_from_u64(i) * 0.37 + 0.11).fract()).collect::<Vec<_>>(),
    );
    let direct = time_ns(20_000, || {
        black_box(comm_slowdown(black_box(&big), black_box(&pred.comm_delays)));
    });
    let mut cache = ProfileCache::new();
    let cached = time_ns(20_000, || {
        black_box(
            cache
                .profile_for(black_box(&big), &pred.comm_delays, &pred.comp_delays)
                .comm_slowdown(),
        );
    });

    let report = Value::Map(vec![
        ("batch_predict_256".to_string(), comparison(per_call, batched)),
        ("best_exhaustive_4m8t".to_string(), comparison(oracle, gray)),
        ("slowdown_factors_p64".to_string(), comparison(direct, cached)),
        ("modelcheck_workspace".to_string(), modelcheck_report()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_model_eval.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_model_eval.json");
    println!("{json}");

    let service = service_report();
    let json = serde_json::to_string_pretty(&service).expect("serializable");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, format!("{json}\n")).expect("write BENCH_service.json");
    println!("{json}");
}

/// Wall time, finding counts, and call-graph size of a full
/// `modelcheck` workspace scan (lex + AST + graph passes + the
/// cross-file drift check), so the analyzer's own cost — and how much
/// structure the interprocedural passes see — is tracked per commit
/// alongside the model numbers.
fn modelcheck_report() -> Value {
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let start = Instant::now();
    let (mut diags, stats) = modelcheck::scan_workspace_with_stats(root);
    let scan_secs = start.elapsed().as_secs_f64();
    let text =
        std::fs::read_to_string(modelcheck::baseline::default_path(root)).unwrap_or_default();
    let (entries, _bad) = modelcheck::baseline::parse(&text);
    modelcheck::baseline::mark(&mut diags, &entries);
    let baselined = diags.iter().filter(|d| d.baselined).count();
    Value::Map(vec![
        ("scan_ms".to_string(), Value::Float(scan_secs * 1e3)),
        ("files".to_string(), Value::UInt(stats.files as u64)),
        ("graph_nodes".to_string(), Value::UInt(stats.graph_nodes as u64)),
        ("graph_edges".to_string(), Value::UInt(stats.graph_edges as u64)),
        ("diagnostics".to_string(), Value::UInt(diags.len() as u64)),
        ("baselined".to_string(), Value::UInt(baselined as u64)),
        ("new".to_string(), Value::UInt((diags.len() - baselined) as u64)),
    ])
}

/// `ns_per_op` / `ops_per_sec` for one measured operation.
fn throughput(ns_per_op: f64) -> Value {
    Value::Map(vec![
        ("ns_per_op".to_string(), Value::Float(ns_per_op)),
        ("ops_per_sec".to_string(), Value::Float(1e9 / ns_per_op)),
    ])
}

/// The online service path: loadcast ingest+forecast over a 64-sample
/// sawtooth, and predictd `load_report` / warm-cache `predict` requests
/// through the same `handle_line` entry the transports use.
fn service_report() -> Value {
    use contention_model::units::{f64_from_usize, secs};
    use loadcast::{LoadMonitor, MonitorConfig};
    use predictd::{Service, ServiceConfig};

    let ingest = time_ns(2_000, || {
        let mut m = LoadMonitor::new(MonitorConfig::default());
        for k in 0..64usize {
            m.report(secs(f64_from_usize(k)), black_box(f64_from_usize(k % 7) * 0.75), None);
        }
        black_box(m.forecast(secs(64.0)));
    });

    let svc = Service::with_default_predictor(ServiceConfig::default());
    let report_line = "{\"kind\":\"load_report\",\"machine\":\"m0\",\"at\":1.0,\
                       \"load\":2.0,\"comm_frac\":0.4}";
    let predict_line = "{\"kind\":\"predict\",\"machine\":\"m0\",\"now\":1.5,\
                        \"task\":{\"dcomp_sun\":30.0,\"t_paragon\":6.0,\
                        \"to_backend\":[{\"messages\":10,\"words\":2000}],\
                        \"from_backend\":[{\"messages\":1,\"words\":1000}]},\"j_words\":500}";
    let load_report = time_ns(20_000, || {
        black_box(svc.handle_line(black_box(report_line)));
    });
    let predict = time_ns(20_000, || {
        black_box(svc.handle_line(black_box(predict_line)));
    });

    Value::Map(vec![
        ("loadcast_ingest_forecast_64".to_string(), throughput(ingest)),
        ("predictd_load_report".to_string(), throughput(load_report)),
        ("predictd_predict".to_string(), throughput(predict)),
        ("concurrency_sweep".to_string(), concurrency_sweep()),
        ("gateway_sweep".to_string(), gateway_sweep()),
    ])
}

/// One measured loadgen run as a JSON record, client-observed latency
/// quantiles included.
fn sweep_point(conns: usize, pipeline: usize, s: &bench::loadgen::Summary) -> Value {
    Value::Map(vec![
        ("conns".to_string(), Value::UInt(conns as u64)),
        ("pipeline".to_string(), Value::UInt(pipeline as u64)),
        ("requests".to_string(), Value::UInt(s.requests)),
        ("errors".to_string(), Value::UInt(s.errors)),
        ("elapsed_secs".to_string(), Value::Float(s.elapsed_secs)),
        ("requests_per_sec".to_string(), Value::Float(s.requests_per_sec)),
        ("p50_us".to_string(), Value::UInt(s.p50_us)),
        ("p95_us".to_string(), Value::UInt(s.p95_us)),
        ("p99_us".to_string(), Value::UInt(s.p99_us)),
        ("max_us".to_string(), Value::UInt(s.max_us)),
    ])
}

/// The service headline numbers: mixed predict/load_report traffic
/// against (a) the single-threaded server, one closed-loop connection —
/// the PR 3 configuration — (b) the pooled, sharded server with
/// pipelined clients at 1, 4, and 16 connections, and (c) the evented
/// engine (per-core epoll loops, `SO_REUSEPORT`, shard-affine replicas)
/// in both codecs at the same connection counts, all over real TCP on
/// loopback. `speedup_16_vs_baseline` tracks the PR 4 acceptance
/// number; `binary_evented_16_vs_pooled_json_4` is this PR's — the
/// evented binary engine at 16 connections against the pooled JSON
/// engine at its 4-connection peak.
fn concurrency_sweep() -> Value {
    use bench::loadgen::{drive, Codec, GenConfig, Mix};
    use predictd::proto::Request;
    use predictd::{
        serve, serve_pool, Client, EventedServer, ServerConfig, Service, ServiceConfig,
    };
    use std::net::TcpListener;
    use std::thread;

    const REQUESTS_PER_CONN: usize = 2000;
    const PIPELINE: usize = 64;
    /// Trials per measured point; the fastest is recorded, the usual
    /// guard against scheduler noise on a shared box.
    const TRIALS: usize = 3;

    let best_run = |addr, cfg: &GenConfig| {
        let mut best: Option<bench::loadgen::Summary> = None;
        for _ in 0..TRIALS {
            let s = drive(addr, cfg).expect("loadgen run");
            if best.as_ref().is_none_or(|b| s.requests_per_sec > b.requests_per_sec) {
                best = Some(s);
            }
        }
        best.expect("at least one trial")
    };

    // Baseline: sequential accept loop, one connection, one request in
    // flight — every request pays a full write/read round trip.
    let baseline = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let handle = thread::spawn(move || {
            let service = Service::with_default_predictor(ServiceConfig {
                shards: 1,
                ..ServiceConfig::default()
            });
            serve(&listener, &service).expect("serve");
        });
        let cfg = GenConfig {
            conns: 1,
            requests_per_conn: REQUESTS_PER_CONN,
            pipeline: 1,
            mix: Mix::default(),
            codec: Codec::Json,
        };
        let summary = best_run(addr, &cfg);
        let mut client = Client::connect(addr).expect("shutdown connection");
        client.request(&Request::Shutdown).expect("shutdown");
        handle.join().expect("baseline server exits");
        summary
    };

    // The concurrent server: worker pool + shards, pipelined clients.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || {
        let service = Service::with_default_predictor(ServiceConfig::default());
        let cfg = ServerConfig { workers: 4, ..ServerConfig::default() };
        serve_pool(&listener, &service, &cfg).expect("serve_pool");
    });
    let mut points = Vec::new();
    let mut speedup_16 = 0.0;
    let mut pooled_json_4 = 0.0;
    for conns in [1usize, 4, 16] {
        let cfg = GenConfig {
            conns,
            requests_per_conn: REQUESTS_PER_CONN,
            pipeline: PIPELINE,
            mix: Mix::default(),
            codec: Codec::Json,
        };
        let summary = best_run(addr, &cfg);
        if conns == 16 {
            speedup_16 = summary.requests_per_sec / baseline.requests_per_sec;
        }
        if conns == 4 {
            pooled_json_4 = summary.requests_per_sec;
        }
        points.push(sweep_point(conns, PIPELINE, &summary));
    }
    let mut client = Client::connect(addr).expect("shutdown connection");
    client.request(&Request::Shutdown).expect("shutdown");
    drop(client);
    handle.join().expect("pooled server exits");

    // The evented engine: per-worker epoll loops over SO_REUSEPORT
    // listeners, swept in both codecs over the same traffic.
    let server = EventedServer::bind("127.0.0.1:0".parse().expect("loopback addr"), 4)
        .expect("bind evented");
    let addr = server.local_addr();
    let handle = thread::spawn(move || {
        let service = Service::with_default_predictor(ServiceConfig::default());
        server.run(&service, &ServerConfig::default()).expect("evented serve");
    });
    let mut evented_json = Vec::new();
    let mut evented_binary = Vec::new();
    let mut binary_16 = 0.0;
    for codec in [Codec::Json, Codec::Binary] {
        for conns in [1usize, 4, 16] {
            let cfg = GenConfig {
                conns,
                requests_per_conn: REQUESTS_PER_CONN,
                pipeline: PIPELINE,
                mix: Mix::default(),
                codec,
            };
            let summary = best_run(addr, &cfg);
            match codec {
                Codec::Json => evented_json.push(sweep_point(conns, PIPELINE, &summary)),
                Codec::Binary => {
                    if conns == 16 {
                        binary_16 = summary.requests_per_sec;
                    }
                    evented_binary.push(sweep_point(conns, PIPELINE, &summary));
                }
            }
        }
    }
    let mut client = Client::connect_binary(addr).expect("shutdown connection");
    client.request(&Request::Shutdown).expect("shutdown");
    drop(client);
    handle.join().expect("evented server exits");

    Value::Map(vec![
        ("baseline_1conn_closed_loop".to_string(), sweep_point(1, 1, &baseline)),
        ("pooled_workers4".to_string(), Value::Seq(points)),
        ("evented_workers4_json".to_string(), Value::Seq(evented_json)),
        ("evented_workers4_binary".to_string(), Value::Seq(evented_binary)),
        ("speedup_16_vs_baseline".to_string(), Value::Float(speedup_16)),
        (
            "binary_evented_16_vs_pooled_json_4".to_string(),
            Value::Float(binary_16 / pooled_json_4.max(1e-9)),
        ),
    ])
}

/// Federation overhead per hop: the same mixed binary traffic against
/// one monolithic evented predictd, then against one `predictgw`
/// fronting 1, 2, and 4 backends. Every gateway request pays at least
/// one extra loopback hop (and `load_report` pays one per backend, by
/// broadcast), so `gateway_1backend_vs_monolithic` is the per-hop cost
/// tracked across PRs; the 2- and 4-backend points show how fan-out
/// amortizes it. Fixtures are leaked per point — this is a short-lived
/// dump process, the same trade the e2e tests make.
fn gateway_sweep() -> Value {
    use bench::loadgen::{drive, Codec, GenConfig, Mix};
    use predictd::proto::Request;
    use predictd::{Client, EventedServer, ServerConfig, Service, ServiceConfig};
    use predictgw::{Gateway, GatewayConfig, GatewayServer};
    use std::sync::atomic::AtomicBool;
    use std::thread;

    const REQUESTS_PER_CONN: usize = 1000;
    const PIPELINE: usize = 32;
    const CONNS: usize = 4;
    const TRIALS: usize = 2;

    let cfg = GenConfig {
        conns: CONNS,
        requests_per_conn: REQUESTS_PER_CONN,
        pipeline: PIPELINE,
        mix: Mix::default(),
        codec: Codec::Binary,
    };
    let best_run = |addr| {
        let mut best: Option<bench::loadgen::Summary> = None;
        for _ in 0..TRIALS {
            let s = drive(addr, &cfg).expect("loadgen run");
            if best.as_ref().is_none_or(|b| s.requests_per_sec > b.requests_per_sec) {
                best = Some(s);
            }
        }
        best.expect("at least one trial")
    };
    let spawn_backend = || {
        let service: &'static Service =
            Box::leak(Box::new(Service::with_default_predictor(ServiceConfig::default())));
        let scfg: &'static ServerConfig = Box::leak(Box::new(ServerConfig::default()));
        let server =
            EventedServer::bind("127.0.0.1:0".parse().expect("loopback addr"), 2).expect("bind");
        let addr = server.local_addr();
        let handle = thread::spawn(move || server.run(service, scfg).expect("backend run"));
        (addr, handle)
    };
    let shutdown = |addr| {
        let mut client = Client::connect_binary(addr).expect("shutdown connection");
        client.request(&Request::Shutdown).expect("shutdown");
    };

    // Monolithic baseline: the same engine the gateway's backends run.
    let (mono_addr, mono_handle) = spawn_backend();
    let mono = best_run(mono_addr);
    shutdown(mono_addr);
    mono_handle.join().expect("monolithic server exits");

    let mut points = Vec::new();
    let mut one_backend_rps = 0.0;
    for n in [1usize, 2, 4] {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let (addr, handle) = spawn_backend();
            addrs.push(addr);
            handles.push(handle);
        }
        let gateway: &'static Gateway = Box::leak(Box::new(
            Gateway::new(GatewayConfig {
                backends: addrs.iter().map(|a| a.to_string()).collect(),
                ..GatewayConfig::default()
            })
            .expect("gateway"),
        ));
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let scfg: &'static ServerConfig = Box::leak(Box::new(ServerConfig::default()));
        let server = GatewayServer::bind("127.0.0.1:0".parse().expect("loopback addr"), 2)
            .expect("bind gateway");
        let gw_addr = server.local_addr();
        let gw_handle =
            thread::spawn(move || server.run(gateway, scfg, stop).expect("gateway run"));

        let summary = best_run(gw_addr);
        if n == 1 {
            one_backend_rps = summary.requests_per_sec;
        }
        let point = match sweep_point(CONNS, PIPELINE, &summary) {
            Value::Map(mut entries) => {
                entries.insert(0, ("backends".to_string(), Value::UInt(n as u64)));
                Value::Map(entries)
            }
            other => other,
        };
        points.push(point);

        shutdown(gw_addr);
        gw_handle.join().expect("gateway exits");
        for (addr, handle) in addrs.iter().zip(handles) {
            shutdown(*addr);
            handle.join().expect("backend exits");
        }
    }

    Value::Map(vec![
        ("monolithic_baseline".to_string(), sweep_point(CONNS, PIPELINE, &mono)),
        ("gateway".to_string(), Value::Seq(points)),
        (
            "gateway_1backend_vs_monolithic".to_string(),
            Value::Float(one_backend_rps / mono.requests_per_sec.max(1e-9)),
        ),
    ])
}
