//! A small deterministic traffic generator for `predictd`.
//!
//! Drives a running daemon over real TCP from N concurrent connections,
//! each issuing a fixed, weighted round-robin mix of `load_report`,
//! `predict`, and `decide_batch` requests. `pipeline = 1` is a closed
//! loop (one request in flight per connection); larger depths keep a
//! window of requests in flight through the client's `send_raw`/`flush`
//! surface, which is what lets the server's syscall-batched write path
//! show up in the numbers.
//!
//! Everything is deterministic — the mix pattern, machine names
//! (`lg0`, `lg1`, ...), and timestamps — so two runs against the same
//! daemon produce the same request stream.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

use predictd::{Client, ClientError};

/// Relative weights of the request kinds in the generated stream.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Weight of `load_report` requests.
    pub load_report: u32,
    /// Weight of `predict` requests.
    pub predict: u32,
    /// Weight of `decide_batch` requests (3 tasks per batch).
    pub decide_batch: u32,
}

impl Default for Mix {
    /// The read-mostly mix from the paper's scheduler: three predictions
    /// per load report, no batches.
    fn default() -> Self {
        Mix { load_report: 1, predict: 3, decide_batch: 0 }
    }
}

/// One load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of concurrent client connections.
    pub conns: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// Requests kept in flight per connection; `1` is a closed loop.
    pub pipeline: usize,
    /// Request-kind mix.
    pub mix: Mix,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { conns: 4, requests_per_conn: 1000, pipeline: 8, mix: Mix::default() }
    }
}

/// What a run measured, from the client side.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Total requests answered.
    pub requests: u64,
    /// Replies that decoded as protocol errors.
    pub errors: u64,
    /// Wall time of the whole run.
    pub elapsed_secs: f64,
    /// `requests / elapsed_secs`.
    pub requests_per_sec: f64,
}

/// One kind slot in the repeating request pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Report,
    Predict,
    Batch,
}

/// Expands the weighted mix into a repeating pattern, load reports
/// first so every cycle's predictions run against a fresh forecast.
fn pattern(mix: Mix) -> Vec<Kind> {
    let mut p = Vec::new();
    for _ in 0..mix.load_report {
        p.push(Kind::Report);
    }
    for _ in 0..mix.predict {
        p.push(Kind::Predict);
    }
    for _ in 0..mix.decide_batch {
        p.push(Kind::Batch);
    }
    assert!(!p.is_empty(), "mix must have at least one non-zero weight");
    p
}

/// Formats request number `r` for machine `machine` into `line`
/// (cleared first). Timestamps advance 50 ms per request, well inside
/// the default 10 s staleness horizon.
fn format_request(line: &mut String, kind: Kind, machine: &str, r: usize) {
    const TASK: &str = "{\"dcomp_sun\":30.0,\"t_paragon\":6.0,\
                        \"to_backend\":[{\"messages\":10,\"words\":2000}],\
                        \"from_backend\":[{\"messages\":1,\"words\":1000}]}";
    line.clear();
    let at = r as f64 * 0.05;
    match kind {
        Kind::Report => {
            let _ = write!(
                line,
                "{{\"kind\":\"load_report\",\"machine\":\"{machine}\",\"at\":{at},\
                 \"load\":2.0,\"comm_frac\":0.4}}"
            );
        }
        Kind::Predict => {
            let _ = write!(
                line,
                "{{\"kind\":\"predict\",\"machine\":\"{machine}\",\"now\":{at},\
                 \"task\":{TASK},\"j_words\":500}}"
            );
        }
        Kind::Batch => {
            let _ = write!(
                line,
                "{{\"kind\":\"decide_batch\",\"machine\":\"{machine}\",\"now\":{at},\
                 \"tasks\":[{TASK},{TASK},{TASK}],\"j_words\":500}}"
            );
        }
    }
}

/// Renders one connection's full request stream up front, so the timed
/// window measures the server, not client-side formatting.
fn render_lines(conn_id: usize, cfg: &GenConfig) -> Vec<String> {
    let kinds = pattern(cfg.mix);
    let machine = format!("lg{conn_id}");
    let mut lines = Vec::with_capacity(cfg.requests_per_conn);
    let mut line = String::new();
    for r in 0..cfg.requests_per_conn {
        format_request(&mut line, kinds[r % kinds.len()], &machine, r);
        lines.push(line.clone());
    }
    lines
}

/// One connection's worth of traffic: the pre-rendered lines sent in
/// windows of `pipeline`, counting protocol-error replies.
fn drive_conn(client: &mut Client, lines: &[String], pipeline: usize) -> Result<u64, ClientError> {
    let mut reply = String::new();
    let mut errors = 0u64;
    let depth = pipeline.max(1);
    let mut sent = 0usize;
    while sent < lines.len() {
        let window = depth.min(lines.len() - sent);
        for line in &lines[sent..sent + window] {
            client.send_raw(line)?;
        }
        client.flush()?;
        for _ in 0..window {
            client.recv_raw_into(&mut reply)?;
            if reply.starts_with("{\"kind\":\"error\"") {
                errors += 1;
            }
        }
        sent += window;
    }
    Ok(errors)
}

/// Runs the configured traffic against a daemon at `addr` and returns
/// the client-side summary. Connections are opened and request lines
/// rendered before the clock starts; all connections begin sending
/// together behind a barrier. Fails if any connection hits a transport
/// error; protocol-error replies are counted, not fatal.
pub fn drive(addr: SocketAddr, cfg: &GenConfig) -> Result<Summary, ClientError> {
    let barrier = std::sync::Barrier::new(cfg.conns + 1);
    let (results, elapsed) = thread::scope(|scope| {
        let barrier = &barrier;
        let handles: Vec<_> = (0..cfg.conns)
            .map(|c| {
                scope.spawn(move || {
                    let setup = Client::connect(addr).map(|cl| (cl, render_lines(c, cfg)));
                    // Reach the barrier even on a failed connect, or the
                    // other threads would wait forever.
                    barrier.wait();
                    let (mut client, lines) = setup?;
                    drive_conn(&mut client, &lines, cfg.pipeline)
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        let results: Vec<Result<u64, ClientError>> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(ClientError::Protocol("loadgen thread panicked".to_string())),
            })
            .collect();
        (results, started.elapsed().as_secs_f64())
    });
    let mut errors = 0u64;
    for r in results {
        errors += r?;
    }
    let requests = (cfg.conns * cfg.requests_per_conn) as u64;
    Ok(Summary {
        requests,
        errors,
        elapsed_secs: elapsed,
        requests_per_sec: requests as f64 / elapsed.max(1e-9),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_respects_weights() {
        let p = pattern(Mix { load_report: 1, predict: 3, decide_batch: 1 });
        assert_eq!(p.len(), 5);
        assert_eq!(p.iter().filter(|k| **k == Kind::Predict).count(), 3);
        assert_eq!(p[0], Kind::Report, "reports lead each cycle");
    }

    #[test]
    fn requests_are_valid_wire_lines() {
        let mut line = String::new();
        for (kind, want) in [
            (Kind::Report, "\"kind\":\"load_report\""),
            (Kind::Predict, "\"kind\":\"predict\""),
            (Kind::Batch, "\"kind\":\"decide_batch\""),
        ] {
            format_request(&mut line, kind, "lg0", 7);
            assert!(line.contains(want), "{line}");
            assert!(serde_json::from_str::<predictd::Request>(&line).is_ok(), "must parse: {line}");
        }
    }
}
