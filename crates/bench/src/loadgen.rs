//! A small deterministic traffic generator for `predictd`.
//!
//! Drives a running daemon over real TCP from N concurrent connections,
//! each issuing a fixed, weighted round-robin mix of `load_report`,
//! `predict`, and `decide_batch` requests. `pipeline = 1` is a closed
//! loop (one request in flight per connection); larger depths keep a
//! window of requests in flight through the client's `send_raw`/`flush`
//! surface, which is what lets the server's syscall-batched write path
//! show up in the numbers.
//!
//! Requests travel as newline-JSON or as the length-prefixed binary
//! codec ([`Codec`]); either way the whole stream is rendered before
//! the clock starts, so the timed window measures the server and the
//! wire, not client-side encoding. Besides throughput, each run reports
//! client-observed latency quantiles (p50/p95/p99/max): every request
//! is stamped when its window is flushed and measured when its reply is
//! read back, and the per-connection histograms are merged into one
//! fleet-wide distribution.
//!
//! Everything is deterministic — the mix pattern, machine names
//! (`lg0`, `lg1`, ...), and timestamps — so two runs against the same
//! daemon produce the same request stream.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

use contention_model::units::{f64_from_u64, f64_from_usize};
use predictd::binproto;
use predictd::{Client, ClientError, LatencyHistogram, Request};

/// Relative weights of the request kinds in the generated stream.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Weight of `load_report` requests.
    pub load_report: u32,
    /// Weight of `predict` requests.
    pub predict: u32,
    /// Weight of `decide_batch` requests (3 tasks per batch).
    pub decide_batch: u32,
}

impl Default for Mix {
    /// The read-mostly mix from the paper's scheduler: three predictions
    /// per load report, no batches.
    fn default() -> Self {
        Mix { load_report: 1, predict: 3, decide_batch: 0 }
    }
}

/// Which wire codec the generated connections speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Newline-delimited JSON (the default).
    Json,
    /// Length-prefixed binary frames, negotiated by preamble.
    Binary,
}

/// One load-generation run.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of concurrent client connections.
    pub conns: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// Requests kept in flight per connection; `1` is a closed loop.
    pub pipeline: usize,
    /// Request-kind mix.
    pub mix: Mix,
    /// Wire codec every connection negotiates.
    pub codec: Codec,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            conns: 4,
            requests_per_conn: 1000,
            pipeline: 8,
            mix: Mix::default(),
            codec: Codec::Json,
        }
    }
}

/// What a run measured, from the client side.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Total requests answered.
    pub requests: u64,
    /// Replies that decoded as protocol errors.
    pub errors: u64,
    /// Wall time of the whole run.
    pub elapsed_secs: f64,
    /// `requests / elapsed_secs`.
    pub requests_per_sec: f64,
    /// Client-observed median request latency, µs (flush → reply read).
    pub p50_us: u64,
    /// Client-observed 95th-percentile latency, µs.
    pub p95_us: u64,
    /// Client-observed 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Worst client-observed latency, µs.
    pub max_us: u64,
}

/// One kind slot in the repeating request pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Report,
    Predict,
    Batch,
}

/// Expands the weighted mix into a repeating pattern, load reports
/// first so every cycle's predictions run against a fresh forecast.
fn pattern(mix: Mix) -> Vec<Kind> {
    let mut p = Vec::new();
    for _ in 0..mix.load_report {
        p.push(Kind::Report);
    }
    for _ in 0..mix.predict {
        p.push(Kind::Predict);
    }
    for _ in 0..mix.decide_batch {
        p.push(Kind::Batch);
    }
    assert!(!p.is_empty(), "mix must have at least one non-zero weight");
    p
}

/// Formats request number `r` for machine `machine` into `line`
/// (cleared first). Timestamps advance 50 ms per request, well inside
/// the default 10 s staleness horizon.
fn format_request(line: &mut String, kind: Kind, machine: &str, r: usize) {
    const TASK: &str = "{\"dcomp_sun\":30.0,\"t_paragon\":6.0,\
                        \"to_backend\":[{\"messages\":10,\"words\":2000}],\
                        \"from_backend\":[{\"messages\":1,\"words\":1000}]}";
    line.clear();
    let at = f64_from_usize(r) * 0.05;
    match kind {
        Kind::Report => {
            let _ = write!(
                line,
                "{{\"kind\":\"load_report\",\"machine\":\"{machine}\",\"at\":{at},\
                 \"load\":2.0,\"comm_frac\":0.4}}"
            );
        }
        Kind::Predict => {
            let _ = write!(
                line,
                "{{\"kind\":\"predict\",\"machine\":\"{machine}\",\"now\":{at},\
                 \"task\":{TASK},\"j_words\":500}}"
            );
        }
        Kind::Batch => {
            let _ = write!(
                line,
                "{{\"kind\":\"decide_batch\",\"machine\":\"{machine}\",\"now\":{at},\
                 \"tasks\":[{TASK},{TASK},{TASK}],\"j_words\":500}}"
            );
        }
    }
}

/// Renders one connection's full request stream up front, so the timed
/// window measures the server, not client-side formatting.
fn render_lines(conn_id: usize, cfg: &GenConfig) -> Vec<String> {
    let kinds = pattern(cfg.mix);
    let machine = format!("lg{conn_id}");
    let mut lines = Vec::with_capacity(cfg.requests_per_conn);
    let mut line = String::new();
    for r in 0..cfg.requests_per_conn {
        format_request(&mut line, kinds[r % kinds.len()], &machine, r);
        lines.push(line.clone());
    }
    lines
}

/// Re-encodes pre-rendered JSON lines as binary frames (length prefix
/// included), so a binary run sends a bit-identical request stream.
fn encode_frames(lines: &[String]) -> Result<Vec<Vec<u8>>, ClientError> {
    let mut frames = Vec::with_capacity(lines.len());
    for line in lines {
        let req: Request =
            serde_json::from_str(line).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let mut frame = Vec::with_capacity(line.len());
        if !binproto::encode_request(&req, &mut frame) {
            return Err(ClientError::Protocol("request exceeds frame limits".to_string()));
        }
        frames.push(frame);
    }
    Ok(frames)
}

/// Per-connection measurement: protocol-error replies and the
/// client-observed latency of every request.
struct ConnStats {
    errors: u64,
    latency: LatencyHistogram,
}

/// Stamps a flushed window and measures each reply against its stamp.
/// With pipelining, "latency" is flush-to-reply for the whole window —
/// the queueing delay a real scheduler would see, not pure service time.
struct Stamps {
    in_flight: VecDeque<Instant>,
}

impl Stamps {
    fn flushed(&mut self, window: usize) {
        let now = Instant::now();
        for _ in 0..window {
            self.in_flight.push_back(now);
        }
    }

    fn replied(&mut self, latency: &mut LatencyHistogram) {
        if let Some(sent) = self.in_flight.pop_front() {
            let us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
            latency.record(us);
        }
    }
}

/// One connection's worth of traffic: the pre-rendered lines sent in
/// windows of `pipeline`, counting protocol-error replies.
fn drive_conn(
    client: &mut Client,
    lines: &[String],
    pipeline: usize,
) -> Result<ConnStats, ClientError> {
    let mut reply = String::new();
    let mut stats = ConnStats { errors: 0, latency: LatencyHistogram::new() };
    let mut stamps = Stamps { in_flight: VecDeque::with_capacity(pipeline.max(1)) };
    let depth = pipeline.max(1);
    let mut sent = 0usize;
    while sent < lines.len() {
        let window = depth.min(lines.len() - sent);
        for line in &lines[sent..sent + window] {
            client.send_raw(line)?;
        }
        client.flush()?;
        stamps.flushed(window);
        for _ in 0..window {
            client.recv_raw_into(&mut reply)?;
            stamps.replied(&mut stats.latency);
            if reply.starts_with("{\"kind\":\"error\"") {
                stats.errors += 1;
            }
        }
        sent += window;
    }
    Ok(stats)
}

/// The binary twin of [`drive_conn`]: pre-encoded frames pipelined
/// through [`Client::send_frame`]/[`Client::recv_frame_into`].
fn drive_conn_binary(
    client: &mut Client,
    frames: &[Vec<u8>],
    pipeline: usize,
) -> Result<ConnStats, ClientError> {
    let mut body = Vec::with_capacity(256);
    let mut stats = ConnStats { errors: 0, latency: LatencyHistogram::new() };
    let mut stamps = Stamps { in_flight: VecDeque::with_capacity(pipeline.max(1)) };
    let depth = pipeline.max(1);
    let mut sent = 0usize;
    while sent < frames.len() {
        let window = depth.min(frames.len() - sent);
        for frame in &frames[sent..sent + window] {
            client.send_frame(frame)?;
        }
        client.flush()?;
        stamps.flushed(window);
        for _ in 0..window {
            client.recv_frame_into(&mut body)?;
            stamps.replied(&mut stats.latency);
            if body.first() == Some(&binproto::RESP_ERROR) {
                stats.errors += 1;
            }
        }
        sent += window;
    }
    Ok(stats)
}

/// Runs the configured traffic against a daemon at `addr` and returns
/// the client-side summary. Connections are opened and request lines
/// rendered before the clock starts; all connections begin sending
/// together behind a barrier. Fails if any connection hits a transport
/// error; protocol-error replies are counted, not fatal.
pub fn drive(addr: SocketAddr, cfg: &GenConfig) -> Result<Summary, ClientError> {
    let barrier = std::sync::Barrier::new(cfg.conns + 1);
    let (results, elapsed) = thread::scope(|scope| {
        let barrier = &barrier;
        let handles: Vec<_> = (0..cfg.conns)
            .map(|c| {
                scope.spawn(move || {
                    let setup = match cfg.codec {
                        Codec::Json => Client::connect(addr),
                        Codec::Binary => Client::connect_binary(addr),
                    }
                    .and_then(|cl| {
                        let lines = render_lines(c, cfg);
                        let frames = match cfg.codec {
                            Codec::Json => Vec::new(),
                            Codec::Binary => encode_frames(&lines)?,
                        };
                        Ok((cl, lines, frames))
                    });
                    // Reach the barrier even on a failed connect, or the
                    // other threads would wait forever.
                    barrier.wait();
                    let (mut client, lines, frames) = setup?;
                    match cfg.codec {
                        Codec::Json => drive_conn(&mut client, &lines, cfg.pipeline),
                        Codec::Binary => drive_conn_binary(&mut client, &frames, cfg.pipeline),
                    }
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        let results: Vec<Result<ConnStats, ClientError>> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(ClientError::Protocol("loadgen thread panicked".to_string())),
            })
            .collect();
        (results, started.elapsed().as_secs_f64())
    });
    let mut errors = 0u64;
    let mut latency = LatencyHistogram::new();
    for r in results {
        let stats = r?;
        errors += stats.errors;
        latency.merge(&stats.latency);
    }
    let requests = (cfg.conns * cfg.requests_per_conn) as u64;
    Ok(Summary {
        requests,
        errors,
        elapsed_secs: elapsed,
        requests_per_sec: f64_from_u64(requests) / elapsed.max(1e-9),
        p50_us: latency.quantile_us(0.50),
        p95_us: latency.quantile_us(0.95),
        p99_us: latency.quantile_us(0.99),
        max_us: latency.max_us(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_respects_weights() {
        let p = pattern(Mix { load_report: 1, predict: 3, decide_batch: 1 });
        assert_eq!(p.len(), 5);
        assert_eq!(p.iter().filter(|k| **k == Kind::Predict).count(), 3);
        assert_eq!(p[0], Kind::Report, "reports lead each cycle");
    }

    #[test]
    fn binary_frames_mirror_the_json_stream() {
        let cfg = GenConfig {
            requests_per_conn: 8,
            mix: Mix { load_report: 1, predict: 2, decide_batch: 1 },
            ..GenConfig::default()
        };
        let lines = render_lines(0, &cfg);
        let frames = encode_frames(&lines).expect("encode");
        assert_eq!(lines.len(), frames.len());
        for (line, frame) in lines.iter().zip(&frames) {
            let from_json: Request = serde_json::from_str(line).expect("json side");
            let decoded = binproto::decode_request(&frame[4..]).expect("binary side");
            assert_eq!(
                serde_json::to_string(&decoded).expect("serialize"),
                serde_json::to_string(&from_json).expect("serialize"),
                "codecs must carry the same request"
            );
        }
    }

    #[test]
    fn stamps_pair_replies_with_their_window() {
        let mut stamps = Stamps { in_flight: VecDeque::new() };
        let mut hist = LatencyHistogram::new();
        stamps.flushed(3);
        for _ in 0..3 {
            stamps.replied(&mut hist);
        }
        assert_eq!(hist.count(), 3);
        assert!(stamps.in_flight.is_empty());
        // A stray reply without a stamp records nothing.
        stamps.replied(&mut hist);
        assert_eq!(hist.count(), 3);
    }

    #[test]
    fn requests_are_valid_wire_lines() {
        let mut line = String::new();
        for (kind, want) in [
            (Kind::Report, "\"kind\":\"load_report\""),
            (Kind::Predict, "\"kind\":\"predict\""),
            (Kind::Batch, "\"kind\":\"decide_batch\""),
        ] {
            format_request(&mut line, kind, "lg0", 7);
            assert!(line.contains(want), "{line}");
            assert!(serde_json::from_str::<predictd::Request>(&line).is_ok(), "must parse: {line}");
        }
    }
}
