//! Sun/Paragon dedicated-communication calibration (paper §3.2.1).
//!
//! A ping-pong benchmark transfers bursts of equal-sized messages and
//! measures the per-burst time across message sizes. `(α, β)` come from a
//! linear regression on the per-message times; the piecewise `threshold`
//! comes from an exhaustive search over the measured sizes, keeping the
//! two-piece fit with the lowest error. All of this runs once per
//! platform — none of it is needed at run time.

use contention_model::comm::{LinearCommModel, PiecewiseCommModel};
use contention_model::units::{f64_from_u64, words};
use hetload::apps::pingpong_app;
use hetplat::config::PlatformConfig;
use hetplat::phase::PhaseKind;
use hetplat::platform::Platform;
use simcore::stats::LinearFit;

/// Tunables for the ping-pong calibration sweep.
#[derive(Debug, Clone)]
pub struct PingPongSpec {
    /// Message sizes (words) to sweep; must be ascending.
    pub sizes: Vec<u64>,
    /// Messages per burst (paper: 1000).
    pub burst: u64,
}

impl Default for PingPongSpec {
    fn default() -> Self {
        PingPongSpec {
            sizes: vec![1, 16, 64, 128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096],
            burst: 1000,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongPoint {
    /// Message size in words.
    pub words: u64,
    /// Time for the whole burst, seconds.
    pub burst_time: f64,
}

impl PingPongPoint {
    /// Per-message time.
    pub fn per_message(&self, burst: u64) -> f64 {
        self.burst_time / f64_from_u64(burst)
    }
}

/// Runs the ping-pong sweep on a dedicated platform in the given
/// direction (`outbound`: front-end → Paragon).
pub fn measure_pingpong(
    cfg: PlatformConfig,
    spec: &PingPongSpec,
    outbound: bool,
    seed: u64,
) -> Vec<PingPongPoint> {
    spec.sizes
        .iter()
        .map(|&words| {
            let mut p = Platform::new(cfg, seed);
            p.spawn(Box::new(hetload::generators::DaemonNoise::default_noise()));
            let id = p.spawn(Box::new(pingpong_app("pp", spec.burst, words, outbound)));
            // modelcheck-allow: no-panic — a stalled probe is a simulator defect
            p.run_until_done(id).expect("ping-pong stalled");
            let kind = if outbound { PhaseKind::Send } else { PhaseKind::Recv };
            PingPongPoint { words, burst_time: p.phase_time(id, kind).as_secs_f64() }
        })
        .collect()
}

/// Fits one `(α, β)` pair to (size, per-message time) points.
/// Returns `None` for degenerate inputs (fewer than two sizes).
pub fn fit_linear(points: &[PingPongPoint], burst: u64) -> Option<LinearCommModel> {
    let xy: Vec<(f64, f64)> =
        points.iter().map(|p| (f64_from_u64(p.words), p.per_message(burst))).collect();
    let fit = LinearFit::fit(&xy)?;
    if fit.slope <= 0.0 {
        return None;
    }
    Some(LinearCommModel::from_fit(fit.intercept, 1.0 / fit.slope))
}

/// Sum of squared per-message residuals of `model` over `points`.
///
/// Residuals come from the raw fitted line, not the typed
/// [`PiecewiseCommModel::message_time`]: a candidate piece can carry a
/// negative intercept (see [`LinearCommModel::from_fit`]) and predict
/// below zero at the smallest sizes, which a `Seconds` would reject —
/// here it is just a bad residual for the search to score.
fn sse(points: &[PingPongPoint], burst: u64, model: &PiecewiseCommModel) -> f64 {
    points
        .iter()
        .map(|p| {
            let piece = model.piece(words(p.words));
            let predicted = piece.alpha + f64_from_u64(p.words) / piece.beta.words_per_sec();
            (predicted - p.per_message(burst)).powi(2)
        })
        .sum()
}

/// Exhaustive threshold search over the measured sizes (paper: "the
/// number of possible thresholds is small"): for every candidate boundary
/// fit both pieces and keep the model with the lowest error. Falls back
/// to a single-piece fit when no split is viable.
pub fn fit_piecewise(points: &[PingPongPoint], burst: u64) -> PiecewiseCommModel {
    let uniform = fit_linear(points, burst)
        .map(PiecewiseCommModel::uniform)
        // modelcheck-allow: no-panic — documented precondition: callers sweep ≥ 2 sizes
        .expect("at least two distinct sizes required");
    let mut best = uniform;
    let mut best_err = sse(points, burst, &best);
    // Candidate thresholds: each measured size (the boundary is
    // inclusive on the small side), needing ≥ 2 points per piece.
    for split in 2..=points.len().saturating_sub(2) {
        let threshold = points[split - 1].words;
        let (small_pts, large_pts) = points.split_at(split);
        let (Some(small), Some(large)) =
            (fit_linear(small_pts, burst), fit_linear(large_pts, burst))
        else {
            continue;
        };
        // Built directly rather than through `PiecewiseCommModel::new`:
        // candidates are transient fits arbitrated by `sse`, and a losing
        // split may transiently violate the boundary sanity check that
        // `new` enforces on hand-built models.
        let candidate = PiecewiseCommModel { threshold, small, large };
        let err = sse(points, burst, &candidate);
        if err < best_err {
            best = candidate;
            best_err = err;
        }
    }
    best
}

/// Full dedicated-communication calibration: sweeps both directions and
/// returns the fitted piecewise models `(to_paragon, from_paragon)`.
pub fn calibrate_paragon_comm(
    cfg: PlatformConfig,
    spec: &PingPongSpec,
    seed: u64,
) -> (PiecewiseCommModel, PiecewiseCommModel) {
    let out = measure_pingpong(cfg, spec, true, seed);
    let inb = measure_pingpong(cfg, spec, false, seed);
    (fit_piecewise(&out, spec.burst), fit_piecewise(&inb, spec.burst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetplat::config::FrontendParams;

    fn cfg() -> PlatformConfig {
        PlatformConfig { frontend: FrontendParams::processor_sharing(), ..Default::default() }
    }

    fn quick_spec() -> PingPongSpec {
        PingPongSpec { sizes: vec![1, 64, 256, 512, 768, 1024, 1536, 2048, 4096], burst: 100 }
    }

    #[test]
    fn pingpong_times_increase_with_size() {
        let pts = measure_pingpong(cfg(), &quick_spec(), true, 1);
        for w in pts.windows(2) {
            assert!(w[1].burst_time > w[0].burst_time, "{w:?}");
        }
    }

    #[test]
    fn threshold_search_finds_protocol_boundary() {
        let c = cfg();
        let pts = measure_pingpong(c, &quick_spec(), true, 1);
        let model = fit_piecewise(&pts, 100);
        // The fitted boundary should sit at the eager limit (1024 words).
        assert_eq!(model.threshold, c.paragon.eager_limit_words);
        // And large messages should see higher effective bandwidth.
        assert!(model.large.beta.words_per_sec() > model.small.beta.words_per_sec());
    }

    #[test]
    fn piecewise_beats_single_piece() {
        let pts = measure_pingpong(cfg(), &quick_spec(), true, 1);
        let piecewise = fit_piecewise(&pts, 100);
        let single = PiecewiseCommModel::uniform(fit_linear(&pts, 100).unwrap());
        assert!(sse(&pts, 100, &piecewise) < sse(&pts, 100, &single));
    }

    #[test]
    fn fitted_model_predicts_within_a_few_percent() {
        let pts = measure_pingpong(cfg(), &quick_spec(), true, 1);
        let model = fit_piecewise(&pts, 100);
        for p in &pts {
            let predicted = model.message_time(words(p.words)).get();
            let actual = p.per_message(100);
            let err = ((predicted - actual) / actual).abs();
            assert!(err < 0.10, "{} words: predicted {predicted} actual {actual}", p.words);
        }
    }

    #[test]
    fn both_directions_calibrate() {
        let (to, from) = calibrate_paragon_comm(cfg(), &quick_spec(), 1);
        assert!(to.small.beta.words_per_sec() > 0.0 && from.small.beta.words_per_sec() > 0.0);
        assert!(to.small.alpha >= 0.0 && from.small.alpha >= 0.0);
        // Outbound: the rendezvous regime streams faster, so the large
        // piece has the higher effective bandwidth. Inbound: the large
        // regime is receive-processing-bound (buffer-cluster overflow), so
        // its effective bandwidth *drops* — the fit must reflect that.
        assert!(to.large.beta.words_per_sec() > to.small.beta.words_per_sec());
        assert!(from.large.beta.words_per_sec() < from.small.beta.words_per_sec());
        // Per-message times stay positive and increase with size.
        for m in [&to, &from] {
            assert!(m.message_time(words(1)).get() > 0.0);
            assert!(m.message_time(words(4096)) > m.message_time(words(64)));
        }
    }

    #[test]
    fn fit_linear_rejects_degenerate() {
        assert!(fit_linear(&[], 10).is_none());
        let one = [PingPongPoint { words: 10, burst_time: 1.0 }];
        assert!(fit_linear(&one, 10).is_none());
    }
}
