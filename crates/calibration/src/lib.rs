//! # calibration — the system test suite
//!
//! The paper splits the model's parameters into *system-dependent* values
//! "determined statically by a system test suite" and
//! *application-dependent* values supplied by the user. This crate is that
//! test suite, run against the simulated platforms of `hetplat`:
//!
//! * [`cm2`] — the two Sun/CM2 transfer benchmarks recovering `α` and the
//!   two `β`s;
//! * [`paragon`] — the ping-pong sweep, per-piece linear regression, and
//!   exhaustive threshold search for the piecewise dedicated model;
//! * [`delays`] — contended runs producing `delay_compⁱ`, `delay_commⁱ`,
//!   and `delay_commⁱʲ`.
//!
//! [`calibrate_paragon`] bundles everything a
//! [`ParagonPredictor`](contention_model::predict::ParagonPredictor) needs.

//!
//! modelcheck: no-panic, lossy-cast, missing-docs
#![warn(missing_docs)]

pub mod cm2;
pub mod delays;
pub mod paragon;

use contention_model::predict::ParagonPredictor;
use hetplat::config::PlatformConfig;

pub use cm2::{calibrate_cm2, Cm2CalibrationSpec};
pub use delays::{measure_comm_delays, measure_comp_delays, DelaySpec};
pub use paragon::{calibrate_paragon_comm, fit_piecewise, measure_pingpong, PingPongSpec};

/// Runs the full Sun/Paragon calibration suite and assembles a predictor.
pub fn calibrate_paragon(
    cfg: PlatformConfig,
    pingpong: &PingPongSpec,
    delays: &DelaySpec,
    seed: u64,
) -> ParagonPredictor {
    let (comm_to, comm_from) = calibrate_paragon_comm(cfg, pingpong, seed);
    ParagonPredictor {
        comm_to,
        comm_from,
        comm_delays: measure_comm_delays(cfg, delays, seed),
        comp_delays: measure_comp_delays(cfg, delays, seed),
    }
}
