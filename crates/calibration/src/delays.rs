//! Delay-table measurement (paper §3.2.1–3.2.2).
//!
//! The Sun/Paragon model weights mix probabilities with measured delays:
//!
//! * `delay_compⁱ` / `delay_commⁱ` — the relative extra time that `i`
//!   computing / communicating contention generators impose **on the
//!   ping-pong benchmark**;
//! * `delay_commⁱʲ` — the relative extra time that `i` generators
//!   transferring `j`-word messages impose **on a CPU-bound probe**.
//!
//! All values are `T_contended / T_dedicated − 1`, averaged over both link
//! directions where the paper prescribes it. They are measured once per
//! platform and reused by every prediction.

use contention_model::delay::{CommDelayTable, CompDelayTable};
use contention_model::units::f64_from_usize;
use hetload::apps::{pingpong_app, sun_task_app};
use hetload::generators::{CommGenerator, CpuHog, GenDirection};
use hetplat::config::PlatformConfig;
use hetplat::phase::{AppProcess, PhaseKind};
use hetplat::platform::Platform;
use simcore::time::{SimDuration, SimTime};

/// Tunables for delay-table measurement.
#[derive(Debug, Clone)]
pub struct DelaySpec {
    /// Largest contender count to measure (`i = 1..=p_max`).
    pub p_max: usize,
    /// Messages per probe burst (paper: 1000).
    pub probe_burst: u64,
    /// Probe message sizes; the delay is the *average* relative delay the
    /// contenders impose on the ping-pong benchmark across these sizes
    /// and both directions.
    pub probe_sizes: Vec<u64>,
    /// CPU demand of the computation probe.
    pub comp_probe: SimDuration,
    /// Message-size buckets for `delay_commⁱʲ` (paper: `[1, 500, 1000]`).
    pub buckets: Vec<u64>,
    /// Head start given to generators before the probe begins.
    pub warmup: SimDuration,
}

impl Default for DelaySpec {
    fn default() -> Self {
        DelaySpec {
            p_max: 4,
            probe_burst: 500,
            probe_sizes: vec![64, 256, 1024],
            comp_probe: SimDuration::from_secs(10),
            buckets: vec![1, 500, 1000],
            warmup: SimDuration::from_secs(3),
        }
    }
}

/// Runs one ping-pong probe burst against a set of contenders; returns
/// the burst's elapsed seconds.
fn run_comm_probe_one(
    cfg: PlatformConfig,
    contenders: Vec<Box<dyn AppProcess>>,
    spec: &DelaySpec,
    words: u64,
    outbound: bool,
    seed: u64,
) -> f64 {
    let mut p = Platform::new(cfg, seed);
    p.spawn(Box::new(hetload::generators::DaemonNoise::default_noise()));
    for c in contenders {
        p.spawn(c);
    }
    let probe = p.spawn_at(
        Box::new(pingpong_app("probe", spec.probe_burst, words, outbound)),
        SimTime::ZERO + spec.warmup,
    );
    // modelcheck-allow: no-panic — a stalled probe is a simulator defect, not a model state
    p.run_until_done(probe).expect("probe stalled");
    let kind = if outbound { PhaseKind::Send } else { PhaseKind::Recv };
    p.phase_time(probe, kind).as_secs_f64()
}

/// Runs the ping-pong probe across the spec's sizes and both directions;
/// returns per-(size, direction) burst times in a fixed order.
fn run_comm_probe(
    cfg: PlatformConfig,
    contenders: &dyn Fn() -> Vec<Box<dyn AppProcess>>,
    spec: &DelaySpec,
    seed: u64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(spec.probe_sizes.len() * 2);
    for &words in &spec.probe_sizes {
        for outbound in [true, false] {
            out.push(run_comm_probe_one(cfg, contenders(), spec, words, outbound, seed));
        }
    }
    out
}

/// Mean relative delay of `contended` over `dedicated`, element-wise.
fn mean_rel_delay(contended: &[f64], dedicated: &[f64]) -> f64 {
    assert_eq!(contended.len(), dedicated.len());
    contended.iter().zip(dedicated).map(|(&c, &d)| rel_delay(c, d)).sum::<f64>()
        / f64_from_usize(dedicated.len())
}

/// Runs the CPU-bound probe against a set of contenders and returns its
/// elapsed seconds.
fn run_comp_probe(
    cfg: PlatformConfig,
    contenders: Vec<Box<dyn AppProcess>>,
    spec: &DelaySpec,
    seed: u64,
) -> f64 {
    let mut p = Platform::new(cfg, seed);
    p.spawn(Box::new(hetload::generators::DaemonNoise::default_noise()));
    for c in contenders {
        p.spawn(c);
    }
    let probe =
        p.spawn_at(Box::new(sun_task_app("probe", spec.comp_probe)), SimTime::ZERO + spec.warmup);
    // modelcheck-allow: no-panic — a stalled probe is a simulator defect, not a model state
    p.run_until_done(probe).expect("probe stalled");
    // modelcheck-allow: no-panic — elapsed is Some for any id run_until_done returned
    p.elapsed(probe).expect("probe finished").as_secs_f64()
}

fn hogs(i: usize) -> Vec<Box<dyn AppProcess>> {
    (0..i).map(|k| Box::new(CpuHog::new(format!("hog{k}"))) as Box<dyn AppProcess>).collect()
}

fn comm_gens(
    i: usize,
    words: u64,
    dir: GenDirection,
    cfg: &PlatformConfig,
) -> Vec<Box<dyn AppProcess>> {
    (0..i)
        .map(|k| {
            Box::new(CommGenerator::new(format!("cg{k}"), 1.0, words, dir, cfg))
                as Box<dyn AppProcess>
        })
        .collect()
}

/// Relative delay, clamped at zero.
fn rel_delay(contended: f64, dedicated: f64) -> f64 {
    (contended / dedicated - 1.0).max(0.0)
}

/// Measures `delay_compⁱ` and `delay_commⁱ` for `i = 1..=p_max`.
pub fn measure_comm_delays(cfg: PlatformConfig, spec: &DelaySpec, seed: u64) -> CommDelayTable {
    let none: &dyn Fn() -> Vec<Box<dyn AppProcess>> = &Vec::new;
    let t0 = run_comm_probe(cfg, none, spec, seed);
    let mut by_computing = Vec::with_capacity(spec.p_max);
    let mut by_communicating = Vec::with_capacity(spec.p_max);
    for i in 1..=spec.p_max {
        let t_comp = run_comm_probe(cfg, &|| hogs(i), spec, seed);
        by_computing.push(mean_rel_delay(&t_comp, &t0));
        // The paper averages the delay from generators pushing one-word
        // messages in each direction.
        let t_out =
            run_comm_probe(cfg, &|| comm_gens(i, 1, GenDirection::Outbound, &cfg), spec, seed);
        let t_in =
            run_comm_probe(cfg, &|| comm_gens(i, 1, GenDirection::Inbound, &cfg), spec, seed);
        by_communicating.push((mean_rel_delay(&t_out, &t0) + mean_rel_delay(&t_in, &t0)) / 2.0);
    }
    CommDelayTable::new(by_computing, by_communicating)
}

/// Measures `delay_commⁱʲ` for every bucket and `i = 1..=p_max`.
pub fn measure_comp_delays(cfg: PlatformConfig, spec: &DelaySpec, seed: u64) -> CompDelayTable {
    let t0 = run_comp_probe(cfg, Vec::new(), spec, seed);
    let mut delays = Vec::with_capacity(spec.buckets.len());
    for &j in &spec.buckets {
        let mut row = Vec::with_capacity(spec.p_max);
        for i in 1..=spec.p_max {
            let t_out =
                run_comp_probe(cfg, comm_gens(i, j, GenDirection::Outbound, &cfg), spec, seed);
            let t_in =
                run_comp_probe(cfg, comm_gens(i, j, GenDirection::Inbound, &cfg), spec, seed);
            row.push((rel_delay(t_out, t0) + rel_delay(t_in, t0)) / 2.0);
        }
        delays.push(row);
    }
    CompDelayTable::new(spec.buckets.clone(), delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetplat::config::FrontendParams;

    fn cfg() -> PlatformConfig {
        PlatformConfig { frontend: FrontendParams::processor_sharing(), ..Default::default() }
    }

    fn quick_spec() -> DelaySpec {
        DelaySpec {
            p_max: 2,
            probe_burst: 100,
            probe_sizes: vec![64, 1024],
            comp_probe: SimDuration::from_secs(2),
            buckets: vec![1, 500],
            warmup: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn comm_delays_grow_with_contenders() {
        let t = measure_comm_delays(cfg(), &quick_spec(), 11);
        assert!(t.computing(1) > 0.1, "delay_comp1 {}", t.computing(1));
        assert!(t.computing(2) > t.computing(1));
        assert!(t.communicating(1) > 0.0);
        assert!(t.communicating(2) > t.communicating(1));
    }

    #[test]
    fn comp_delays_grow_with_message_size() {
        let t = measure_comp_delays(cfg(), &quick_spec(), 12);
        // Bigger contender messages hit the CPU harder (more conversion
        // work per unit time is not true — but more words per message is).
        assert!(
            t.delay(1, 500) > t.delay(1, 1),
            "500w {} vs 1w {}",
            t.delay(1, 500),
            t.delay(1, 1)
        );
        assert!(t.delay(2, 500) > t.delay(1, 500));
    }

    #[test]
    fn cpu_splitting_delays_probe_by_i() {
        // With i pure CPU hogs the computation probe slows by about i+1 —
        // the model's exact pcomp·i term.
        let spec = quick_spec();
        let t0 = run_comp_probe(cfg(), Vec::new(), &spec, 13);
        let t2 = run_comp_probe(cfg(), hogs(2), &spec, 13);
        assert!((t2 / t0 - 3.0).abs() < 0.05, "ratio {}", t2 / t0);
    }
}
