//! Sun/CM2 calibration (paper §3.1.1).
//!
//! Two benchmarks recover the dedicated transfer parameters:
//!
//! 1. **Bandwidth**: transfer one large array (paper: 10⁶ elements) one
//!    way and a single word back. The large transfer dominates, so
//!    `β ≈ elements / C`.
//! 2. **Startup**: transfer many one-element arrays each way. With both
//!    `β`s known and assuming `α_sun = α_cm2`,
//!    `α ≈ (C/count − 1/β_sun − 1/β_cm2) / 2`.

use contention_model::comm::LinearCommModel;
use contention_model::predict::Cm2Predictor;
use contention_model::units::{f64_from_u64, secs, BytesPerSec};
use hetload::apps::{cm2_bandwidth_probe, cm2_startup_probe};
use hetplat::config::PlatformConfig;
use hetplat::platform::Platform;

/// Tunable sizes for the CM2 calibration benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct Cm2CalibrationSpec {
    /// Elements in the bandwidth probe's large array (paper: 10⁶).
    pub bandwidth_elements: u64,
    /// One-element arrays per direction in the startup probe
    /// (paper: 10⁶; smaller values trade precision for run time).
    pub startup_count: u64,
}

impl Default for Cm2CalibrationSpec {
    fn default() -> Self {
        Cm2CalibrationSpec { bandwidth_elements: 1_000_000, startup_count: 100_000 }
    }
}

/// Runs both benchmarks on a dedicated platform and returns the fitted
/// transfer models.
pub fn calibrate_cm2(cfg: PlatformConfig, spec: Cm2CalibrationSpec, seed: u64) -> Cm2Predictor {
    // Bandwidth toward the CM2.
    let c_to = run_probe(cfg, seed, cm2_bandwidth_probe("bw-to", spec.bandwidth_elements, true));
    let beta_sun = f64_from_u64(spec.bandwidth_elements) / c_to;

    // Bandwidth back from the CM2.
    let c_from =
        run_probe(cfg, seed, cm2_bandwidth_probe("bw-from", spec.bandwidth_elements, false));
    let beta_cm2 = f64_from_u64(spec.bandwidth_elements) / c_from;

    // Startup both ways.
    let c_start = run_probe(cfg, seed, cm2_startup_probe("start", spec.startup_count));
    let alpha = ((c_start / f64_from_u64(spec.startup_count) - 1.0 / beta_sun - 1.0 / beta_cm2)
        / 2.0)
        .max(0.0);

    Cm2Predictor {
        comm_to: LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_sun)),
        comm_from: LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_cm2)),
    }
}

/// Runs one probe on an otherwise-quiet platform (production noise floor
/// only); returns elapsed seconds.
fn run_probe(cfg: PlatformConfig, seed: u64, app: hetplat::phase::ScriptedApp) -> f64 {
    let mut p = Platform::new(cfg, seed);
    p.spawn(Box::new(hetload::generators::DaemonNoise::default_noise()));
    let id = p.spawn(Box::new(app));
    // modelcheck-allow: no-panic — a stalled probe is a simulator defect, not a model state
    p.run_until_done(id).expect("probe stalled");
    // modelcheck-allow: no-panic — elapsed is Some for any id run_until_done returned
    p.elapsed(id).expect("probe finished").as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_model::dataset::DataSet;
    use hetplat::config::FrontendParams;

    fn cfg() -> PlatformConfig {
        PlatformConfig { frontend: FrontendParams::processor_sharing(), ..Default::default() }
    }

    fn small_spec() -> Cm2CalibrationSpec {
        Cm2CalibrationSpec { bandwidth_elements: 200_000, startup_count: 5_000 }
    }

    #[test]
    fn recovers_configured_bandwidths() {
        let cfg = cfg();
        let pred = calibrate_cm2(cfg, small_spec(), 1);
        let true_beta_sun = 1.0 / cfg.cm2.xfer_per_word_to.as_secs_f64();
        let true_beta_cm2 = 1.0 / cfg.cm2.xfer_per_word_from.as_secs_f64();
        let beta_sun = pred.comm_to.beta.words_per_sec();
        let beta_cm2 = pred.comm_from.beta.words_per_sec();
        let err_sun = (beta_sun - true_beta_sun).abs() / true_beta_sun;
        let err_cm2 = (beta_cm2 - true_beta_cm2).abs() / true_beta_cm2;
        // The calibration platform carries the production noise floor
        // (~1.5% CPU), so recovered bandwidths sit slightly below the
        // configured ones.
        assert!(err_sun < 0.05, "beta_sun {beta_sun} vs {true_beta_sun}");
        assert!(err_cm2 < 0.05, "beta_cm2 {beta_cm2} vs {true_beta_cm2}");
    }

    #[test]
    fn recovers_average_startup() {
        let cfg = cfg();
        let pred = calibrate_cm2(cfg, small_spec(), 1);
        let true_avg =
            (cfg.cm2.xfer_alpha_to.as_secs_f64() + cfg.cm2.xfer_alpha_from.as_secs_f64()) / 2.0;
        let err = (pred.comm_to.alpha - true_avg).abs() / true_avg;
        assert!(err < 0.08, "alpha {} vs {}", pred.comm_to.alpha, true_avg);
    }

    #[test]
    fn calibrated_model_predicts_dedicated_transfers() {
        let cfg = cfg();
        let pred = calibrate_cm2(cfg, small_spec(), 1).comm_to;
        // Predict a 500×500 matrix transfer and compare against the
        // configured ground truth.
        let sets = [DataSet::matrix_rows(500, 500)];
        let predicted = pred.dcomm(&sets).get();
        let actual = 500.0
            * (cfg.cm2.xfer_alpha_to.as_secs_f64()
                + 500.0 * cfg.cm2.xfer_per_word_to.as_secs_f64());
        // α is the cross-direction average, so allow a few percent.
        assert!(
            (predicted - actual).abs() / actual < 0.15,
            "predicted {predicted} actual {actual}"
        );
    }
}
