//! Structured experiment output.
//!
//! Every experiment produces an [`Experiment`]: named series of
//! `(x, modeled, actual)` rows plus free-form notes. Renderers turn them
//! into aligned text tables (for the console) and markdown (for
//! EXPERIMENTS.md).

use serde::{Deserialize, Serialize};
use simcore::stats::{ape, mape, max_ape};
use std::fmt::Write as _;

/// One measurement: a sweep point with modeled and actual values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Sweep coordinate (matrix size, message words, …).
    pub x: f64,
    /// The contention model's prediction, seconds.
    pub modeled: f64,
    /// The simulated platform's measurement, seconds.
    pub actual: f64,
}

impl Row {
    /// Absolute percentage error of the prediction.
    pub fn ape(&self) -> f64 {
        ape(self.modeled, self.actual)
    }
}

/// A named sweep series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name (e.g. `"p=3"`).
    pub name: String,
    /// Rows in sweep order.
    pub rows: Vec<Row>,
}

impl Series {
    /// Builds a series.
    pub fn new(name: impl Into<String>, rows: Vec<Row>) -> Self {
        Series { name: name.into(), rows }
    }

    /// Mean absolute percentage error across rows.
    pub fn mape(&self) -> f64 {
        mape(self.rows.iter().map(|r| (r.modeled, r.actual)))
    }

    /// Largest absolute percentage error across rows.
    pub fn max_ape(&self) -> f64 {
        max_ape(self.rows.iter().map(|r| (r.modeled, r.actual)))
    }
}

/// A complete table/figure reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Identifier matching the paper ("fig1", "tab1-4", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x column.
    pub x_label: String,
    /// The data series.
    pub series: Vec<Series>,
    /// Free-form notes (errors, crossovers, Gantt charts, …).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Builds an experiment shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
    ) -> Self {
        Experiment {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders an aligned text table: one block per series.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        for s in &self.series {
            let _ = writeln!(out, "-- {}", s.name);
            let _ = writeln!(
                out,
                "   {:>12} {:>14} {:>14} {:>8}",
                self.x_label, "modeled(s)", "actual(s)", "err%"
            );
            for r in &s.rows {
                let _ = writeln!(
                    out,
                    "   {:>12.1} {:>14.6} {:>14.6} {:>8.2}",
                    r.x,
                    r.modeled,
                    r.actual,
                    r.ape()
                );
            }
            if !s.rows.is_empty() {
                let _ = writeln!(out, "   (MAPE {:.2}%  max {:.2}%)", s.mape(), s.max_ape());
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "   note: {n}");
        }
        out
    }

    /// Renders a markdown section for EXPERIMENTS.md.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        for s in &self.series {
            let _ = writeln!(out, "**{}**\n", s.name);
            let _ = writeln!(out, "| {} | modeled (s) | actual (s) | err % |", self.x_label);
            let _ = writeln!(out, "|---|---|---|---|");
            for r in &s.rows {
                let _ = writeln!(
                    out,
                    "| {:.1} | {:.6} | {:.6} | {:.2} |",
                    r.x,
                    r.modeled,
                    r.actual,
                    r.ape()
                );
            }
            if !s.rows.is_empty() {
                let _ = writeln!(out, "\nMAPE {:.2}%, max {:.2}%\n", s.mape(), s.max_ape());
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "> {}\n", n.replace('\n', "\n> "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Experiment {
        let mut e = Experiment::new("figX", "Sample", "M");
        e.push_series(Series::new(
            "p=0",
            vec![
                Row { x: 100.0, modeled: 1.0, actual: 1.1 },
                Row { x: 200.0, modeled: 2.0, actual: 2.0 },
            ],
        ));
        e.note("hello");
        e
    }

    #[test]
    fn row_and_series_errors() {
        let e = sample();
        let s = &e.series[0];
        assert!((s.rows[0].ape() - 9.0909).abs() < 0.01);
        assert!((s.mape() - 4.5454).abs() < 0.01);
        assert!((s.max_ape() - 9.0909).abs() < 0.01);
    }

    #[test]
    fn text_render_contains_everything() {
        let t = sample().render_text();
        assert!(t.contains("figX"));
        assert!(t.contains("p=0"));
        assert!(t.contains("MAPE"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn markdown_render_is_tabular() {
        let m = sample().render_markdown();
        assert!(m.contains("### figX"));
        assert!(m.contains("| M | modeled (s) | actual (s) | err % |"));
        assert!(m.contains("> hello"));
    }

    #[test]
    fn serde_roundtrip() {
        let e = sample();
        let json = serde_json::to_string(&e).unwrap();
        let back: Experiment = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
