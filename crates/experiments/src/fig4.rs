//! Figure 4: bursts of 1000 equal-sized messages to and from the Paragon
//! in dedicated mode, over both communication paths (1-HOP TCP directly to
//! the compute node, 2-HOPS via the service-node NX bridge).
//!
//! *Actual* is the simulated burst; *modeled* is the piecewise-linear fit
//! produced by the calibration sweep — the figure demonstrates that the
//! dedicated cost is piecewise linear in message size and that both paths
//! behave similarly.

use crate::report::{Experiment, Row, Series};
use crate::setup::{pingpong_spec, platform_config, platform_config_two_hops, Scale, SEED};
use calibration::paragon::{fit_piecewise, measure_pingpong};
use contention_model::units::{f64_from_u64, words};
use hetplat::config::PlatformConfig;

/// Runs one path/direction combination into a series.
fn series_for(cfg: PlatformConfig, label: &str, scale: Scale) -> Series {
    let spec = pingpong_spec(scale);
    let points = measure_pingpong(cfg, &spec, label.contains("sun→"), SEED);
    let model = fit_piecewise(&points, spec.burst);
    let rows = points
        .iter()
        .map(|p| Row {
            x: p.words as f64,
            modeled: (f64_from_u64(spec.burst) * model.message_time(words(p.words))).get(),
            actual: p.burst_time,
        })
        .collect();
    Series::new(label, rows)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Experiment {
    let mut e = Experiment::new(
        "fig4",
        "Bursts of 1000 equal-sized messages to and from the Paragon (dedicated)",
        "words",
    );
    e.push_series(series_for(platform_config(), "1-HOP sun→paragon", scale));
    e.push_series(series_for(platform_config(), "1-HOP paragon→sun", scale));
    e.push_series(series_for(platform_config_two_hops(), "2-HOPS sun→paragon", scale));
    e.push_series(series_for(platform_config_two_hops(), "2-HOPS paragon→sun", scale));
    let worst = e.series.iter().map(Series::mape).fold(0.0, f64::max);
    e.note(format!(
        "piecewise fit (threshold search) worst-series MAPE {worst:.2}% — \
         communication cost is piecewise linear in message size"
    ));
    e.note("1-HOP and 2-HOPS behave similarly; the paper reports results for 1-HOP only.");
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_fits_all_combinations_tightly() {
        let e = run(Scale::Quick);
        assert_eq!(e.series.len(), 4);
        for s in &e.series {
            assert!(s.mape() < 10.0, "{}: MAPE {:.2}%", s.name, s.mape());
        }
    }

    #[test]
    fn two_hops_slower_than_one_hop() {
        let e = run(Scale::Quick);
        let one = &e.series[0].rows;
        let two = &e.series[2].rows;
        for (a, b) in one.iter().zip(two) {
            assert!(b.actual >= a.actual, "{} words", a.x);
        }
    }

    #[test]
    fn times_monotone_in_message_size() {
        let e = run(Scale::Quick);
        for s in &e.series {
            for w in s.rows.windows(2) {
                assert!(w[1].actual > w[0].actual, "{}: {:?}", s.name, w);
            }
        }
    }
}
