//! Figures 7 and 8: SOR executing on the Sun in non-dedicated mode, and
//! the sensitivity of the computation slowdown to the `j` parameter.
//!
//! The probe is the SOR solver's front-end execution (`Θ(M²)` work per
//! sweep); two contenders alternate computation with Paragon
//! communication. *Modeled* is `dcomp_sun × (1 + Σ pcompᵢ·i +
//! Σ pcommᵢ·delay_commⁱʲ)` evaluated at each delay-table bucket
//! `j ∈ {1, 500, 1000}`; the paper shows that picking `j` near the
//! contenders' message size is what makes the prediction accurate
//! (Fig. 7: best at `j = 1000`, Fig. 8: best at `j = 500`).

use crate::par::ordered_map;
use crate::report::{Experiment, Row, Series};
use crate::scenarios::run_with_generators;
use crate::setup::{paragon_predictor, platform_config, Scale, SEED};
use contention_model::mix::WorkloadMix;
use contention_model::paragon::comp_slowdown_at_bucket;
use hetload::apps::sun_task_app;
use hetload::costs::MachineRates;
use hetload::generators::{CommGenerator, GenDirection};

/// SOR sweeps per run.
const SWEEPS: u64 = 100;

/// Grid sizes swept.
pub fn sizes(scale: Scale) -> Vec<u64> {
    scale.pick(vec![100, 220], vec![60, 100, 140, 180, 220, 260, 300])
}

/// One contender description: (name, comm fraction, message words).
type Spec = (&'static str, f64, u64);

fn run_sor(id: &str, title: &str, specs: [Spec; 2], scale: Scale) -> Experiment {
    let cfg = platform_config();
    let pred = paragon_predictor(scale);
    let rates = MachineRates::default();
    let mix = WorkloadMix::from_fracs(&[specs[0].1, specs[1].1]);
    let mut e = Experiment::new(id, title, "M");

    // Actual runs (plus the dedicated baseline), one independent
    // simulation pair per grid size — fanned out under `par`.
    let runs = ordered_map(sizes(scale), |m| {
        let demand = rates.sor_sun_demand(m, SWEEPS);
        let gens = specs
            .iter()
            .map(|(name, frac, words)| {
                CommGenerator::new(*name, *frac, *words, GenDirection::Alternate, &cfg)
            })
            .collect();
        let (plat, pid) = run_with_generators(cfg, sun_task_app("sor", demand), gens, SEED ^ m);
        let loaded = plat.elapsed(pid).expect("finished").as_secs_f64();
        let (plat0, pid0) =
            run_with_generators(cfg, sun_task_app("sor", demand), Vec::new(), SEED ^ m);
        let ded = plat0.elapsed(pid0).expect("finished").as_secs_f64();
        (m, loaded, ded)
    });
    let actual: Vec<(u64, f64)> = runs.iter().map(|&(m, loaded, _)| (m, loaded)).collect();
    let dedicated: Vec<(u64, f64)> = runs.iter().map(|&(m, _, ded)| (m, ded)).collect();

    e.push_series(Series::new(
        "dedicated",
        dedicated
            .iter()
            .map(|&(m, t)| Row {
                x: m as f64,
                modeled: rates.sor_sun_demand(m, SWEEPS).as_secs_f64(),
                actual: t,
            })
            .collect(),
    ));

    // Model at each bucket.
    let mut errors = Vec::new();
    for (bucket, j) in pred.comp_delays.buckets.clone().into_iter().enumerate() {
        let slowdown = comp_slowdown_at_bucket(&mix, &pred.comp_delays, bucket);
        let rows: Vec<Row> = actual
            .iter()
            .map(|&(m, t)| Row {
                x: m as f64,
                modeled: rates.sor_sun_demand(m, SWEEPS).as_secs_f64() * slowdown.get(),
                actual: t,
            })
            .collect();
        let s = Series::new(format!("j={j}"), rows);
        errors.push((j, s.mape()));
        e.push_series(s);
    }
    let best =
        errors.iter().min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite")).expect("nonempty");
    e.note(format!(
        "errors by j: {} — best at j={}",
        errors.iter().map(|(j, err)| format!("j={j}: {err:.1}%")).collect::<Vec<_>>().join(", "),
        best.0
    ));
    e.note(
        "the paper's conclusion holds: a j near the contenders' message size is \
         far more accurate than j=1, and an oversized j overpredicts; exactly \
         which bucket wins depends on where the platform's receive path \
         saturates (the paper itself flags the bucket choice as platform-\
         dependent)."
            .to_string(),
    );
    e
}

/// Figure 7: contenders communicate 66% (800-word messages) and 33%
/// (1200-word messages) of the time. Best `j` = 1000 in the paper.
pub fn run_fig7(scale: Scale) -> Experiment {
    run_sor(
        "fig7",
        "SOR on the Sun, contenders 66% @ 800w and 33% @ 1200w",
        [("gen66", 0.66, 800), ("gen33", 0.33, 1200)],
        scale,
    )
}

/// Figure 8: contenders communicate 40% (500-word messages) and 76%
/// (200-word messages) of the time. Best `j` = 500 in the paper.
pub fn run_fig8(scale: Scale) -> Experiment {
    run_sor(
        "fig8",
        "SOR on the Sun, contenders 40% @ 500w and 76% @ 200w",
        [("gen40", 0.40, 500), ("gen76", 0.76, 200)],
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mape_of(e: &Experiment, name: &str) -> f64 {
        e.series.iter().find(|s| s.name == name).expect("series").mape()
    }

    #[test]
    fn fig7_large_j_beats_j_equals_one() {
        let e = run_fig7(Scale::Quick);
        let j1 = mape_of(&e, "j=1");
        let j500 = mape_of(&e, "j=500");
        let j1000 = mape_of(&e, "j=1000");
        // Contenders use 800/1200-word messages: any size-aware bucket
        // must clearly beat j=1 (the paper's central claim about j).
        assert!(
            j1000 < j1 && j500 < j1,
            "j=500 ({j500:.1}%) / j=1000 ({j1000:.1}%) must beat j=1 ({j1:.1}%)"
        );
    }

    #[test]
    fn fig7_best_j_within_band() {
        let e = run_fig7(Scale::Quick);
        let best = e
            .series
            .iter()
            .filter(|s| s.name.starts_with("j="))
            .map(Series::mape)
            .fold(f64::INFINITY, f64::min);
        assert!(best < 20.0, "best-j error {best:.1}% (paper: 4%)");
    }

    #[test]
    fn fig8_mid_j_is_best() {
        let e = run_fig8(Scale::Quick);
        let j500 = mape_of(&e, "j=500");
        let j1 = mape_of(&e, "j=1");
        let j1000 = mape_of(&e, "j=1000");
        // The paper's Figure 8 pattern: j=500 accurate (5%), both the
        // undersized and oversized buckets far off (25% each).
        assert!(j500 < j1, "j=500 ({j500:.1}%) must beat j=1 ({j1:.1}%)");
        assert!(j500 < j1000, "j=500 ({j500:.1}%) must beat j=1000 ({j1000:.1}%)");
        assert!(j500 < 15.0, "j=500 error {j500:.1}% (paper: 5%)");
    }

    #[test]
    fn dedicated_baseline_matches_demand() {
        let e = run_fig7(Scale::Quick);
        let ded = e.series.iter().find(|s| s.name == "dedicated").unwrap();
        // The dedicated run deviates from the analytic demand only by the
        // daemon-noise floor (~1.5% CPU).
        assert!(ded.mape() < 3.0, "{:.3}%", ded.mape());
    }
}
