//! The paper's generality claims (§3.1, §3.2): synthetic benchmarks on
//! the CM2 and randomized contender sets on the Paragon.
//!
//! * §3.1: "synthetic benchmarks which employ a representative subset of
//!   the operations provided by the CM2 … error within 15% for both
//!   communication and computation."
//! * §3.2: "different sets of contention generators … typical average
//!   error of 15%", up to ~30% for communication-intensive contenders.

use crate::report::{Experiment, Row, Series};
use crate::scenarios::{run_with_generators, run_with_hogs};
use crate::setup::{cm2_predictor, paragon_predictor, platform_config, Scale, SEED};
use contention_model::cm2::Cm2TaskCosts;
use contention_model::dataset::DataSet;
use contention_model::mix::WorkloadMix;
use contention_model::units::secs;
use hetload::apps::{burst_app, cm2_matrix_transfer_app, cm2_program_app, sun_task_app};
use hetload::costs::Cm2ProgramParams;
use hetload::synthetic::{build_generators, random_cm2_program, random_generator_specs};
use hetplat::phase::Direction;
use rand::Rng;
use simcore::rng::derive_rng;
use simcore::time::SimDuration;

/// Synthetic CM2 suite: random instruction streams and transfers under
/// random hog counts.
pub fn run_cm2(scale: Scale) -> Experiment {
    let cfg = platform_config();
    let pred = cm2_predictor(scale);
    let params = Cm2ProgramParams::default();
    let instances = scale.pick(4, 12);
    let mut rng = derive_rng(SEED, "synthetic-cm2", 0);

    let mut comp_rows = Vec::new();
    let mut comm_rows = Vec::new();
    for inst in 0..instances {
        let p = rng.gen_range(1..=4u32);
        // Computation: a random program, with didle measured dedicated.
        let steps = rng.gen_range(20..=60);
        let prog = random_cm2_program(&mut rng, steps, 1_000, 200_000, &params);
        let dserial = prog.serial_total(cfg.cm2.instr_dispatch).as_secs_f64();
        let dcomp = prog.parallel_total().as_secs_f64();
        let (plat0, id0) = run_with_hogs(cfg, cm2_program_app("syn", prog.clone()), 0, SEED ^ inst);
        let t_ded = plat0.elapsed(id0).expect("finished").as_secs_f64();
        let didle = (t_ded - dcomp).max(0.0);
        let costs =
            Cm2TaskCosts::new(secs(0.0), secs(dcomp), secs(didle.min(dserial)), secs(dserial));
        let (plat, id) = run_with_hogs(cfg, cm2_program_app("syn", prog), p as usize, SEED ^ inst);
        comp_rows.push(Row {
            x: inst as f64,
            modeled: costs.t_cm2(p).get(),
            actual: plat.elapsed(id).expect("finished").as_secs_f64(),
        });

        // Communication: a random matrix transfer under the same hogs.
        let m = rng.gen_range(100..=600u64);
        let sets = [DataSet::matrix_rows(m, m)];
        let modeled = (pred.comm_cost_to(&sets, p) + pred.comm_cost_from(&sets, p)).get();
        let (plat, id) =
            run_with_hogs(cfg, cm2_matrix_transfer_app("syn", m), p as usize, SEED ^ inst ^ 0xff);
        comm_rows.push(Row {
            x: inst as f64,
            modeled,
            actual: crate::scenarios::transfer_seconds(&plat, id),
        });
    }
    let mut e = Experiment::new(
        "synthetic-cm2",
        "Synthetic CM2 suite: random programs and transfers under random hog counts",
        "instance",
    );
    let comp = Series::new("computation", comp_rows);
    let comm = Series::new("communication", comm_rows);
    e.note(format!(
        "computation MAPE {:.2}%, communication MAPE {:.2}% (paper: within 15%)",
        comp.mape(),
        comm.mape()
    ));
    e.push_series(comp);
    e.push_series(comm);
    e
}

/// Synthetic Paragon suite: random contender sets against communication
/// and computation probes.
pub fn run_paragon(scale: Scale) -> Experiment {
    let cfg = platform_config();
    let pred = paragon_predictor(scale);
    let instances = scale.pick(3, 10);
    let mut rng = derive_rng(SEED, "synthetic-paragon", 0);

    let mut comm_rows = Vec::new();
    let mut comp_rows = Vec::new();
    let mut comp_best_rows = Vec::new();
    for inst in 0..instances {
        let p = rng.gen_range(2..=3usize);
        let specs = random_generator_specs(&mut rng, p);
        let mix = WorkloadMix::from_fracs(&specs.iter().map(|s| s.comm_frac).collect::<Vec<_>>());
        let j = specs.iter().map(|s| s.msg_words).max().unwrap_or(1);

        // Communication probe: a 200-message burst of 200-word messages.
        let sets = [DataSet::burst(200, 200)];
        let modeled = pred.comm_cost_to(&sets, &mix).get();
        let probe = burst_app("probe", 200, 200, Direction::ToParagon);
        let (plat, id) =
            run_with_generators(cfg, probe, build_generators(&specs, &cfg), SEED ^ inst);
        comm_rows.push(Row {
            x: inst as f64,
            modeled,
            actual: plat.phase_time(id, hetplat::phase::PhaseKind::Send).as_secs_f64(),
        });

        // Computation probe: 5 seconds of dedicated CPU demand. Modeled
        // once with the paper's heuristic j (the contenders' maximum
        // message size) and once with the best bucket in hindsight — the
        // paper reports that a "bad" j can push the error to 75%.
        let demand = SimDuration::from_secs(5);
        let modeled_auto = pred.t_sun(secs(demand.as_secs_f64()), &mix, j).get();
        let probe = sun_task_app("probe", demand);
        let (plat, id) =
            run_with_generators(cfg, probe, build_generators(&specs, &cfg), SEED ^ inst ^ 0xaa);
        let actual = plat.elapsed(id).expect("finished").as_secs_f64();
        comp_rows.push(Row { x: inst as f64, modeled: modeled_auto, actual });
        let best = (0..pred.comp_delays.buckets.len())
            .map(|b| {
                demand.as_secs_f64()
                    * contention_model::paragon::comp_slowdown_at_bucket(&mix, &pred.comp_delays, b)
                        .get()
            })
            .min_by(|a, b| {
                simcore::stats::ape(*a, actual)
                    .partial_cmp(&simcore::stats::ape(*b, actual))
                    .expect("finite")
            })
            .expect("at least one bucket");
        comp_best_rows.push(Row { x: inst as f64, modeled: best, actual });
    }
    let mut e = Experiment::new(
        "synthetic-paragon",
        "Random contender sets: communication and computation probes",
        "instance",
    );
    let comm = Series::new("communication", comm_rows);
    let comp = Series::new("computation (heuristic j = max message size)", comp_rows);
    let comp_best = Series::new("computation (best bucket in hindsight)", comp_best_rows);
    e.note(format!(
        "communication MAPE {:.2}% (paper: typical 15%, ≤30% under intensive \
         communication); computation MAPE {:.2}% with the heuristic j and \
         {:.2}% with the best bucket (paper: typical <15%, and \"a 'bad' j can \
         cause the error to be as high as 75%\" — max heuristic-j error here \
         {:.1}%)",
        comm.mape(),
        comp.mape(),
        comp_best.mape(),
        comp.max_ape(),
    ));
    e.push_series(comm);
    e.push_series(comp);
    e.push_series(comp_best);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm2_suite_within_paper_band() {
        let e = run_cm2(Scale::Quick);
        for s in &e.series {
            assert!(s.mape() < 20.0, "{}: MAPE {:.2}%", s.name, s.mape());
        }
    }

    #[test]
    fn paragon_suite_within_stress_band() {
        let e = run_paragon(Scale::Quick);
        let comm = e.series.iter().find(|s| s.name.starts_with("communication")).unwrap();
        assert!(comm.mape() < 35.0, "comm MAPE {:.2}%", comm.mape());
        let best = e.series.iter().find(|s| s.name.contains("best bucket")).unwrap();
        assert!(best.mape() < 25.0, "best-bucket MAPE {:.2}%", best.mape());
        // The heuristic j can be bad — the paper saw up to 75% — but it
        // must not be absurd.
        let auto = e.series.iter().find(|s| s.name.contains("heuristic")).unwrap();
        assert!(auto.max_ape() < 90.0, "heuristic-j max {:.2}%", auto.max_ape());
    }
}
