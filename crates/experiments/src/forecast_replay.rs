//! Trace replay: the loadcast forecasting pipeline against a recorded
//! generator load trace.
//!
//! Timed CPU hogs arrive and depart on a fixed schedule; the simulated
//! platform records when each actually ran. The recorded trace is
//! sampled once per second and fed, one step ahead, through a
//! [`LoadMonitor`] — exactly the path `predictd` drives online — and the
//! experiment reports the forecast error against the simulated ground
//! truth, both as raw load and as the quantized contender count the
//! contention model consumes.
//!
//! Loads are reported shifted by +1 (`p+1` is the machine's slowdown in
//! the paper's model) so the dedicated stretches of the trace don't
//! divide MAPE by zero.

use crate::report::{Experiment, Row, Series};
use crate::setup::{platform_config, SEED};
use contention_model::units::{f64_from_usize, secs};
use hetload::generators::TimedCpuHog;
use hetplat::platform::Platform;
use loadcast::{LoadMonitor, MonitorConfig};
use simcore::time::{SimDuration, SimTime};

/// Hog arrival/departure schedule, seconds: two early long-lived hogs,
/// two more piling on mid-run, and a single straggler after the pack
/// departs. Planned contender count: 0, then 2, then 4, then 1, then 0.
const HOGS: [(f64, f64); 5] = [(2.0, 18.0), (2.0, 18.0), (10.0, 18.0), (10.0, 18.0), (18.0, 30.0)];

/// Trace length and 1 Hz sampling: midpoint samples at 0.5 s, 1.5 s, …
const SAMPLES: usize = 31;

fn at(t: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(t)
}

/// Replays the hog schedule on the simulated platform and samples the
/// recorded trace: `trace[k]` is the number of hogs actually running at
/// `k + 0.5` seconds, taken from each hog's phase records.
fn recorded_trace() -> Vec<usize> {
    let mut plat = Platform::new(platform_config(), SEED ^ 0x10ad);
    let ids: Vec<_> = HOGS
        .iter()
        .enumerate()
        .map(|(i, &(arrive, depart))| {
            plat.spawn_at(Box::new(TimedCpuHog::new(format!("hog{i}"), at(depart))), at(arrive))
        })
        .collect();
    plat.run_until(at(40.0));
    // A hog's active span is the extent of its recorded phases. Departure
    // can overshoot the schedule by a fraction of a second (the final
    // CPU chunk stretches under time-sharing), which is part of the
    // ground truth the forecaster is judged against.
    let spans: Vec<(f64, f64)> = ids
        .iter()
        .map(|&id| {
            let recs = plat.records(id);
            let first = recs.first().expect("hog ran");
            let last = recs.last().expect("hog ran");
            (first.start.as_secs_f64(), last.end.as_secs_f64())
        })
        .collect();
    (0..SAMPLES)
        .map(|k| {
            let t = f64_from_usize(k) + 0.5;
            spans.iter().filter(|&&(s, e)| s <= t && t < e).count()
        })
        .collect()
}

/// Runs the replay: recorded trace in, one-step-ahead forecasts out.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "forecast-replay",
        "Recorded hog trace through the loadcast monitor, one step ahead",
        "time (s)",
    );
    let trace = recorded_trace();
    let mut monitor = LoadMonitor::new(MonitorConfig::default());
    let mut selector_rows = Vec::new();
    let mut contender_rows = Vec::new();
    for (k, &truth) in trace.iter().enumerate() {
        let t = f64_from_usize(k) + 0.5;
        let actual = f64_from_usize(truth);
        // Forecast *before* observing the sample: everything the monitor
        // knows predates t, as it would for a scheduler asking now.
        let fc = monitor.forecast(secs(t));
        if !fc.stale {
            selector_rows.push(Row { x: t, modeled: fc.load + 1.0, actual: actual + 1.0 });
            contender_rows.push(Row {
                x: t,
                modeled: f64_from_usize(fc.p) + 1.0,
                actual: actual + 1.0,
            });
        }
        monitor.report(secs(t), actual, None);
    }
    let selector = Series::new("NWS-selected load forecast (+1)", selector_rows);
    let quantized = Series::new("forecast contender count (+1)", contender_rows);
    let final_fc = monitor.forecast(secs(f64_from_usize(SAMPLES) + 0.5));
    e.note(format!(
        "piecewise-constant trace (0 → 2 → 4 → 1 → 0 contenders): the selector is \
         exact on every steady-state step and pays only at the {} transitions; \
         final winner `{}`",
        4, final_fc.forecaster
    ));
    e.note(
        monitor
            .scores()
            .iter()
            .map(|s| match s.mae {
                Some(mae) => format!("{} MAE {:.3}", s.name, mae),
                None => format!("{} unscored", s.name),
            })
            .collect::<Vec<_>>()
            .join(", "),
    );
    e.push_series(selector);
    e.push_series(quantized);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use loadcast::monitor::contenders;

    #[test]
    fn recorded_trace_follows_the_schedule() {
        let trace = recorded_trace();
        assert_eq!(trace.len(), SAMPLES);
        // Interior midpoints, clear of arrival/departure boundary fuzz.
        assert_eq!(trace[0], 0, "{trace:?}");
        assert_eq!(trace[5], 2, "{trace:?}");
        assert_eq!(trace[14], 4, "{trace:?}");
        assert_eq!(trace[25], 1, "{trace:?}");
        assert_eq!(trace[30], 0, "{trace:?}");
    }

    #[test]
    fn forecasts_track_the_trace() {
        let e = run();
        let selector = &e.series[0];
        assert!(selector.rows.len() >= SAMPLES - 1, "one-step rows: {}", selector.rows.len());
        // Mostly-constant trace: errors only near the 4 transitions.
        assert!(selector.mape() < 25.0, "selector MAPE {:.1}%", selector.mape());
        assert!(e.series[1].mape() < 25.0, "contender MAPE {:.1}%", e.series[1].mape());
        // Steady-state steps are predicted exactly (the bit-exact
        // constant-input property, visible end to end).
        let exact = selector.rows.iter().filter(|r| r.modeled == r.actual).count();
        assert!(exact * 2 > selector.rows.len(), "{exact}/{} exact", selector.rows.len());
    }

    #[test]
    fn every_forecaster_gets_scored() {
        let _ = run();
        let mut monitor = LoadMonitor::new(MonitorConfig::default());
        for (k, &truth) in recorded_trace().iter().enumerate() {
            monitor.report(secs(f64_from_usize(k) + 0.5), f64_from_usize(truth), None);
        }
        for s in monitor.scores() {
            assert!(s.scored >= 29, "{} scored {}", s.name, s.scored);
        }
        // The quantizer agrees with the monitor's own p.
        let fc = monitor.forecast(secs(31.0));
        assert_eq!(fc.p, contenders(fc.load));
    }
}
