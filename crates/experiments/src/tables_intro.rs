//! Tables 1–4: the introductory allocation example.

use crate::report::{Experiment, Row, Series};
use hetsched::eval::evaluate;
use hetsched::example;

/// Reproduces the worked example: dedicated and non-dedicated tables plus
/// the best schedule in each environment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "tab1-4",
        "Intro example: contention flips the best allocation",
        "scenario",
    );
    let wf = example::workflow();
    let (ded, cpu, link) = example::solve_all();

    // Series: per scenario, "modeled" is the predicted best makespan and
    // "actual" the evaluation of that same schedule — identical by
    // construction here (the example is analytic); the interesting output
    // is the chosen assignment, recorded in the notes.
    let rows = |s: &hetsched::eval::Schedule, env: &hetsched::task::Environment, x: f64| Row {
        x,
        modeled: s.makespan,
        actual: evaluate(&wf, &s.assignment, env),
    };
    e.push_series(Series::new(
        "best schedule per scenario",
        vec![
            rows(&ded, &example::env_dedicated(), 1.0),
            rows(&cpu, &example::env_cpu_contention(), 2.0),
            rows(&link, &example::env_cpu_and_link_contention(), 3.0),
        ],
    ));

    let name = |a: &[usize]| -> String {
        a.iter()
            .zip(["A", "B"])
            .map(|(m, t)| format!("{t}→M{}", m + 1))
            .collect::<Vec<_>>()
            .join(", ")
    };
    e.note(format!(
        "Scenario 1 (dedicated, Tables 1–2): {} in {} units",
        name(&ded.assignment),
        ded.makespan
    ));
    e.note(format!(
        "Scenario 2 (M1 CPU ×3, Table 3): {} in {} units",
        name(&cpu.assignment),
        cpu.makespan
    ));
    e.note(format!(
        "Scenario 3 (CPU ×3 and link ×3, Table 4): {} in {} units",
        name(&link.assignment),
        link.makespan
    ));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_numbers() {
        let e = run();
        let rows = &e.series[0].rows;
        assert_eq!(rows[0].modeled, 16.0);
        assert_eq!(rows[1].modeled, 38.0);
        assert_eq!(rows[2].modeled, 48.0);
        assert!(e.notes[0].contains("A→M1, B→M1"));
        assert!(e.notes[1].contains("A→M2, B→M1"));
        assert!(e.notes[2].contains("A→M1, B→M1"));
    }
}
