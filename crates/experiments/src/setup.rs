//! Shared experiment configuration and cached calibration artifacts.
//!
//! Calibration (especially the delay tables) runs many simulations; the
//! artifacts are pure functions of the platform configuration and seed,
//! so they are computed once per process and shared.

use calibration::{DelaySpec, PingPongSpec};
use contention_model::predict::{Cm2Predictor, ParagonPredictor};
use hetplat::config::PlatformConfig;
use std::sync::OnceLock;

/// Root seed for all experiments (scenario seeds derive from it).
pub const SEED: u64 = 19_960_806; // the conference date

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps for unit/integration tests.
    Quick,
    /// Paper-sized sweeps for the `run_experiments` binary and benches.
    Full,
}

impl Scale {
    /// Picks `q` under `Quick` and `f` under `Full`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// The platform every experiment runs on. The front-end uses processor
/// sharing: the long-run behaviour of a priority-decay timesharing
/// scheduler, under which CPU-bound competitors take `1/(p+1)` each and a
/// waking I/O process is dispatched promptly — the behaviour the paper
/// measured on SunOS. The quantum round-robin scheduler remains available
/// as an ablation (`bench/scheduler_ablation`). "Actual" runs also carry
/// a daemon-noise process (see `scenarios`), so measurements deviate from
/// the model the way production systems do.
pub fn platform_config() -> PlatformConfig {
    PlatformConfig {
        frontend: hetplat::config::FrontendParams::processor_sharing(),
        ..Default::default()
    }
}

/// The 2-HOPS variant.
pub fn platform_config_two_hops() -> PlatformConfig {
    let mut c = platform_config();
    c.paragon.path = hetplat::config::CommPath::TwoHops;
    c
}

/// Calibration sizes per scale.
pub fn pingpong_spec(scale: Scale) -> PingPongSpec {
    match scale {
        Scale::Quick => {
            PingPongSpec { sizes: vec![1, 64, 256, 512, 768, 1024, 1536, 2048, 4096], burst: 100 }
        }
        Scale::Full => PingPongSpec::default(),
    }
}

/// Delay-measurement sizes per scale.
pub fn delay_spec(scale: Scale) -> DelaySpec {
    match scale {
        Scale::Quick => DelaySpec {
            p_max: 3,
            probe_burst: 100,
            probe_sizes: vec![64, 256, 1024],
            comp_probe: simcore::time::SimDuration::from_secs(3),
            buckets: vec![1, 500, 1000],
            warmup: simcore::time::SimDuration::from_secs(1),
        },
        Scale::Full => DelaySpec::default(),
    }
}

/// The calibrated Sun/CM2 predictor (cached per scale).
pub fn cm2_predictor(scale: Scale) -> &'static Cm2Predictor {
    static QUICK: OnceLock<Cm2Predictor> = OnceLock::new();
    static FULL: OnceLock<Cm2Predictor> = OnceLock::new();
    let cell = match scale {
        Scale::Quick => &QUICK,
        Scale::Full => &FULL,
    };
    cell.get_or_init(|| {
        let spec = match scale {
            Scale::Quick => calibration::Cm2CalibrationSpec {
                bandwidth_elements: 200_000,
                startup_count: 10_000,
            },
            Scale::Full => calibration::Cm2CalibrationSpec::default(),
        };
        calibration::calibrate_cm2(platform_config(), spec, SEED)
    })
}

/// The calibrated Sun/Paragon predictor (cached per scale). This is the
/// expensive one — it runs the full ping-pong sweep and delay tables.
pub fn paragon_predictor(scale: Scale) -> &'static ParagonPredictor {
    static QUICK: OnceLock<ParagonPredictor> = OnceLock::new();
    static FULL: OnceLock<ParagonPredictor> = OnceLock::new();
    let cell = match scale {
        Scale::Quick => &QUICK,
        Scale::Full => &FULL,
    };
    cell.get_or_init(|| {
        calibration::calibrate_paragon(
            platform_config(),
            &pingpong_spec(scale),
            &delay_spec(scale),
            SEED,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn cm2_predictor_cached_and_sane() {
        let a = cm2_predictor(Scale::Quick);
        let b = cm2_predictor(Scale::Quick);
        assert!(std::ptr::eq(a, b));
        assert!(a.comm_to.beta.words_per_sec() > 0.0);
        assert!(a.comm_from.beta.words_per_sec() > 0.0);
    }
}
