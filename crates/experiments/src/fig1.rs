//! Figure 1: Sun ↔ CM2 matrix transfer, dedicated (p = 0) and
//! non-dedicated (p = 3).
//!
//! The probe moves an `M × M` matrix to the CM2 and back (the data motion
//! of an off-loaded SOR). *Modeled* is the calibrated
//! `dcomm × (p + 1)`; *actual* is the simulated platform with `p`
//! CPU-bound contenders on the round-robin front-end.

use crate::par::ordered_map;
use crate::report::{Experiment, Row, Series};
use crate::scenarios::{run_with_hogs, transfer_seconds};
use crate::setup::{cm2_predictor, platform_config, Scale, SEED};
use contention_model::dataset::DataSet;
use hetload::apps::cm2_matrix_transfer_app;

/// Matrix sizes swept.
pub fn sizes(scale: Scale) -> Vec<u64> {
    scale.pick(vec![100, 300, 500], vec![100, 200, 300, 400, 500, 600, 700, 800])
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Experiment {
    let cfg = platform_config();
    let pred = cm2_predictor(scale);
    let mut e = Experiment::new(
        "fig1",
        "Communication between the Sun and the CM2, dedicated and non-dedicated",
        "M",
    );
    for &p in &[0u32, 3] {
        // Each sweep point simulates an independent platform with its own
        // derived seed — fanned out by `ordered_map` under `par`.
        let rows = ordered_map(sizes(scale), |m| {
            let sets = [DataSet::matrix_rows(m, m)];
            let modeled = (pred.comm_cost_to(&sets, p) + pred.comm_cost_from(&sets, p)).get();
            let (plat, id) =
                run_with_hogs(cfg, cm2_matrix_transfer_app("probe", m), p as usize, SEED ^ m);
            let actual = transfer_seconds(&plat, id);
            Row { x: m as f64, modeled, actual }
        });
        let s = Series::new(format!("p={p}"), rows);
        e.note(format!("p={p}: MAPE {:.2}% (paper: within 11% avg / 15% overall)", s.mape()));
        e.push_series(s);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_actual_within_paper_band() {
        let e = run(Scale::Quick);
        for s in &e.series {
            assert!(
                s.mape() < 15.0,
                "{}: MAPE {:.2}% exceeds the paper's 15% band",
                s.name,
                s.mape()
            );
        }
    }

    #[test]
    fn contention_slows_transfers_roughly_four_times() {
        let e = run(Scale::Quick);
        let ded = &e.series[0].rows;
        let loaded = &e.series[1].rows;
        for (d, l) in ded.iter().zip(loaded) {
            let ratio = l.actual / d.actual;
            assert!((3.2..4.8).contains(&ratio), "M={}: actual slowdown {ratio}", d.x);
        }
    }

    #[test]
    fn transfer_time_grows_quadratically_in_m() {
        let e = run(Scale::Quick);
        let rows = &e.series[0].rows;
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        let m_ratio = last.x / first.x;
        let t_ratio = last.actual / first.actual;
        // Between linear (startup-dominated) and quadratic (bandwidth).
        assert!(t_ratio > m_ratio && t_ratio < m_ratio * m_ratio * 1.2);
    }
}
