//! # experiments — regenerating the paper's evaluation
//!
//! One module per table/figure. Each `run` function returns a structured
//! [`report::Experiment`] with modeled-vs-actual rows and notes; the
//! `run_experiments` binary prints them all and emits the markdown body
//! of EXPERIMENTS.md.
//!
//! | Paper item | Module |
//! |---|---|
//! | Tables 1–4 (intro example) | [`tables_intro`] |
//! | Figure 1 (CM2 transfers, p = 0/3) | [`fig1`] |
//! | Figure 2 (instruction interleaving) | [`fig2`] |
//! | Figure 3 (GE on the CM2, crossover) | [`fig3`] |
//! | Figure 4 (dedicated bursts, 1-HOP/2-HOPS) | [`fig4`] |
//! | Figures 5–6 (non-dedicated bursts) | [`fig56`] |
//! | Figures 7–8 (SOR on the Sun, j-sensitivity) | [`fig78`] |
//! | §3.1/§3.2 synthetic-suite claims | [`synthetic`] |
//! | §1's load-characteristics argument | [`load_chars`] |
//! | §4's time-varying-load future work | [`phased_load`] |
//! | §2's rank-candidate-schedules purpose | [`ranking`] |
//! | online forecasting (loadcast replay) | [`forecast_replay`] |

#![warn(missing_docs)]

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig56;
pub mod fig78;
pub mod forecast_replay;
pub mod load_chars;
pub mod par;
pub mod phased_load;
pub mod ranking;
pub mod report;
pub mod scenarios;
pub mod setup;
pub mod synthetic;
pub mod tables_intro;

use report::Experiment;
use setup::Scale;

/// Runs every experiment at the given scale, in paper order.
///
/// With the `par` feature the experiments themselves fan out across
/// threads (on top of each sweep's own per-point fan-out); the returned
/// order and every number in it are identical to the sequential build.
pub fn run_all(scale: Scale) -> Vec<Experiment> {
    type Job = Box<dyn Fn() -> Experiment + Send + Sync>;
    let jobs: Vec<Job> = vec![
        Box::new(tables_intro::run),
        Box::new(move || fig1::run(scale)),
        Box::new(fig2::run),
        Box::new(move || fig3::run(scale)),
        Box::new(move || fig4::run(scale)),
        Box::new(move || fig56::run_fig5(scale)),
        Box::new(move || fig56::run_fig6(scale)),
        Box::new(move || fig78::run_fig7(scale)),
        Box::new(move || fig78::run_fig8(scale)),
        Box::new(move || synthetic::run_cm2(scale)),
        Box::new(move || synthetic::run_paragon(scale)),
        Box::new(load_chars::run),
        Box::new(phased_load::run),
        Box::new(move || ranking::run(scale)),
        Box::new(forecast_replay::run),
    ];
    par::ordered_map(jobs, |job| job())
}
