//! # experiments — regenerating the paper's evaluation
//!
//! One module per table/figure. Each `run` function returns a structured
//! [`report::Experiment`] with modeled-vs-actual rows and notes; the
//! `run_experiments` binary prints them all and emits the markdown body
//! of EXPERIMENTS.md.
//!
//! | Paper item | Module |
//! |---|---|
//! | Tables 1–4 (intro example) | [`tables_intro`] |
//! | Figure 1 (CM2 transfers, p = 0/3) | [`fig1`] |
//! | Figure 2 (instruction interleaving) | [`fig2`] |
//! | Figure 3 (GE on the CM2, crossover) | [`fig3`] |
//! | Figure 4 (dedicated bursts, 1-HOP/2-HOPS) | [`fig4`] |
//! | Figures 5–6 (non-dedicated bursts) | [`fig56`] |
//! | Figures 7–8 (SOR on the Sun, j-sensitivity) | [`fig78`] |
//! | §3.1/§3.2 synthetic-suite claims | [`synthetic`] |
//! | §1's load-characteristics argument | [`load_chars`] |
//! | §4's time-varying-load future work | [`phased_load`] |
//! | §2's rank-candidate-schedules purpose | [`ranking`] |

#![warn(missing_docs)]

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig56;
pub mod fig78;
pub mod load_chars;
pub mod phased_load;
pub mod ranking;
pub mod report;
pub mod scenarios;
pub mod setup;
pub mod synthetic;
pub mod tables_intro;

use report::Experiment;
use setup::Scale;

/// Runs every experiment at the given scale, in paper order.
pub fn run_all(scale: Scale) -> Vec<Experiment> {
    vec![
        tables_intro::run(),
        fig1::run(scale),
        fig2::run(),
        fig3::run(scale),
        fig4::run(scale),
        fig56::run_fig5(scale),
        fig56::run_fig6(scale),
        fig78::run_fig7(scale),
        fig78::run_fig8(scale),
        synthetic::run_cm2(scale),
        synthetic::run_paragon(scale),
        load_chars::run(),
        phased_load::run(),
        ranking::run(scale),
    ]
}
