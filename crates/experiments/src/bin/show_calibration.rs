//! Prints the calibrated system parameters (the "system test suite"
//! output): dedicated transfer models and delay tables.
//!
//! ```text
//! show_calibration [--full]
//! ```

use experiments::setup::{cm2_predictor, paragon_predictor, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") { Scale::Full } else { Scale::Quick };
    let cm2 = cm2_predictor(scale);
    println!("== Sun/CM2 dedicated transfer models");
    println!(
        "  sun→cm2: alpha = {:.6}s, beta = {:.0} words/s",
        cm2.comm_to.alpha, cm2.comm_to.beta
    );
    println!(
        "  cm2→sun: alpha = {:.6}s, beta = {:.0} words/s",
        cm2.comm_from.alpha, cm2.comm_from.beta
    );

    let p = paragon_predictor(scale);
    println!("== Sun/Paragon dedicated transfer models (piecewise)");
    for (name, m) in [("sun→paragon", &p.comm_to), ("paragon→sun", &p.comm_from)] {
        println!(
            "  {name}: threshold = {} words; small: alpha {:.6}s beta {:.0}; \
             large: alpha {:.6}s beta {:.0}",
            m.threshold, m.small.alpha, m.small.beta, m.large.alpha, m.large.beta
        );
    }
    println!("== delay tables (relative extra time)");
    println!(
        "  delay_comp^i  (i computing contenders → communication): {:?}",
        p.comm_delays.by_computing
    );
    println!(
        "  delay_comm^i  (i communicating contenders → communication): {:?}",
        p.comm_delays.by_communicating
    );
    for (b, row) in p.comp_delays.delays.iter().enumerate() {
        println!("  delay_comm^(i,{:>4}) (→ computation): {row:?}", p.comp_delays.buckets[b]);
    }
}
