//! Runs a single experiment at quick scale and prints its table —
//! convenient while iterating on platform parameters.
//!
//! ```text
//! show_experiment <tab1-4|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|syncm2|synpar> [--full]
//! ```

use experiments::setup::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("fig1");
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Quick };
    let e = match which {
        "tab1-4" => experiments::tables_intro::run(),
        "fig1" => experiments::fig1::run(scale),
        "fig2" => experiments::fig2::run(),
        "fig3" => experiments::fig3::run(scale),
        "fig4" => experiments::fig4::run(scale),
        "fig5" => experiments::fig56::run_fig5(scale),
        "fig6" => experiments::fig56::run_fig6(scale),
        "fig7" => experiments::fig78::run_fig7(scale),
        "fig8" => experiments::fig78::run_fig8(scale),
        "syncm2" => experiments::synthetic::run_cm2(scale),
        "synpar" => experiments::synthetic::run_paragon(scale),
        "loadchars" => experiments::load_chars::run(),
        "phased" => experiments::phased_load::run(),
        "ranking" => experiments::ranking::run(scale),
        "forecast" => experiments::forecast_replay::run(),
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    };
    print!("{}", e.render_text());
}
