//! Ordered fan-out for the figure sweeps.
//!
//! Every sweep point is an independent simulation run with its own
//! platform instance and a seed derived from the point itself, so the
//! points can execute in any order — or concurrently — without changing a
//! single output bit. [`ordered_map`] exploits that: with the `par`
//! feature it fans the points out across threads (via `rayon`),
//! without it it is a plain sequential map. Either way the result vector
//! is in input order, so reports, notes, and MAPE figures are identical
//! between the two builds.

/// Maps `f` over `items`, preserving input order in the output.
///
/// Runs on parallel threads when the crate's `par` feature is enabled,
/// sequentially otherwise. The `Send`/`Sync` bounds are required in both
/// builds so that whatever compiles single-threaded also compiles — and
/// behaves identically — under `--features par`.
pub fn ordered_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Send + Sync,
{
    #[cfg(feature = "par")]
    {
        use rayon::prelude::*;
        items.into_par_iter().map(f).collect()
    }
    #[cfg(not(feature = "par"))]
    {
        items.into_iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = ordered_map((0u64..100).collect(), |i| i * 3);
        let expected: Vec<u64> = (0..100).map(|i| i * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = ordered_map(Vec::<u64>::new(), |i| i);
        assert!(out.is_empty());
    }
}
