//! The payoff claim: model-ranked schedules are performance-efficient.
//!
//! The paper's purpose is allocation: "The adjusted predictions can be
//! used to rank candidate schedules of application tasks to system
//! resources." This experiment closes the loop on the Sun/Paragon
//! platform: a two-task chain (A → B) is placed in all four ways, each
//! placement is *simulated* under a contender mix, and the model's
//! ranking is compared against the simulated ground truth. The headline
//! number is the regret of the model's chosen schedule vs. the true best.

use crate::report::{Experiment, Row, Series};
use crate::scenarios::run_with_generators;
use crate::setup::{paragon_predictor, platform_config, Scale, SEED};
use contention_model::dataset::DataSet;
use contention_model::mix::WorkloadMix;
use contention_model::units::secs;
use hetload::generators::{CommGenerator, GenDirection};
use hetplat::phase::{Direction, Phase, ScriptedApp};
use simcore::time::SimDuration;

/// A two-task chain instance: dedicated costs per machine plus the data
/// shipped between and around the tasks.
#[derive(Debug, Clone, Copy)]
struct Chain {
    /// Dedicated seconds of task A on (sun, paragon).
    a: (f64, f64),
    /// Dedicated seconds of task B on (sun, paragon).
    b: (f64, f64),
    /// Words of A's output consumed by B (shipped if machines differ).
    link_words: u64,
}

/// The four placements of (A, B); 0 = sun, 1 = paragon.
const PLACEMENTS: [(usize, usize); 4] = [(0, 0), (0, 1), (1, 0), (1, 1)];

/// Builds the phase script realizing one placement. Inputs start on the
/// front-end and results must return there.
fn script(chain: &Chain, (ma, mb): (usize, usize)) -> ScriptedApp {
    const MSG_WORDS: u64 = 512;
    let mut phases = Vec::new();
    let burst =
        |words: u64, dir| Phase::Send { count: words.div_ceil(MSG_WORDS), words: MSG_WORDS, dir };
    let recv = |words: u64| Phase::Recv {
        count: words.div_ceil(MSG_WORDS),
        words: MSG_WORDS,
        dir: Direction::FromParagon,
    };
    // Task A (input is on the front-end).
    if ma == 1 {
        phases.push(burst(chain.link_words, Direction::ToParagon));
        phases.push(Phase::BackendCompute(SimDuration::from_secs_f64(chain.a.1)));
    } else {
        phases.push(Phase::Compute(SimDuration::from_secs_f64(chain.a.0)));
    }
    // Ship A's output to B if they sit on different machines.
    if ma != mb {
        if mb == 1 {
            phases.push(burst(chain.link_words, Direction::ToParagon));
        } else {
            phases.push(recv(chain.link_words));
        }
    }
    // Task B.
    if mb == 1 {
        phases.push(Phase::BackendCompute(SimDuration::from_secs_f64(chain.b.1)));
        phases.push(recv(chain.link_words));
    } else {
        phases.push(Phase::Compute(SimDuration::from_secs_f64(chain.b.0)));
    }
    ScriptedApp::new(format!("chain-{ma}{mb}"), phases)
}

/// The model's prediction for one placement under `mix`.
fn predict(
    chain: &Chain,
    (ma, mb): (usize, usize),
    mix: &WorkloadMix,
    j: u64,
    scale: Scale,
) -> f64 {
    const MSG_WORDS: u64 = 512;
    let pred = paragon_predictor(scale);
    let sets = |words: u64| [DataSet::new(words.div_ceil(MSG_WORDS), MSG_WORDS)];
    let mut total = 0.0;
    if ma == 1 {
        total += pred.comm_cost_to(&sets(chain.link_words), mix).get();
        total += chain.a.1;
    } else {
        total += pred.t_sun(secs(chain.a.0), mix, j).get();
    }
    if ma != mb {
        if mb == 1 {
            total += pred.comm_cost_to(&sets(chain.link_words), mix).get();
        } else {
            total += pred.comm_cost_from(&sets(chain.link_words), mix).get();
        }
    }
    if mb == 1 {
        total += chain.b.1;
        total += pred.comm_cost_from(&sets(chain.link_words), mix).get();
    } else {
        total += pred.t_sun(secs(chain.b.0), mix, j).get();
    }
    total
}

/// Chain instances spanning the placement-decision space.
fn chains(scale: Scale) -> Vec<Chain> {
    let all = vec![
        // A compute-heavy pipeline that belongs on the Paragon.
        Chain { a: (20.0, 2.5), b: (30.0, 3.0), link_words: 50_000 },
        // Cheap tasks, heavy data: should stay local under load.
        Chain { a: (3.0, 1.5), b: (4.0, 2.0), link_words: 400_000 },
        // Mixed: A local-friendly, B Paragon-friendly.
        Chain { a: (4.0, 6.0), b: (25.0, 2.0), link_words: 80_000 },
        // Borderline everything.
        Chain { a: (8.0, 4.0), b: (8.0, 4.0), link_words: 150_000 },
    ];
    match scale {
        Scale::Quick => all[..2].to_vec(),
        Scale::Full => all,
    }
}

/// Runs the experiment: for each chain, compare the model-chosen
/// placement's simulated time against the simulated best.
pub fn run(scale: Scale) -> Experiment {
    let cfg = platform_config();
    let mix = WorkloadMix::from_fracs(&[0.4, 0.7]);
    let j = 500;
    let gens = || {
        vec![
            CommGenerator::new("g40", 0.4, 500, GenDirection::Alternate, &cfg),
            CommGenerator::new("g70", 0.7, 500, GenDirection::Alternate, &cfg),
        ]
    };

    let mut e = Experiment::new(
        "ranking",
        "Model-ranked placements vs simulated ground truth (2-task chain, loaded front-end)",
        "instance",
    );
    let mut rows = Vec::new();
    let mut agreements = 0usize;
    let mut total_regret = 0.0f64;
    let mut taus = Vec::new();
    for (i, chain) in chains(scale).iter().enumerate() {
        // Simulate every placement under the mix.
        let actual: Vec<f64> = PLACEMENTS
            .iter()
            .map(|&pl| {
                let (plat, id) =
                    run_with_generators(cfg, script(chain, pl), gens(), SEED ^ (i as u64) << 4);
                plat.elapsed(id).expect("finished").as_secs_f64()
            })
            .collect();
        let modeled: Vec<f64> =
            PLACEMENTS.iter().map(|&pl| predict(chain, pl, &mix, j, scale)).collect();

        let best_actual = actual.iter().cloned().fold(f64::INFINITY, f64::min);
        let chosen = modeled
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        let true_best = actual
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0;
        if chosen == true_best {
            agreements += 1;
        }
        let regret = actual[chosen] / best_actual - 1.0;
        total_regret += regret;
        if let Some(tau) = simcore::stats::kendall_tau(&modeled, &actual) {
            taus.push(tau);
        }
        // Row: modeled = simulated time of the model's choice;
        // actual = the simulated optimum. Their gap is the regret.
        rows.push(Row { x: i as f64, modeled: actual[chosen], actual: best_actual });
    }
    let n = rows.len();
    let s = Series::new("model's pick vs simulated best", rows);
    let mean_tau = taus.iter().sum::<f64>() / taus.len().max(1) as f64;
    e.note(format!(
        "model picked the true best placement in {agreements}/{n} instances; \
         mean regret of its pick {:.1}%; mean Kendall τ between modeled and \
         simulated orderings {mean_tau:.2} (the paper's purpose: slowdown-\
         adjusted predictions make allocations performance-efficient)",
        100.0 * total_regret / n as f64
    ));
    e.push_series(s);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_choices_are_near_optimal() {
        let e = run(Scale::Quick);
        let s = &e.series[0];
        // The chosen placement's simulated time is within 15% of the
        // simulated best on every instance.
        for r in &s.rows {
            let regret = r.modeled / r.actual - 1.0;
            assert!(regret < 0.15, "instance {}: regret {:.1}%", r.x, regret * 100.0);
        }
    }

    #[test]
    fn scripts_cover_all_placements() {
        let chain = Chain { a: (1.0, 1.0), b: (1.0, 1.0), link_words: 1000 };
        for pl in PLACEMENTS {
            let cfg = platform_config();
            let mut plat = hetplat::platform::Platform::new(cfg, 1);
            let id = plat.spawn(Box::new(script(&chain, pl)));
            assert!(plat.run_until_done(id).is_some(), "{pl:?} stalled");
        }
    }
}
