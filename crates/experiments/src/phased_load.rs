//! Time-varying load (paper §4, future work): validating the phased
//! extension against simulation.
//!
//! A long computation runs on the front-end while a batch of CPU hogs
//! arrives partway through and departs later. The base model must pick a
//! single slowdown (either extreme is wrong); the phased extension
//! integrates over the load timeline and tracks the simulation.

use crate::report::{Experiment, Row, Series};
use crate::setup::{platform_config, SEED};
use contention_model::phased::cm2_timeline;
use contention_model::units::{secs, Seconds};
use hetload::apps::sun_task_app;
use hetload::generators::TimedCpuHog;
use hetplat::platform::Platform;
use simcore::time::{SimDuration, SimTime};

/// Hogs present during `[arrive, depart)`, in seconds.
const ARRIVE: f64 = 5.0;
const DEPART: f64 = 20.0;
const HOGS: u32 = 3;

fn simulate(demand_secs: f64, seed: u64) -> f64 {
    let cfg = platform_config();
    let mut plat = Platform::new(cfg, seed);
    for i in 0..HOGS {
        plat.spawn_at(
            Box::new(TimedCpuHog::new(
                format!("hog{i}"),
                SimTime::ZERO + SimDuration::from_secs_f64(DEPART),
            )),
            SimTime::ZERO + SimDuration::from_secs_f64(ARRIVE),
        );
    }
    let id = plat.spawn(Box::new(sun_task_app("probe", SimDuration::from_secs_f64(demand_secs))));
    plat.run_until_done(id).expect("stalled");
    plat.elapsed(id).expect("finished").as_secs_f64()
}

/// Runs the experiment over a range of task demands.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "phased-load",
        "Hogs arrive at t=5s and depart at t=20s: phased model vs constant extremes",
        "demand (s)",
    );
    let timeline =
        cm2_timeline(&[(secs(ARRIVE), 0), (secs(DEPART - ARRIVE), HOGS), (Seconds::INFINITY, 0)]);
    let mut phased = Vec::new();
    let mut constant_loaded = Vec::new();
    let mut constant_dedicated = Vec::new();
    for demand in [2.0f64, 6.0, 10.0, 20.0, 40.0] {
        let actual = simulate(demand, SEED ^ demand as u64);
        phased.push(Row {
            x: demand,
            modeled: timeline.completion_time(secs(demand), Seconds::ZERO).get(),
            actual,
        });
        constant_loaded.push(Row { x: demand, modeled: demand * (HOGS as f64 + 1.0), actual });
        constant_dedicated.push(Row { x: demand, modeled: demand, actual });
    }
    let s_phased = Series::new("phased timeline model", phased);
    let s_loaded = Series::new("constant p=3 (base model, pessimistic)", constant_loaded);
    let s_ded = Series::new("constant p=0 (base model, optimistic)", constant_dedicated);
    e.note(format!(
        "phased MAPE {:.1}% vs constant-loaded {:.1}% and constant-dedicated {:.1}% — \
         recalculating slowdowns when the job mix changes (§4) is what makes \
         medium-length tasks predictable",
        s_phased.mape(),
        s_loaded.mape(),
        s_ded.mape()
    ));
    e.push_series(s_phased);
    e.push_series(s_loaded);
    e.push_series(s_ded);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phased_model_beats_both_constant_extremes() {
        let e = run();
        let phased = e.series[0].mape();
        let loaded = e.series[1].mape();
        let dedicated = e.series[2].mape();
        assert!(phased < 10.0, "phased MAPE {phased:.1}%");
        assert!(phased < loaded, "{phased:.1}% !< loaded {loaded:.1}%");
        assert!(phased < dedicated, "{phased:.1}% !< dedicated {dedicated:.1}%");
    }

    #[test]
    fn short_tasks_finish_before_the_hogs_arrive() {
        let e = run();
        let first = &e.series[0].rows[0]; // demand 2 s < arrival at 5 s
        assert!((first.actual - 2.0).abs() < 0.2, "actual {}", first.actual);
        assert!((first.modeled - 2.0).abs() < 1e-9);
    }
}
