//! Scenario-running helpers shared by the figure experiments.

use hetload::generators::{CommGenerator, CpuHog, DaemonNoise};
use hetplat::config::PlatformConfig;
use hetplat::phase::{AppProcess, PhaseKind, ScriptedApp};
use hetplat::platform::Platform;
use simcore::ids::ProcId;
use simcore::time::{SimDuration, SimTime};

/// Head start given to contenders before the probe begins.
pub const WARMUP: SimDuration = SimDuration::from_secs(2);

/// Runs `probe` against `p` CPU hogs; returns the platform (probe done).
pub fn run_with_hogs(
    cfg: PlatformConfig,
    probe: ScriptedApp,
    p: usize,
    seed: u64,
) -> (Platform, ProcId) {
    let mut plat = Platform::new(cfg, seed);
    plat.spawn(Box::new(DaemonNoise::default_noise()));
    for i in 0..p {
        plat.spawn(Box::new(CpuHog::new(format!("hog{i}"))));
    }
    let start = if p == 0 { SimTime::ZERO } else { SimTime::ZERO + WARMUP };
    let id = plat.spawn_at(Box::new(probe), start);
    plat.run_until_done(id).expect("probe stalled");
    (plat, id)
}

/// Runs `probe` against a set of communication generators.
pub fn run_with_generators(
    cfg: PlatformConfig,
    probe: ScriptedApp,
    generators: Vec<CommGenerator>,
    seed: u64,
) -> (Platform, ProcId) {
    let mut plat = Platform::new(cfg, seed);
    plat.spawn(Box::new(DaemonNoise::default_noise()));
    let dedicated = generators.is_empty();
    for g in generators {
        plat.spawn(Box::new(g) as Box<dyn AppProcess>);
    }
    let start = if dedicated { SimTime::ZERO } else { SimTime::ZERO + WARMUP };
    let id = plat.spawn_at(Box::new(probe), start);
    plat.run_until_done(id).expect("probe stalled");
    (plat, id)
}

/// Sum of a probe's transfer-phase times (Send + Recv), seconds.
pub fn transfer_seconds(plat: &Platform, id: ProcId) -> f64 {
    (plat.phase_time(id, PhaseKind::Send) + plat.phase_time(id, PhaseKind::Recv)).as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetplat::phase::{Direction, Phase};

    #[test]
    fn hog_run_slows_probe() {
        let cfg = PlatformConfig::default();
        let probe = || ScriptedApp::new("probe", vec![Phase::Compute(SimDuration::from_secs(1))]);
        let (p0, id0) = run_with_hogs(cfg, probe(), 0, 1);
        let (p3, id3) = run_with_hogs(cfg, probe(), 3, 1);
        let t0 = p0.elapsed(id0).unwrap().as_secs_f64();
        let t3 = p3.elapsed(id3).unwrap().as_secs_f64();
        assert!((t3 / t0 - 4.0).abs() < 0.1, "ratio {}", t3 / t0);
    }

    #[test]
    fn transfer_seconds_sums_both_directions() {
        let cfg = PlatformConfig::default();
        let probe = ScriptedApp::new(
            "probe",
            vec![
                Phase::Send { count: 10, words: 10, dir: Direction::ToCm2 },
                Phase::Recv { count: 10, words: 10, dir: Direction::FromCm2 },
            ],
        );
        let (p, id) = run_with_hogs(cfg, probe, 0, 1);
        assert!(transfer_seconds(&p, id) > 0.0);
        assert_eq!(p.records(id).len(), 2);
    }
}
