//! Figure 2: the interleaving of serial (front-end) and parallel (CM2)
//! instructions during a CM2 task.
//!
//! Reproduced as a traced execution of a short mixed program rendered as
//! an ASCII Gantt chart: serial instructions occupy the Sun lane, parallel
//! instructions the CM2 lane; the gaps are the mutual idle periods the
//! paper's `didle_cm2`/`dserial_cm2` decomposition captures.

use crate::report::{Experiment, Row, Series};
use crate::setup::platform_config;
use hetplat::config::FrontendParams;
use hetplat::phase::{Cm2Instr, Cm2Program, Phase, ScriptedApp};
use hetplat::platform::Platform;
use simcore::time::SimDuration;

/// The illustrative program: matches the figure's pattern of serial
/// stretches, overlapped parallel work, and a host wait on a reduction.
pub fn program() -> Cm2Program {
    let ms = SimDuration::from_millis;
    Cm2Program::new(vec![
        Cm2Instr::Serial(ms(20)),
        Cm2Instr::Parallel(ms(30)),
        Cm2Instr::Serial(ms(20)),
        Cm2Instr::Parallel(ms(10)),
        Cm2Instr::Serial(ms(20)),
        Cm2Instr::Parallel(ms(40)), // reduction the host waits on
        Cm2Instr::Sync,
        Cm2Instr::Serial(ms(10)),
    ])
}

/// Runs the traced execution and renders the Gantt chart.
pub fn run() -> Experiment {
    let mut cfg = platform_config();
    // A dedicated run with an idealized scheduler keeps the chart exact.
    cfg.frontend = FrontendParams::processor_sharing();
    let mut plat = Platform::new(cfg, 0);
    plat.enable_trace();
    let prog = program();
    let dserial = prog.serial_total(cfg.cm2.instr_dispatch).as_secs_f64();
    let dcomp = prog.parallel_total().as_secs_f64();
    let id = plat.spawn(Box::new(ScriptedApp::new("task", vec![Phase::Cm2Program(prog)])));
    let end = plat.run_until_done(id).expect("program stalled");

    let elapsed = end.as_secs_f64();
    let didle = elapsed - dcomp;
    let mut e = Experiment::new(
        "fig2",
        "Serial/parallel instruction interleaving on the Sun/CM2",
        "quantity",
    );
    // Report the decomposition the model consumes; "modeled" is the
    // elapsed reconstruction dcomp + didle, "actual" the simulated time.
    e.push_series(Series::new(
        "decomposition",
        vec![Row { x: 0.0, modeled: dcomp + didle, actual: elapsed }],
    ));
    e.note(format!(
        "dserial_cm2 = {dserial:.3}s, dcomp_cm2 = {dcomp:.3}s, didle_cm2 = {didle:.3}s \
         (didle ≤ dserial: {})",
        didle <= dserial + 1e-9
    ));
    e.note(format!("gantt:\n{}", plat.tracer().render_gantt(72)));
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_never_exceeds_serial() {
        let e = run();
        assert!(e.notes[0].contains("true"), "{}", e.notes[0]);
    }

    #[test]
    fn gantt_shows_both_lanes() {
        let e = run();
        let gantt = &e.notes[1];
        assert!(gantt.contains("sun:task"), "{gantt}");
        assert!(gantt.contains("cm2:task"), "{gantt}");
        assert!(gantt.contains('s') && gantt.contains('e'));
    }

    #[test]
    fn decomposition_is_exact_identity() {
        // didle is defined as elapsed − dcomp, so the reconstruction is
        // exact; this guards the bookkeeping, not the model.
        let e = run();
        let r = &e.series[0].rows[0];
        assert!((r.modeled - r.actual).abs() < 1e-9);
    }
}
