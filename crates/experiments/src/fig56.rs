//! Figures 5 and 6: bursts of 1000 equal-sized messages between the Sun
//! and the Paragon in non-dedicated mode.
//!
//! Two contending applications run on the front-end, alternating
//! computation with communication: one communicates 25% of the time, the
//! other 76%, both with 200-word messages. *Modeled* is
//! `dcomm × (1 + Σ pcompᵢ·delay_compⁱ + Σ pcommᵢ·delay_commⁱ)`;
//! *actual* is the simulated burst. Figure 5 is Sun→Paragon, Figure 6 the
//! reverse.

use crate::par::ordered_map;
use crate::report::{Experiment, Row, Series};
use crate::scenarios::run_with_generators;
use crate::setup::{paragon_predictor, platform_config, Scale, SEED};
use contention_model::dataset::DataSet;
use contention_model::mix::WorkloadMix;
use hetload::apps::burst_app;
use hetload::generators::{CommGenerator, GenDirection};
use hetplat::phase::{Direction, PhaseKind};

/// The two contenders of the figure: 25% and 76% communication with
/// 200-word messages.
pub fn contenders(cfg: &hetplat::config::PlatformConfig) -> Vec<CommGenerator> {
    vec![
        CommGenerator::new("gen25", 0.25, 200, GenDirection::Alternate, cfg),
        CommGenerator::new("gen76", 0.76, 200, GenDirection::Alternate, cfg),
    ]
}

/// The corresponding workload mix for the model.
pub fn mix() -> WorkloadMix {
    WorkloadMix::from_fracs(&[0.25, 0.76])
}

/// Message sizes swept.
pub fn sizes(scale: Scale) -> Vec<u64> {
    scale.pick(vec![50, 200, 800], vec![25, 50, 100, 200, 400, 800, 1600])
}

/// Messages per burst (paper: 1000).
pub fn burst(scale: Scale) -> u64 {
    scale.pick(200, 1000)
}

fn run_direction(outbound: bool, scale: Scale) -> Experiment {
    let cfg = platform_config();
    let pred = paragon_predictor(scale);
    let m = mix();
    let (id, title, dir, kind) = if outbound {
        (
            "fig5",
            "Bursts Sun→Paragon, non-dedicated (25% & 76% contenders)",
            Direction::ToParagon,
            PhaseKind::Send,
        )
    } else {
        (
            "fig6",
            "Bursts Paragon→Sun, non-dedicated (25% & 76% contenders)",
            Direction::FromParagon,
            PhaseKind::Recv,
        )
    };
    let mut e = Experiment::new(id, title, "words");
    let n = burst(scale);
    // Independent simulation per message size — fanned out under `par`.
    let rows = ordered_map(sizes(scale), |words| {
        let sets = [DataSet::burst(n, words)];
        let modeled =
            if outbound { pred.comm_cost_to(&sets, &m) } else { pred.comm_cost_from(&sets, &m) }
                .get();
        let probe = burst_app("probe", n, words, dir);
        let (plat, pid) = run_with_generators(cfg, probe, contenders(&cfg), SEED ^ words);
        let actual = plat.phase_time(pid, kind).as_secs_f64();
        Row { x: words as f64, modeled, actual }
    });
    let s = Series::new("modeled vs actual", rows);
    e.note(format!("MAPE {:.2}% (paper: within {}%)", s.mape(), if outbound { 12 } else { 14 }));
    e.push_series(s);
    e
}

/// Figure 5: Sun → Paragon.
pub fn run_fig5(scale: Scale) -> Experiment {
    run_direction(true, scale)
}

/// Figure 6: Paragon → Sun.
pub fn run_fig6(scale: Scale) -> Experiment {
    run_direction(false, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_within_band() {
        let e = run_fig5(Scale::Quick);
        let s = &e.series[0];
        // The paper reports 12% average here and up to 30% in stress
        // settings; hold the reproduction to the broader band.
        assert!(s.mape() < 30.0, "MAPE {:.2}%", s.mape());
    }

    #[test]
    fn fig6_within_band() {
        let e = run_fig6(Scale::Quick);
        let s = &e.series[0];
        assert!(s.mape() < 30.0, "MAPE {:.2}%", s.mape());
    }

    #[test]
    fn contention_inflates_over_dedicated_prediction() {
        // The non-dedicated actuals must exceed the dedicated dcomm.
        let scale = Scale::Quick;
        let pred = paragon_predictor(scale);
        let e = run_fig5(scale);
        let n = burst(scale);
        for r in &e.series[0].rows {
            let ded = pred.comm_to.dcomm(&[DataSet::burst(n, r.x as u64)]).get();
            assert!(r.actual > ded, "{} words: {} vs dedicated {}", r.x, r.actual, ded);
        }
    }
}
