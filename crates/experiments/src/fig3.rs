//! Figure 3: Gaussian elimination on the CM2, dedicated vs p = 3.
//!
//! The probe runs the GE instruction stream on the CM2 (data already
//! resident). *Modeled* is `T_cm2 = max(dcomp_cm2 + didle_cm2,
//! dserial_cm2 × (p+1))` with `didle` measured from a dedicated run;
//! *actual* is the simulated platform with 3 CPU hogs. Below a crossover
//! size the slowed serial stream dominates and contention hurts; above it
//! the CM2 pipeline dominates and the curves merge — the paper reports
//! the crossover near `M = 200` on the real machine.

use crate::report::{Experiment, Row, Series};
use crate::scenarios::run_with_hogs;
use crate::setup::{platform_config, Scale, SEED};
use contention_model::cm2::Cm2TaskCosts;
use contention_model::units::secs;
use hetload::apps::cm2_program_app;
use hetload::costs::Cm2ProgramParams;
use hetload::programs::gauss_program;

/// Matrix sizes swept.
pub fn sizes(scale: Scale) -> Vec<u64> {
    scale.pick(vec![50, 150, 250, 400], vec![50, 100, 150, 200, 250, 300, 350, 400, 500])
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Experiment {
    let cfg = platform_config();
    let params = Cm2ProgramParams::default();
    let mut e = Experiment::new("fig3", "Gaussian elimination on the CM2: dedicated vs p = 3", "M");
    let mut ded_rows = Vec::new();
    let mut loaded_rows = Vec::new();
    let mut crossover: Option<u64> = None;
    for &m in &sizes(scale) {
        let prog = gauss_program(m, &params);
        let dserial = prog.serial_total(cfg.cm2.instr_dispatch).as_secs_f64();
        let dcomp = prog.parallel_total().as_secs_f64();

        // Dedicated run: measures elapsed and hence didle.
        let (plat0, id0) = run_with_hogs(cfg, cm2_program_app("ge", prog.clone()), 0, SEED ^ m);
        let t_ded = plat0.elapsed(id0).expect("finished").as_secs_f64();
        let didle = (t_ded - dcomp).max(0.0);
        let costs =
            Cm2TaskCosts::new(secs(0.0), secs(dcomp), secs(didle.min(dserial)), secs(dserial));

        // Non-dedicated run against 3 hogs.
        let (plat3, id3) = run_with_hogs(cfg, cm2_program_app("ge", prog), 3, SEED ^ m);
        let t_loaded = plat3.elapsed(id3).expect("finished").as_secs_f64();

        ded_rows.push(Row { x: m as f64, modeled: costs.t_cm2(0).get(), actual: t_ded });
        loaded_rows.push(Row { x: m as f64, modeled: costs.t_cm2(3).get(), actual: t_loaded });
        if crossover.is_none() && t_loaded <= 1.05 * t_ded {
            crossover = Some(m);
        }
    }
    let s0 = Series::new("p=0 (dedicated)", ded_rows);
    let s3 = Series::new("p=3", loaded_rows);
    e.note(format!("p=3 MAPE {:.2}% (paper: within 15%)", s3.mape()));
    e.note(match crossover {
        Some(m) => format!(
            "contention stops mattering at M ≈ {m} (paper: M ≈ 200 — below it the \
             slowed serial stream dominates, above it the CM2 pipeline does)"
        ),
        None => "no crossover within the sweep".to_string(),
    });
    e.push_series(s0);
    e.push_series(s3);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaded_model_tracks_actual() {
        let e = run(Scale::Quick);
        let s3 = &e.series[1];
        assert!(s3.mape() < 20.0, "MAPE {:.2}%", s3.mape());
    }

    #[test]
    fn small_matrices_hurt_large_ones_do_not() {
        let e = run(Scale::Quick);
        let ded = &e.series[0].rows;
        let loaded = &e.series[1].rows;
        // Smallest size: p=3 must be substantially slower than dedicated.
        let first_ratio = loaded[0].actual / ded[0].actual;
        assert!(first_ratio > 1.5, "M={}: ratio {first_ratio}", ded[0].x);
        // Largest size: the curves are within a few percent.
        let last_ratio = loaded.last().unwrap().actual / ded.last().unwrap().actual;
        assert!(last_ratio < 1.1, "M={}: ratio {last_ratio}", ded.last().unwrap().x);
    }

    #[test]
    fn crossover_reported_near_200() {
        let e = run(Scale::Quick);
        let note = &e.notes[1];
        assert!(note.contains("M ≈"), "{note}");
        // With the quick sweep the crossover lands at the 250 sample
        // (paper: 200 on the real machine; same order).
        assert!(note.contains("250") || note.contains("200") || note.contains("150"), "{note}");
    }
}
