//! Load characteristics (paper §1/§4): CPU-bound vs I/O-bound contenders.
//!
//! The introduction argues that "many allocation strategies do not
//! consider load characteristics in the measurement of workload …
//! both load characteristics (CPU- versus I/O-bound) and contention on
//! the network should be considered." This experiment quantifies the
//! claim on the simulated platform: a compute probe runs against `p`
//! contenders that are either CPU hogs or I/O-bound processes. A naive
//! load-average model predicts `p + 1` either way; the
//! characteristic-aware model is right in both cases.

use crate::report::{Experiment, Row, Series};
use crate::setup::{platform_config, SEED};
use hetload::apps::sun_task_app;
use hetload::generators::{CpuHog, IoHog};
use hetplat::phase::AppProcess;
use hetplat::platform::Platform;
use simcore::time::{SimDuration, SimTime};

fn run_probe(contenders: Vec<Box<dyn AppProcess>>, seed: u64) -> f64 {
    let cfg = platform_config();
    let mut plat = Platform::new(cfg, seed);
    for c in contenders {
        plat.spawn(c);
    }
    let id = plat.spawn_at(
        Box::new(sun_task_app("probe", SimDuration::from_secs(4))),
        SimTime::ZERO + SimDuration::from_secs(1),
    );
    plat.run_until_done(id).expect("stalled");
    plat.elapsed(id).expect("finished").as_secs_f64()
}

/// Runs the experiment over `p = 0..=4`.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "load-characteristics",
        "CPU-bound vs I/O-bound contenders on a compute probe",
        "p",
    );
    let t0 = run_probe(Vec::new(), SEED);

    // CPU hogs: the p+1 model is right.
    let mut cpu_rows = Vec::new();
    // I/O hogs: p+1 badly overpredicts; the probe barely slows.
    let mut io_rows = Vec::new();
    for p in 0..=4usize {
        let hogs: Vec<Box<dyn AppProcess>> = (0..p)
            .map(|i| Box::new(CpuHog::new(format!("hog{i}"))) as Box<dyn AppProcess>)
            .collect();
        let t_cpu = run_probe(hogs, SEED ^ p as u64);
        cpu_rows.push(Row { x: p as f64, modeled: t0 * (p as f64 + 1.0), actual: t_cpu });

        let ios: Vec<Box<dyn AppProcess>> = (0..p)
            .map(|i| Box::new(IoHog::typical(format!("io{i}"))) as Box<dyn AppProcess>)
            .collect();
        let t_io = run_probe(ios, SEED ^ (p as u64) << 8);
        // The naive load-average model still predicts (p+1)× here — the
        // error it makes *is* the result.
        io_rows.push(Row { x: p as f64, modeled: t0 * (p as f64 + 1.0), actual: t_io });
    }
    let cpu = Series::new("CPU-bound contenders (p+1 model)", cpu_rows);
    let io = Series::new("I/O-bound contenders (naive p+1 model)", io_rows);
    e.note(format!(
        "p+1 against CPU hogs: MAPE {:.1}% — the law holds; the same p+1 \
         against I/O-bound load: MAPE {:.1}% — load averages without load \
         characteristics mislead the scheduler (the paper's §1 argument)",
        cpu.mape(),
        io.mape()
    ));
    e.push_series(cpu);
    e.push_series(io);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_plus_one_holds_for_cpu_hogs_only() {
        let e = run();
        let cpu = &e.series[0];
        assert!(cpu.mape() < 5.0, "CPU-bound MAPE {:.1}%", cpu.mape());
        let io = &e.series[1];
        // Against 4 I/O hogs the naive model overpredicts hugely.
        let worst = io.rows.last().unwrap();
        assert!(
            worst.modeled > 2.0 * worst.actual,
            "p=4: naive {:.2} vs actual {:.2}",
            worst.modeled,
            worst.actual
        );
    }

    #[test]
    fn io_contenders_barely_slow_the_probe() {
        let e = run();
        let io = &e.series[1];
        let t0 = io.rows[0].actual;
        let t4 = io.rows.last().unwrap().actual;
        assert!(t4 < 1.35 * t0, "p=4 I/O-bound slowdown {:.2}", t4 / t0);
    }
}
