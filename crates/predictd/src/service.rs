//! The request handler: per-machine load monitors + epoch-keyed profile
//! caches, sharded for concurrency, wrapped around one calibrated
//! [`ParagonPredictor`].
//!
//! Each machine gets a [`LoadMonitor`] (forecasting) and a
//! [`ProfileCache`] keyed by the forecast *shape* `(p, frac)`: as long
//! as consecutive forecasts agree on the contender count and
//! communication fraction, the stored [`WorkloadMix`] — and therefore
//! its epoch — is left untouched, so the cached [`SlowdownProfile`]
//! stays current and predictions skip the profile recompute entirely. A
//! `load_report` that changes the shape swaps in a fresh mix, bumping
//! the epoch and invalidating the cache by the core's own coherence
//! rule.
//!
//! **Sharding & lock discipline.** Machine state is split across N
//! shards, each behind its own [`RwLock`]; a machine routes to a shard
//! by a stable FNV-1a hash of its name, so a machine's monitor, mix,
//! and cache live (and stay coherent) inside exactly one shard for the
//! life of the daemon. Read-mostly traffic — `predict`, `decide_batch`,
//! `rank` against an unchanged forecast shape with a current cached
//! profile — is served entirely under the shard's *read* lock, so
//! queries against different machines (or the same warm machine) never
//! serialize. The *write* lock is taken only when state actually moves:
//! every `load_report`, and the slow resolve path when the shape
//! changed or the cache went stale. Metrics are relaxed atomics (see
//! [`Metrics`]), so `stats` never takes a shard lock beyond a brief
//! read per shard for the machine counts.
//!
//! Stale forecasts (see the staleness policy in `loadcast`) never touch
//! the per-machine cache: they are answered from one precomputed
//! dedicated-machine profile, so a machine flapping between fresh and
//! stale does not thrash its cache.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use contention_model::mix::WorkloadMix;
use contention_model::predict::ParagonPredictor;
use contention_model::profile::{ProfileCache, SlowdownProfile};
use contention_model::units::{Prob, Seconds};
use hetsched::forecast::rank_all_forecast;
use loadcast::{LoadMonitor, MixForecast, MonitorConfig};

use crate::metrics::{Metrics, ReqKind};
use crate::proto::{
    Ack, DecideBatch, Decisions, LoadReport, Predict, Prediction, Rank, Ranked, Request, Response,
    ShardStats,
};

/// Service-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Monitor configuration applied to every newly seen machine.
    pub monitor: MonitorConfig,
    /// Upper bound on `machines^tasks` a `rank` request may ask for;
    /// larger workflows are rejected instead of evaluated.
    pub max_rank_schedules: u64,
    /// Number of machine-state shards (clamped to at least 1). More
    /// shards means less lock contention between machines; results are
    /// bit-identical for any shard count because a machine's state
    /// never leaves its shard.
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { monitor: MonitorConfig::default(), max_rank_schedules: 100_000, shards: 8 }
    }
}

/// Forecasting and caching state for one reported machine.
///
/// `Clone` duplicates everything *except* the report counter, which is
/// shared: a clone is a replica of the same machine, and the shared
/// [`MachineState::version`] is how a core-local replica later proves
/// it has seen every accepted report (see [`Affinity`]).
#[derive(Debug, Clone)]
struct MachineState {
    monitor: LoadMonitor,
    /// The mix the cache is keyed on; replaced only when the forecast
    /// shape changes, so its epoch is stable across same-shape queries.
    mix: WorkloadMix,
    /// Shape of `mix`: `(p, frac.to_bits())`.
    shape: Option<(usize, u64)>,
    cache: ProfileCache,
    /// Count of *accepted* load reports, bumped under the shard write
    /// lock. Shared (not duplicated) across clones.
    version: Arc<AtomicU64>,
}

impl MachineState {
    fn new(cfg: MonitorConfig) -> Self {
        MachineState {
            monitor: LoadMonitor::new(cfg),
            mix: WorkloadMix::new(),
            shape: None,
            cache: ProfileCache::new(),
            version: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Applies one *validated* report the same way on every copy of the
    /// state, keeping the epoch-keyed cache coherent. Deterministic: two
    /// states with equal history fed the same report stay bit-identical.
    /// Returns (accepted, forecast contender count).
    fn apply_report(&mut self, at: Seconds, load: f64, frac: Option<Prob>) -> (bool, usize) {
        let accepted = self.monitor.report(at, load, frac);
        // Keep the epoch-keyed cache coherent with the new forecast
        // shape right away, not lazily at the next predict.
        let mf = self.monitor.mix_forecast(at);
        if !mf.forecast.stale {
            self.sync_mix(&mf);
        }
        (accepted, mf.forecast.p)
    }

    /// Re-keys the stored mix when the forecast shape changed. Keeping
    /// the mix (and its epoch) stable on same-shape forecasts is what
    /// lets the epoch-keyed cache hit.
    fn sync_mix(&mut self, mf: &MixForecast) {
        // modelcheck-allow: float-env — the shape key must distinguish
        // every distinct frac, and bit equality is exactly that.
        let key = (mf.forecast.p, mf.frac.get().to_bits());
        if self.shape != Some(key) {
            self.mix = mf.mix.clone();
            self.shape = Some(key);
        }
    }
}

/// One shard of machine state: the machines that hash here, plus the
/// write tally the `stats` breakdown reports.
#[derive(Debug, Default)]
struct Shard {
    machines: BTreeMap<String, MachineState>,
    load_reports: u64,
}

/// A resolved forecast's pedigree (the profile itself is borrowed).
struct Resolved {
    p: u64,
    stale: bool,
    forecaster: String,
    cache_hit: bool,
}

/// Upper bound on replicas one core keeps, so a fleet of hostile
/// machine names cannot multiply shard state by the core count.
const MAX_REPLICAS: usize = 4096;

/// One core's replica of a machine: a full [`MachineState`] clone plus
/// the shared report counter value it has caught up to.
#[derive(Debug)]
struct Replica {
    state: MachineState,
    /// Value of `state.version` this replica reflects. Equal to the
    /// shared counter ⇔ no other core has accepted a report since.
    seen: u64,
}

/// Core-local shard affinity: replicas of the machines whose reporters
/// this core serves, so warm `predict`/`decide_batch` run with **no
/// lock at all** — not even a read lock.
///
/// The sharded service stays the ground truth: every `load_report` is
/// applied to its shard first (under the write lock, bumping the
/// machine's shared report counter), and only then mirrored into the
/// reporting core's replica. A query is answered locally only when the
/// replica's `seen` equals the shared counter; if another core accepted
/// a report in between, the replica is dropped and the query falls back
/// to the sharded-`RwLock` path (it is rebuilt by the machine's next
/// local report). Forecasts are deterministic, so a caught-up replica
/// answers bit-identically to the shard — only the `cache_hit` metadata
/// may differ, because each core warms its own profile cache.
///
/// One `Affinity` belongs to one event-loop thread and is deliberately
/// not `Sync`-shared; cross-shard requests (`rank`, `stats`) always use
/// the shared path.
#[derive(Debug, Default)]
pub struct Affinity {
    machines: HashMap<String, Replica>,
}

impl Affinity {
    /// An empty affinity map (no replicas yet).
    pub fn new() -> Self {
        Affinity::default()
    }

    /// How many machines this core currently holds replicas of.
    pub fn replicas(&self) -> usize {
        self.machines.len()
    }

    /// Mirrors one just-applied report into this core's replica. Must
    /// be called while the shard write lock on `state` is still held,
    /// so `prev`/the new counter value cannot race another reporter.
    #[allow(clippy::too_many_arguments)]
    fn absorb(
        &mut self,
        machine: &str,
        state: &MachineState,
        prev: u64,
        accepted: bool,
        at: Seconds,
        load: f64,
        frac: Option<Prob>,
    ) {
        let current = state.version.load(Ordering::Acquire);
        match self.machines.get_mut(machine) {
            // Caught up before this report: replay it locally (the
            // deterministic update keeps the replica bit-identical).
            Some(rep) if rep.seen == prev => {
                if accepted {
                    rep.state.apply_report(at, load, frac);
                }
                rep.seen = current;
            }
            // Diverged (another core reported meanwhile) or first
            // sighting: re-clone the ground truth.
            _ => {
                if self.machines.len() < MAX_REPLICAS || self.machines.contains_key(machine) {
                    self.machines.insert(
                        machine.to_string(),
                        Replica { state: state.clone(), seen: current },
                    );
                }
            }
        }
    }
}

/// The contention-prediction service: all daemon state minus transport.
/// Every handler takes `&self`; interior shard locks and atomic metrics
/// make one instance shareable across a worker pool.
#[derive(Debug)]
pub struct Service {
    pred: ParagonPredictor,
    cfg: ServiceConfig,
    shards: Vec<RwLock<Shard>>,
    metrics: Metrics,
    /// Precomputed dedicated-machine profile, the stale fallback.
    dedicated: SlowdownProfile,
    started: Instant,
}

impl Service {
    /// A service around a calibrated predictor.
    pub fn new(pred: ParagonPredictor, cfg: ServiceConfig) -> Self {
        let dedicated = pred.profile(&WorkloadMix::new());
        let shards = (0..cfg.shards.max(1)).map(|_| RwLock::new(Shard::default())).collect();
        Service { pred, cfg, shards, metrics: Metrics::new(), dedicated, started: Instant::now() }
    }

    /// A service around [`crate::default_predictor`].
    pub fn with_default_predictor(cfg: ServiceConfig) -> Self {
        Service::new(crate::default_predictor(), cfg)
    }

    /// Machines that have reported at least once.
    // modelcheck: read-path
    pub fn machine_count(&self) -> usize {
        self.shards.iter().map(|s| read_lock(s).machines.len()).sum()
    }

    /// The shard a machine's state lives in: stable FNV-1a 64 over the
    /// name, reduced mod the shard count.
    fn shard_of(&self, machine: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in machine.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // The shard count is a small usize; the modulus fits it.
        (h % self.shards.len() as u64) as usize
    }

    /// Handles one request; the flag is true when the daemon should stop
    /// (after sending the response).
    pub fn handle(&self, req: &Request) -> (Response, bool) {
        self.handle_with(req, None)
    }

    /// Handles one request with a core-local [`Affinity`]: warm
    /// `predict`/`decide_batch` against a caught-up replica touch no
    /// shard lock; everything else behaves exactly like
    /// [`Service::handle`]. Answers are bit-identical either way (see
    /// [`Affinity`]).
    pub fn handle_local(&self, req: &Request, aff: &mut Affinity) -> (Response, bool) {
        self.handle_with(req, Some(aff))
    }

    fn handle_with(&self, req: &Request, aff: Option<&mut Affinity>) -> (Response, bool) {
        let started = Instant::now();
        self.metrics.count_request(match req {
            Request::LoadReport(_) => ReqKind::LoadReport,
            Request::Predict(_) => ReqKind::Predict,
            Request::DecideBatch(_) => ReqKind::DecideBatch,
            Request::Rank(_) => ReqKind::Rank,
            Request::Stats => ReqKind::Stats,
            Request::Shutdown => ReqKind::Shutdown,
        });
        let (resp, shutdown) = match req {
            Request::LoadReport(r) => (self.on_load_report(r, aff), false),
            Request::Predict(q) => (self.on_predict(q, aff), false),
            Request::DecideBatch(q) => (self.on_decide_batch(q, aff), false),
            Request::Rank(q) => (self.on_rank(q), false),
            // The snapshot includes the stats request itself; its own
            // latency lands in the histogram afterwards.
            Request::Stats => (Response::Stats(self.stats_snapshot()), false),
            Request::Shutdown => (Response::Ok, true),
        };
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.record_latency_us(us);
        (resp, shutdown)
    }

    /// Parses one request line and appends the encoded response line
    /// (with trailing newline) to `out`, reusing the caller's buffer —
    /// the transport hot path. Malformed input yields an `error`
    /// response, never a dropped connection. Returns the shutdown flag.
    pub fn handle_line_into(&self, line: &str, out: &mut String) -> bool {
        self.handle_line_opt(line, out, None)
    }

    /// [`Service::handle_line_into`] with a core-local [`Affinity`] —
    /// the evented server's JSON hot path.
    pub fn handle_line_local(&self, line: &str, out: &mut String, aff: &mut Affinity) -> bool {
        self.handle_line_opt(line, out, Some(aff))
    }

    fn handle_line_opt(&self, line: &str, out: &mut String, aff: Option<&mut Affinity>) -> bool {
        // The specialized codec takes the hot request kinds without a
        // Value tree; anything it declines goes through the generic
        // parser, which owns acceptance and error wording.
        let (resp, shutdown) = match crate::codec::parse_request(line) {
            Some(req) => self.handle_with(&req, aff),
            None => match serde_json::from_str::<Request>(line) {
                Ok(req) => self.handle_with(&req, aff),
                Err(e) => (Response::error(format!("bad request: {e}")), false),
            },
        };
        if !crate::codec::write_response(&resp, out) {
            serde_json::to_string_into(&resp, out);
        }
        out.push('\n');
        shutdown
    }

    /// Decodes one binary frame body (tag + payload, length prefix
    /// already stripped), handles the request, and appends the complete
    /// response frame to `out` — the binary-transport hot path.
    /// Malformed frames yield an `error` response frame, never a
    /// dropped connection. Returns the shutdown flag.
    pub fn handle_frame_into(&self, body: &[u8], out: &mut Vec<u8>) -> bool {
        self.handle_frame_opt(body, out, None)
    }

    /// [`Service::handle_frame_into`] with a core-local [`Affinity`] —
    /// the evented server's binary hot path.
    pub fn handle_frame_local(&self, body: &[u8], out: &mut Vec<u8>, aff: &mut Affinity) -> bool {
        self.handle_frame_opt(body, out, Some(aff))
    }

    fn handle_frame_opt(&self, body: &[u8], out: &mut Vec<u8>, aff: Option<&mut Affinity>) -> bool {
        let (resp, shutdown) = match crate::binproto::decode_request(body) {
            Ok(req) => self.handle_with(&req, aff),
            Err(e) => (Response::error(format!("bad frame: {e}")), false),
        };
        if !crate::binproto::encode_response(&resp, out) {
            // Unreachable for responses this service builds (a length
            // field would have to exceed u32); keep the stream framed
            // with a tiny error rather than dropping the reply.
            let fallback = Response::error("response exceeds binary frame limits");
            let _ = crate::binproto::encode_response(&fallback, out);
        }
        shutdown
    }

    /// Parses one request line and encodes the response line (no
    /// trailing newline). Allocating convenience wrapper around
    /// [`Service::handle_line_into`] for stdio and tests.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let mut out = String::new();
        let shutdown = self.handle_line_into(line, &mut out);
        out.truncate(out.trim_end().len());
        (out, shutdown)
    }

    /// The `stats` snapshot: atomic counters plus a brief read lock per
    /// shard for the machine counts and write tallies.
    // modelcheck: read-path
    fn stats_snapshot(&self) -> crate::proto::StatsReply {
        let mut machines = 0usize;
        let mut shards = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = read_lock(shard);
            machines += guard.machines.len();
            shards.push(ShardStats {
                shard: u64::try_from(i).unwrap_or(u64::MAX),
                machines: u64::try_from(guard.machines.len()).unwrap_or(u64::MAX),
                load_reports: guard.load_reports,
            });
        }
        self.metrics.snapshot(machines, self.started.elapsed().as_secs_f64(), shards)
    }

    fn on_load_report(&self, r: &LoadReport, aff: Option<&mut Affinity>) -> Response {
        let at = match Seconds::try_new(r.at) {
            Some(s) => s,
            None => return Response::error("\"at\" must be finite and non-negative"),
        };
        let frac = if r.comm_frac < 0.0 {
            None
        } else {
            match Prob::try_new(r.comm_frac) {
                Some(p) => Some(p),
                None => {
                    return Response::error(
                        "\"comm_frac\" must be in [0, 1], or negative to leave it unchanged",
                    )
                }
            }
        };
        let cfg = self.cfg.monitor;
        // modelcheck-allow: event-loop — load reports are the rare
        // control-plane write; the shard write lock is core-partitioned
        // and the critical section is a few map updates.
        let mut shard = write_lock(&self.shards[self.shard_of(&r.machine)]);
        shard.load_reports += 1;
        let state =
            shard.machines.entry(r.machine.clone()).or_insert_with(|| MachineState::new(cfg));
        // The shard is the ground truth: apply there first, bump the
        // shared report counter, and only then mirror into this core's
        // replica — all under the write lock, so replicas can trust
        // `seen == counter` to mean "caught up".
        let prev = state.version.load(Ordering::Acquire);
        let (accepted, p) = state.apply_report(at, r.load, frac);
        if accepted {
            state.version.fetch_add(1, Ordering::Release);
        }
        if let Some(aff) = aff {
            aff.absorb(&r.machine, state, prev, accepted, at, r.load, frac);
        }
        Response::Ack(Ack {
            machine: r.machine.clone(),
            accepted,
            p: u64::try_from(p).unwrap_or(u64::MAX),
        })
    }

    /// Resolves machine + time to the profile a prediction should use
    /// and applies `f` to it while the shard lock is held, recording
    /// cache metrics. Unknown machines and stale forecasts get the
    /// precomputed dedicated profile, flagged stale.
    ///
    /// The fast path runs entirely under the shard's *read* lock: a
    /// fresh forecast whose shape matches the stored mix and whose
    /// cached profile is current needs no mutation at all. Only a shape
    /// change or cache miss upgrades to the write lock (dropping the
    /// read lock first; the slow path re-resolves from scratch, so an
    /// interleaved writer is harmless).
    fn with_profile<R>(
        &self,
        machine: &str,
        now: Seconds,
        f: impl FnOnce(&SlowdownProfile, Resolved) -> R,
    ) -> R {
        let shard = &self.shards[self.shard_of(machine)];
        {
            let guard = read_lock(shard);
            let Some(state) = guard.machines.get(machine) else {
                drop(guard);
                self.metrics.cache_hit();
                let meta = Resolved {
                    p: 0,
                    stale: true,
                    forecaster: "dedicated".to_string(),
                    cache_hit: true,
                };
                return f(&self.dedicated, meta);
            };
            let fc = state.monitor.forecast(now);
            if fc.stale {
                self.metrics.cache_hit();
                let meta =
                    Resolved { p: 0, stale: true, forecaster: fc.forecaster, cache_hit: true };
                return f(&self.dedicated, meta);
            }
            // modelcheck-allow: float-env — must mirror `sync_mix`'s
            // bit-exact shape key or cache hits would misfire.
            let key = (fc.p, state.monitor.frac().get().to_bits());
            if state.shape == Some(key) {
                if let Some(profile) = state.cache.peek() {
                    if profile.is_current(&state.mix) {
                        self.metrics.cache_hit();
                        let meta = Resolved {
                            p: u64::try_from(fc.p).unwrap_or(u64::MAX),
                            stale: false,
                            forecaster: fc.forecaster,
                            cache_hit: true,
                        };
                        return f(profile, meta);
                    }
                }
            }
        }
        // Slow path: the shape moved or the cache is cold. Re-resolve
        // under the write lock and fill the cache.
        // modelcheck-allow: event-loop — cold-cache slow path only; the
        // write lock covers one re-resolve + cache fill and the hot path
        // above never takes it.
        let mut guard = write_lock(shard);
        let shard_ref = &mut *guard;
        let Some(state) = shard_ref.machines.get_mut(machine) else {
            self.metrics.cache_hit();
            let meta = Resolved {
                p: 0,
                stale: true,
                forecaster: "dedicated".to_string(),
                cache_hit: true,
            };
            return f(&self.dedicated, meta);
        };
        self.resolve_state(state, now, f)
    }

    /// Resolves one mutable machine state (the shard write path, or a
    /// core-local replica that needs no lock at all) to the profile a
    /// prediction should use, recording cache metrics, and applies `f`.
    fn resolve_state<R>(
        &self,
        state: &mut MachineState,
        now: Seconds,
        f: impl FnOnce(&SlowdownProfile, Resolved) -> R,
    ) -> R {
        let mf = state.monitor.mix_forecast(now);
        if mf.forecast.stale {
            self.metrics.cache_hit();
            let meta =
                Resolved { p: 0, stale: true, forecaster: mf.forecast.forecaster, cache_hit: true };
            return f(&self.dedicated, meta);
        }
        state.sync_mix(&mf);
        let hit = state.cache.peek().is_some_and(|pr| pr.is_current(&state.mix));
        if hit {
            self.metrics.cache_hit();
        } else {
            self.metrics.cache_miss();
        }
        let meta = Resolved {
            p: u64::try_from(mf.forecast.p).unwrap_or(u64::MAX),
            stale: false,
            forecaster: mf.forecast.forecaster,
            cache_hit: hit,
        };
        let profile =
            state.cache.profile_for(&state.mix, &self.pred.comm_delays, &self.pred.comp_delays);
        f(profile, meta)
    }

    /// Attempts the lock-free core-local path: serve from this core's
    /// replica if it exists and has seen every accepted report. A
    /// diverged replica is dropped (rebuilt by the machine's next local
    /// report) and the caller falls back to the sharded path.
    fn local_profile<R>(
        &self,
        aff: &mut Affinity,
        machine: &str,
        now: Seconds,
        f: impl FnOnce(&SlowdownProfile, Resolved) -> R,
    ) -> Option<R> {
        let rep = aff.machines.get_mut(machine)?;
        if rep.seen != rep.state.version.load(Ordering::Acquire) {
            aff.machines.remove(machine);
            return None;
        }
        Some(self.resolve_state(&mut rep.state, now, f))
    }

    fn on_predict(&self, q: &Predict, aff: Option<&mut Affinity>) -> Response {
        let now = match Seconds::try_new(q.now) {
            Some(s) => s,
            None => return Response::error("\"now\" must be finite and non-negative"),
        };
        let build = |profile: &SlowdownProfile, r: Resolved| {
            let decision = self.pred.decide_with(&q.task, profile, q.j_words);
            Response::Prediction(Prediction {
                machine: q.machine.clone(),
                p: r.p,
                stale: r.stale,
                forecaster: r.forecaster,
                cache_hit: r.cache_hit,
                decision,
            })
        };
        if let Some(aff) = aff {
            if let Some(resp) = self.local_profile(aff, &q.machine, now, build) {
                return resp;
            }
        }
        self.with_profile(&q.machine, now, build)
    }

    fn on_decide_batch(&self, q: &DecideBatch, aff: Option<&mut Affinity>) -> Response {
        let now = match Seconds::try_new(q.now) {
            Some(s) => s,
            None => return Response::error("\"now\" must be finite and non-negative"),
        };
        let build = |profile: &SlowdownProfile, r: Resolved| {
            // One profile resolve, one batched fold: the whole batch
            // goes through the batched engine, never per-item dispatch.
            let decisions = self.pred.decide_batch(&q.tasks, profile, q.j_words);
            Response::Decisions(Decisions {
                machine: q.machine.clone(),
                p: r.p,
                stale: r.stale,
                forecaster: r.forecaster,
                cache_hit: r.cache_hit,
                decisions,
            })
        };
        if let Some(aff) = aff {
            if let Some(resp) = self.local_profile(aff, &q.machine, now, build) {
                return resp;
            }
        }
        self.with_profile(&q.machine, now, build)
    }

    fn on_rank(&self, q: &Rank) -> Response {
        let now = match Seconds::try_new(q.now) {
            Some(s) => s,
            None => return Response::error("\"now\" must be finite and non-negative"),
        };
        if let Err(e) = q.workflow.try_validate() {
            return Response::error(format!("invalid workflow: {e}"));
        }
        if q.front_end >= q.workflow.machines() {
            return Response::error(format!(
                "front_end {} out of range for {} machines",
                q.front_end,
                q.workflow.machines()
            ));
        }
        let m = u64::try_from(q.workflow.machines()).unwrap_or(u64::MAX);
        let k = u32::try_from(q.workflow.len()).unwrap_or(u32::MAX);
        let total = match m.checked_pow(k) {
            Some(t) if t <= self.cfg.max_rank_schedules => t,
            _ => {
                return Response::error(format!(
                    "rank space {m}^{k} exceeds the limit of {} schedules",
                    self.cfg.max_rank_schedules
                ))
            }
        };
        self.with_profile(&q.machine, now, |profile, r| {
            let mut schedules = rank_all_forecast(&q.workflow, q.front_end, profile, q.j_words);
            if q.limit > 0 {
                schedules.truncate(q.limit);
            }
            Response::Ranked(Ranked {
                machine: q.machine.clone(),
                p: r.p,
                stale: r.stale,
                total,
                schedules,
            })
        })
    }
}

/// Read-locks a shard, recovering from poisoning: a worker that
/// panicked mid-request must not wedge every later request to the
/// shard, and the state it guards is always internally consistent
/// (single-field updates plus the cache's own epoch check).
fn read_lock(shard: &RwLock<Shard>) -> RwLockReadGuard<'_, Shard> {
    shard.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks a shard, recovering from poisoning (see [`read_lock`]).
fn write_lock(shard: &RwLock<Shard>) -> RwLockWriteGuard<'_, Shard> {
    shard.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_model::dataset::DataSet;
    use contention_model::predict::ParagonTask;
    use contention_model::units::secs;

    fn task() -> ParagonTask {
        ParagonTask {
            dcomp_sun: secs(30.0),
            t_paragon: secs(6.0),
            to_backend: vec![DataSet::burst(10, 2000)],
            from_backend: vec![DataSet::single(1000)],
        }
    }

    fn svc() -> Service {
        Service::with_default_predictor(ServiceConfig::default())
    }

    fn report(machine: &str, at: f64, load: f64) -> Request {
        Request::LoadReport(LoadReport { machine: machine.to_string(), at, load, comm_frac: -1.0 })
    }

    fn predict_at(machine: &str, now: f64) -> Request {
        Request::Predict(Predict { machine: machine.to_string(), now, task: task(), j_words: 500 })
    }

    #[test]
    fn unknown_machine_degrades_to_stale_dedicated() {
        let s = svc();
        let (resp, stop) = s.handle(&predict_at("ghost", 0.0));
        assert!(!stop);
        let Response::Prediction(p) = resp else { panic!("want prediction, got {resp:?}") };
        assert!(p.stale);
        assert_eq!(p.p, 0);
        assert_eq!(p.forecaster, "dedicated");
        let direct = s.pred.decide(&task(), &WorkloadMix::new(), 500);
        assert_eq!(p.decision, direct, "stale answer must be the dedicated decision");
    }

    #[test]
    fn fresh_forecast_matches_direct_decide_and_hits_cache() {
        let s = svc();
        for t in 0..4 {
            let (resp, _) = s.handle(&report("m0", f64::from(t), 3.0));
            let Response::Ack(a) = resp else { panic!("want ack") };
            assert!(a.accepted);
        }
        let (first, _) = s.handle(&predict_at("m0", 3.0));
        let Response::Prediction(p1) = first else { panic!("want prediction") };
        assert!(!p1.stale);
        assert_eq!(p1.p, 3);
        assert!(!p1.cache_hit, "first predict computes the profile");
        let truth = WorkloadMix::from_probs(&[Prob::ZERO; 3]);
        let direct = s.pred.decide(&task(), &truth, 500);
        assert_eq!(p1.decision, direct, "forecast-fed decision must be bit-identical");

        let (second, _) = s.handle(&predict_at("m0", 3.5));
        let Response::Prediction(p2) = second else { panic!("want prediction") };
        assert!(p2.cache_hit, "same shape, same epoch: cache must hit");
        assert_eq!(p2.decision, direct);
    }

    #[test]
    fn staleness_policy_fires_and_recovers() {
        let s = svc();
        s.handle(&report("m0", 0.0, 2.0));
        s.handle(&report("m0", 1.0, 2.0));
        let (resp, _) = s.handle(&predict_at("m0", 500.0));
        let Response::Prediction(p) = resp else { panic!("want prediction") };
        assert!(p.stale, "far-future query must trip the horizon");
        assert_eq!(p.p, 0);
        // A new report brings the machine back.
        s.handle(&report("m0", 500.0, 2.0));
        let (resp, _) = s.handle(&predict_at("m0", 500.5));
        let Response::Prediction(p) = resp else { panic!("want prediction") };
        assert!(!p.stale);
        assert_eq!(p.p, 2);
    }

    #[test]
    fn batch_agrees_with_single_predictions() {
        let s = svc();
        for t in 0..3 {
            s.handle(&report("m0", f64::from(t), 1.0));
        }
        let (single, _) = s.handle(&predict_at("m0", 2.0));
        let Response::Prediction(p) = single else { panic!("want prediction") };
        let (batch, _) = s.handle(&Request::DecideBatch(DecideBatch {
            machine: "m0".to_string(),
            now: 2.0,
            tasks: vec![task(), task()],
            j_words: 500,
        }));
        let Response::Decisions(d) = batch else { panic!("want decisions") };
        assert_eq!(d.decisions.len(), 2);
        assert_eq!(d.decisions[0], p.decision);
        assert_eq!(d.decisions[1], p.decision);
        assert!(d.cache_hit);
    }

    #[test]
    fn rank_guards_and_ranks() {
        let s = svc();
        let wf = hetsched::example::workflow();
        let (resp, _) = s.handle(&Request::Rank(Rank {
            machine: "m0".to_string(),
            now: 0.0,
            workflow: wf.clone(),
            front_end: 0,
            j_words: 500,
            limit: 0,
        }));
        let Response::Ranked(r) = resp else { panic!("want ranked, got {resp:?}") };
        assert!(r.stale, "no reports yet");
        assert_eq!(r.total, 4);
        assert_eq!(r.schedules.len(), 4);
        let direct = hetsched::eval::rank_all(&wf, &hetsched::task::Environment::dedicated(2));
        assert_eq!(r.schedules, direct);

        // front_end out of range is rejected, not a panic.
        let (resp, _) = s.handle(&Request::Rank(Rank {
            machine: "m0".to_string(),
            now: 0.0,
            workflow: wf.clone(),
            front_end: 7,
            j_words: 500,
            limit: 0,
        }));
        assert_eq!(resp.kind(), "error");

        // Oversized rank spaces are rejected.
        let mut tight = s;
        tight.cfg.max_rank_schedules = 3;
        let (resp, _) = tight.handle(&Request::Rank(Rank {
            machine: "m0".to_string(),
            now: 0.0,
            workflow: wf,
            front_end: 0,
            j_words: 500,
            limit: 0,
        }));
        assert_eq!(resp.kind(), "error");
    }

    #[test]
    fn stats_count_requests_and_cache() {
        let s = svc();
        s.handle(&report("m0", 0.0, 1.0));
        s.handle(&report("m0", 1.0, 1.0));
        s.handle(&predict_at("m0", 1.0));
        s.handle(&predict_at("m0", 1.2));
        let (resp, stop) = s.handle(&Request::Stats);
        assert!(!stop);
        let Response::Stats(st) = resp else { panic!("want stats") };
        assert_eq!(st.requests.load_report, 2);
        assert_eq!(st.requests.predict, 2);
        assert_eq!(st.requests.stats, 1);
        assert_eq!(st.machines, 1);
        assert_eq!(st.cache.hits + st.cache.misses, 2);
        assert!(st.cache.hits >= 1, "second predict must hit");
        assert_eq!(st.latency_us.count, 4, "stats' own latency lands after the snapshot");
        assert!(st.uptime_secs >= 0.0);
        assert_eq!(st.shards.len(), ServiceConfig::default().shards);
        let by_shard: u64 = st.shards.iter().map(|sh| sh.machines).sum();
        assert_eq!(by_shard, st.machines, "shard breakdown must sum to the machine count");
        let reports: u64 = st.shards.iter().map(|sh| sh.load_reports).sum();
        assert_eq!(reports, 2);
    }

    #[test]
    fn single_shard_service_works() {
        let s = Service::with_default_predictor(ServiceConfig {
            shards: 1,
            ..ServiceConfig::default()
        });
        for m in ["a", "b", "c"] {
            s.handle(&report(m, 0.0, 2.0));
        }
        assert_eq!(s.machine_count(), 3);
        let (resp, _) = s.handle(&Request::Stats);
        let Response::Stats(st) = resp else { panic!("want stats") };
        assert_eq!(st.shards.len(), 1);
        assert_eq!(st.shards[0].machines, 3);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let s = svc();
        for name in ["m0", "m1", "a-very-long-machine-name", ""] {
            let first = s.shard_of(name);
            assert!(first < ServiceConfig::default().shards);
            assert_eq!(first, s.shard_of(name), "routing must be deterministic");
        }
    }

    #[test]
    fn affinity_replica_answers_bit_identically_without_locks() {
        let shared = svc();
        let local = svc();
        let mut aff = Affinity::new();
        for t in 0..4 {
            shared.handle(&report("m0", f64::from(t), 3.0));
            local.handle_local(&report("m0", f64::from(t), 3.0), &mut aff);
        }
        assert_eq!(aff.replicas(), 1, "reporting core must hold the replica");
        let (want, _) = shared.handle(&predict_at("m0", 3.0));
        let (got, _) = local.handle_local(&predict_at("m0", 3.0), &mut aff);
        let Response::Prediction(want) = want else { panic!("want prediction") };
        let Response::Prediction(got) = got else { panic!("want prediction") };
        assert_eq!(got.decision, want.decision, "replica answer must be bit-identical");
        assert_eq!((got.p, got.stale, &got.forecaster), (want.p, want.stale, &want.forecaster));
        assert_eq!(aff.replicas(), 1, "a caught-up replica survives the query");

        // Batch through the replica matches too.
        let batch = Request::DecideBatch(DecideBatch {
            machine: "m0".to_string(),
            now: 3.5,
            tasks: vec![task(), task()],
            j_words: 500,
        });
        let (want, _) = shared.handle(&batch);
        let (got, _) = local.handle_local(&batch, &mut aff);
        let Response::Decisions(want) = want else { panic!("want decisions") };
        let Response::Decisions(got) = got else { panic!("want decisions") };
        assert_eq!(got.decisions, want.decisions);
    }

    #[test]
    fn diverged_replica_falls_back_to_the_shard_and_stays_correct() {
        let s = svc();
        let mut aff = Affinity::new();
        for t in 0..3 {
            s.handle_local(&report("m0", f64::from(t), 3.0), &mut aff);
        }
        assert_eq!(aff.replicas(), 1);
        // Another core (no affinity) accepts a report: the shared
        // counter moves past what the replica has seen.
        s.handle(&report("m0", 3.0, 9.0));
        let (resp, _) = s.handle_local(&predict_at("m0", 3.2), &mut aff);
        let Response::Prediction(p) = resp else { panic!("want prediction") };
        assert_eq!(p.p, 9, "fallback must see the report the replica missed");
        assert_eq!(aff.replicas(), 0, "diverged replica must be dropped");
        // The machine's next local report rebuilds the replica from the
        // ground truth, including the missed history.
        s.handle_local(&report("m0", 4.0, 9.0), &mut aff);
        assert_eq!(aff.replicas(), 1);
        let (resp, _) = s.handle_local(&predict_at("m0", 4.1), &mut aff);
        let Response::Prediction(p) = resp else { panic!("want prediction") };
        assert_eq!(p.p, 9);
    }

    #[test]
    fn rejected_reports_do_not_desync_replicas() {
        let s = svc();
        let mut aff = Affinity::new();
        s.handle_local(&report("m0", 5.0, 2.0), &mut aff);
        // Time regression: rejected everywhere, version unmoved.
        let (resp, _) = s.handle_local(&report("m0", 4.0, 7.0), &mut aff);
        let Response::Ack(a) = resp else { panic!("want ack") };
        assert!(!a.accepted);
        s.handle_local(&report("m0", 6.0, 2.0), &mut aff);
        let (resp, _) = s.handle_local(&predict_at("m0", 6.1), &mut aff);
        let Response::Prediction(p) = resp else { panic!("want prediction") };
        assert_eq!(p.p, 2);
        assert!(!p.stale);
        assert_eq!(aff.replicas(), 1, "rejected report must not drop the replica");
    }

    #[test]
    fn handle_frame_round_trips_the_binary_codec() {
        let s = svc();
        let mut frame = Vec::new();
        assert!(crate::binproto::encode_request(&report("m0", 0.0, 2.0), &mut frame));
        let mut out = Vec::new();
        assert!(!s.handle_frame_into(&frame[4..], &mut out));
        let resp = crate::binproto::decode_response(&out[4..]).expect("ack frame");
        let Response::Ack(a) = resp else { panic!("want ack, got {resp:?}") };
        assert!(a.accepted);
        assert_eq!(a.machine, "m0");

        // Garbage bodies come back as framed errors, not hangups.
        out.clear();
        assert!(!s.handle_frame_into(&[0x7f, 1, 2, 3], &mut out));
        let resp = crate::binproto::decode_response(&out[4..]).expect("error frame");
        assert_eq!(resp.kind(), "error");

        // Shutdown still flags the caller.
        frame.clear();
        assert!(crate::binproto::encode_request(&Request::Shutdown, &mut frame));
        out.clear();
        assert!(s.handle_frame_into(&frame[4..], &mut out));
    }

    #[test]
    fn shutdown_flags_the_caller() {
        let s = svc();
        let (resp, stop) = s.handle(&Request::Shutdown);
        assert_eq!(resp, Response::Ok);
        assert!(stop);
    }

    #[test]
    fn handle_line_rejects_garbage_gracefully() {
        let s = svc();
        for bad in [
            "not json",
            "{}",
            "{\"kind\":\"predict\"}",
            "{\"kind\":\"nope\"}",
            "{\"kind\":\"load_report\",\"machine\":\"m\",\"at\":\"later\",\"load\":1,\"comm_frac\":-1}",
        ] {
            let (reply, stop) = s.handle_line(bad);
            assert!(!stop);
            assert!(reply.contains("\"kind\":\"error\""), "{bad} -> {reply}");
        }
        // Invalid numeric domains are rejected by the handler, not a panic.
        let (reply, _) = s.handle_line(
            "{\"kind\":\"load_report\",\"machine\":\"m\",\"at\":-3.0,\"load\":1.0,\"comm_frac\":-1.0}",
        );
        assert!(reply.contains("\"kind\":\"error\""));
        let (reply, _) = s.handle_line(
            "{\"kind\":\"load_report\",\"machine\":\"m\",\"at\":0.0,\"load\":1.0,\"comm_frac\":2.0}",
        );
        assert!(reply.contains("\"kind\":\"error\""));
    }

    #[test]
    fn handle_line_into_reuses_the_buffer() {
        let s = svc();
        let mut out = String::new();
        assert!(!s.handle_line_into("{\"kind\":\"stats\"}", &mut out));
        assert!(out.ends_with('\n'));
        let first_len = out.len();
        assert!(!s.handle_line_into("{\"kind\":\"stats\"}", &mut out));
        assert!(out.len() > first_len, "responses append, caller decides when to drain");
        assert_eq!(out.matches('\n').count(), 2);
    }
}
