//! Thin command-line client for predictd, used interactively and by the
//! CI smoke job.
//!
//! ```text
//! predictctl --connect ADDR [--binary] load-report MACHINE AT LOAD [FRAC]
//! predictctl --connect ADDR [--binary] predict MACHINE NOW [DCOMP TPAR MSGS WORDS J]
//! predictctl --connect ADDR [--binary] rank MACHINE NOW [FRONT_END J LIMIT]
//! predictctl --connect ADDR [--binary] stats
//! predictctl --connect ADDR [--binary] shutdown
//! predictctl --connect ADDR [--binary] raw JSON_LINE
//! ```
//!
//! The response is printed to stdout as a JSON line. Exit code 0 for
//! any non-error response, 1 when the daemon answers `error`, 2 for
//! usage or transport problems. `--binary` negotiates the binary codec
//! for the connection and carries the same request as binary frames —
//! the printed reply is the decoded response re-serialized, so a JSON
//! and a binary invocation of the same command print identical lines.
//! `rank` with no workflow argument ranks the paper's worked example
//! (`hetsched::example::workflow`).

use std::process::ExitCode;

use contention_model::dataset::DataSet;
use contention_model::predict::ParagonTask;
use contention_model::units::secs;
use predictd::proto::{DecideBatch, LoadReport, Predict, Rank, Request};
use predictd::Client;

const USAGE: &str = "usage: predictctl --connect ADDR [--binary] \
(load-report M AT LOAD [FRAC] | predict M NOW [DCOMP TPAR MSGS WORDS J] | \
decide-batch M NOW COUNT [DCOMP TPAR MSGS WORDS J] | \
rank M NOW [FRONT_END J LIMIT] | stats | shutdown | raw JSON)";

fn parse_num<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{name}: cannot parse {raw:?}"))
}

fn arg<'a>(args: &'a [String], i: usize, name: &str) -> Result<&'a str, String> {
    args.get(i).map(String::as_str).ok_or(format!("missing {name}\n{USAGE}"))
}

fn opt_num<T: std::str::FromStr>(
    args: &[String],
    i: usize,
    name: &str,
    default: T,
) -> Result<T, String> {
    match args.get(i) {
        Some(raw) => parse_num(raw, name),
        None => Ok(default),
    }
}

/// The demo task predict/decide-batch send when no numbers are given:
/// a placement question with a genuinely contention-dependent answer.
fn demo_task(args: &[String], from: usize) -> Result<ParagonTask, String> {
    let dcomp: f64 = opt_num(args, from, "DCOMP", 30.0)?;
    let tpar: f64 = opt_num(args, from + 1, "TPAR", 6.0)?;
    let msgs: u64 = opt_num(args, from + 2, "MSGS", 10)?;
    let words: u64 = opt_num(args, from + 3, "WORDS", 2000)?;
    Ok(ParagonTask {
        dcomp_sun: secs(dcomp.max(0.0)),
        t_paragon: secs(tpar.max(0.0)),
        to_backend: vec![DataSet::burst(msgs, words)],
        from_backend: vec![DataSet::single(words)],
    })
}

fn build_request(cmd: &str, args: &[String]) -> Result<Request, String> {
    match cmd {
        "load-report" => Ok(Request::LoadReport(LoadReport {
            machine: arg(args, 0, "MACHINE")?.to_string(),
            at: parse_num(arg(args, 1, "AT")?, "AT")?,
            load: parse_num(arg(args, 2, "LOAD")?, "LOAD")?,
            comm_frac: opt_num(args, 3, "FRAC", -1.0)?,
        })),
        "predict" => Ok(Request::Predict(Predict {
            machine: arg(args, 0, "MACHINE")?.to_string(),
            now: parse_num(arg(args, 1, "NOW")?, "NOW")?,
            task: demo_task(args, 2)?,
            j_words: opt_num(args, 6, "J", 500)?,
        })),
        "decide-batch" => {
            let count: usize = parse_num(arg(args, 2, "COUNT")?, "COUNT")?;
            let task = demo_task(args, 3)?;
            Ok(Request::DecideBatch(DecideBatch {
                machine: arg(args, 0, "MACHINE")?.to_string(),
                now: parse_num(arg(args, 1, "NOW")?, "NOW")?,
                tasks: vec![task; count.min(10_000)],
                j_words: opt_num(args, 7, "J", 500)?,
            }))
        }
        "rank" => Ok(Request::Rank(Rank {
            machine: arg(args, 0, "MACHINE")?.to_string(),
            now: parse_num(arg(args, 1, "NOW")?, "NOW")?,
            workflow: hetsched::example::workflow(),
            front_end: opt_num(args, 2, "FRONT_END", 0)?,
            j_words: opt_num(args, 3, "J", 500)?,
            limit: opt_num(args, 4, "LIMIT", 10)?,
        })),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn run() -> Result<bool, String> {
    let all: Vec<String> = std::env::args().skip(1).collect();
    let (addr, rest) = match all.split_first() {
        Some((flag, rest)) if flag == "--connect" => match rest.split_first() {
            Some((addr, rest)) => (addr.clone(), rest),
            None => return Err(format!("--connect needs an address\n{USAGE}")),
        },
        _ => return Err(USAGE.to_string()),
    };
    let (binary, rest) = match rest.split_first() {
        Some((flag, rest)) if flag == "--binary" => (true, rest),
        _ => (false, rest),
    };
    let (cmd, args) = rest.split_first().ok_or(format!("missing command\n{USAGE}"))?;
    let reply = if binary {
        let mut client =
            Client::connect_binary(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let req = if cmd == "raw" {
            serde_json::from_str(arg(args, 0, "JSON")?).map_err(|e| e.to_string())?
        } else {
            build_request(cmd, args)?
        };
        let resp = client.request(&req).map_err(|e| e.to_string())?;
        serde_json::to_string(&resp).map_err(|e| e.to_string())?
    } else {
        let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        if cmd == "raw" {
            let line = arg(args, 0, "JSON")?;
            client.request_raw(line).map_err(|e| e.to_string())?
        } else {
            let req = build_request(cmd, args)?;
            let line = serde_json::to_string(&req).map_err(|e| e.to_string())?;
            client.request_raw(&line).map_err(|e| e.to_string())?
        }
    };
    println!("{reply}");
    Ok(reply.starts_with("{\"kind\":\"error\""))
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("predictctl: {msg}");
            ExitCode::from(2)
        }
    }
}
