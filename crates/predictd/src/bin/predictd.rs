//! The daemon binary: bind, announce, serve until `shutdown`.
//!
//! ```text
//! predictd [--listen ADDR] [--port-file PATH] [--stdio]
//!          [--engine pool|evented] [--workers N] [--shards N]
//!          [--read-timeout-secs S] [--max-line-bytes N] [--max-frame-bytes N]
//!          [--window N] [--horizon-secs S] [--frac F] [--max-rank N]
//! ```
//!
//! With `--listen` (default `127.0.0.1:0`) the bound address is printed
//! to stdout (and to `--port-file` when given) so callers can find an
//! OS-assigned port. With `--stdio` the daemon speaks the protocol on
//! stdin/stdout instead — handy for debugging and piping.
//!
//! `--engine pool` (the default) serves blocking connections from a
//! fixed worker pool; `--engine evented` runs one nonblocking epoll
//! event loop per worker over `SO_REUSEPORT` listeners, each with a
//! per-core replica of the machine state (see `server_evented`). Both
//! engines speak newline-JSON and the length-prefixed binary codec,
//! sniffed per connection from the first byte.
//!
//! `--workers` sizes the connection worker pool or event-loop count
//! (default: available parallelism, clamped to 8); `--shards` sizes the
//! machine-state shard count (default 8). `--workers 1` reproduces the
//! fully serialized single-threaded behavior. `--max-frame-bytes` caps
//! a single binary frame (default 1 MiB), as `--max-line-bytes` caps a
//! JSON line.

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use contention_model::units::{Prob, Seconds};
use predictd::{serve_pool, serve_stdio, EventedServer, ServerConfig, Service, ServiceConfig};

/// Which connection-serving engine to run.
enum Engine {
    /// Blocking I/O, fixed worker pool (the default).
    Pool,
    /// Nonblocking epoll event loops, one per worker, `SO_REUSEPORT`.
    Evented,
}

struct Args {
    listen: String,
    port_file: Option<String>,
    stdio: bool,
    engine: Engine,
    cfg: ServiceConfig,
    server: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        port_file: None,
        stdio: false,
        engine: Engine::Pool,
        cfg: ServiceConfig::default(),
        server: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--stdio" => args.stdio = true,
            "--engine" => {
                args.engine = match value("--engine")?.as_str() {
                    "pool" => Engine::Pool,
                    "evented" => Engine::Evented,
                    other => {
                        return Err(format!("--engine must be pool or evented, got {other:?}"))
                    }
                }
            }
            "--workers" => {
                args.server.workers = parse_num(&value("--workers")?, "--workers")?;
                if args.server.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--shards" => {
                args.cfg.shards = parse_num(&value("--shards")?, "--shards")?;
                if args.cfg.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--read-timeout-secs" => {
                let raw: f64 = parse_num(&value("--read-timeout-secs")?, "--read-timeout-secs")?;
                if !raw.is_finite() || raw < 0.0 {
                    return Err("--read-timeout-secs must be finite and non-negative".to_string());
                }
                let timeout = if raw == 0.0 { None } else { Some(Duration::from_secs_f64(raw)) };
                args.server.read_timeout = timeout;
                args.server.write_timeout = timeout;
            }
            "--max-line-bytes" => {
                args.server.max_line_bytes =
                    parse_num(&value("--max-line-bytes")?, "--max-line-bytes")?;
                if args.server.max_line_bytes < 64 {
                    return Err("--max-line-bytes must be at least 64".to_string());
                }
            }
            "--max-frame-bytes" => {
                args.server.max_frame_bytes =
                    parse_num(&value("--max-frame-bytes")?, "--max-frame-bytes")?;
                if args.server.max_frame_bytes < 64 {
                    return Err("--max-frame-bytes must be at least 64".to_string());
                }
            }
            "--window" => {
                args.cfg.monitor.window = parse_num(&value("--window")?, "--window")?;
                if args.cfg.monitor.window == 0 {
                    return Err("--window must be at least 1".to_string());
                }
            }
            "--horizon-secs" => {
                let raw: f64 = parse_num(&value("--horizon-secs")?, "--horizon-secs")?;
                args.cfg.monitor.horizon = Seconds::try_new(raw)
                    .ok_or("--horizon-secs must be finite and non-negative".to_string())?;
            }
            "--frac" => {
                let raw: f64 = parse_num(&value("--frac")?, "--frac")?;
                args.cfg.monitor.default_frac =
                    Prob::try_new(raw).ok_or("--frac must be in [0, 1]".to_string())?;
            }
            "--max-rank" => {
                args.cfg.max_rank_schedules = parse_num(&value("--max-rank")?, "--max-rank")?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{name}: cannot parse {raw:?}"))
}

const USAGE: &str = "usage: predictd [--listen ADDR] [--port-file PATH] [--stdio] \
[--engine pool|evented] [--workers N] [--shards N] [--read-timeout-secs S] \
[--max-line-bytes N] [--max-frame-bytes N] \
[--window N] [--horizon-secs S] [--frac F] [--max-rank N]";

fn announce(args: &Args, bound: std::net::SocketAddr, engine: &str) -> Result<(), String> {
    println!(
        "listening on {bound} ({engine} engine, {} workers, {} shards)",
        args.server.workers, args.cfg.shards
    );
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{bound}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let service = Service::with_default_predictor(args.cfg);
    if args.stdio {
        return serve_stdio(&service).map_err(|e| format!("stdio transport failed: {e}"));
    }
    match args.engine {
        Engine::Pool => {
            let listener = TcpListener::bind(&args.listen)
                .map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
            let bound =
                listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
            announce(&args, bound, "pool")?;
            serve_pool(&listener, &service, &args.server).map_err(|e| format!("serve failed: {e}"))
        }
        Engine::Evented => {
            use std::net::ToSocketAddrs;
            let addr = args
                .listen
                .to_socket_addrs()
                .map_err(|e| format!("cannot resolve {}: {e}", args.listen))?
                .find(|a| a.is_ipv4())
                .ok_or_else(|| format!("{}: no IPv4 address (evented needs one)", args.listen))?;
            let server = EventedServer::bind(addr, args.server.workers)
                .map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
            announce(&args, server.local_addr(), "evented")?;
            server.run(&service, &args.server).map_err(|e| format!("serve failed: {e}"))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("predictd: {msg}");
            ExitCode::from(2)
        }
    }
}
