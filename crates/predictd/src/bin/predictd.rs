//! The daemon binary: bind, announce, serve until `shutdown`.
//!
//! ```text
//! predictd [--listen ADDR] [--port-file PATH] [--stdio]
//!          [--window N] [--horizon-secs S] [--frac F] [--max-rank N]
//! ```
//!
//! With `--listen` (default `127.0.0.1:0`) the bound address is printed
//! to stdout (and to `--port-file` when given) so callers can find an
//! OS-assigned port. With `--stdio` the daemon speaks the protocol on
//! stdin/stdout instead — handy for debugging and piping.

use std::net::TcpListener;
use std::process::ExitCode;

use contention_model::units::{Prob, Seconds};
use predictd::{serve, serve_stdio, Service, ServiceConfig};

struct Args {
    listen: String,
    port_file: Option<String>,
    stdio: bool,
    cfg: ServiceConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        port_file: None,
        stdio: false,
        cfg: ServiceConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--stdio" => args.stdio = true,
            "--window" => {
                args.cfg.monitor.window = parse_num(&value("--window")?, "--window")?;
                if args.cfg.monitor.window == 0 {
                    return Err("--window must be at least 1".to_string());
                }
            }
            "--horizon-secs" => {
                let raw: f64 = parse_num(&value("--horizon-secs")?, "--horizon-secs")?;
                args.cfg.monitor.horizon = Seconds::try_new(raw)
                    .ok_or("--horizon-secs must be finite and non-negative".to_string())?;
            }
            "--frac" => {
                let raw: f64 = parse_num(&value("--frac")?, "--frac")?;
                args.cfg.monitor.default_frac =
                    Prob::try_new(raw).ok_or("--frac must be in [0, 1]".to_string())?;
            }
            "--max-rank" => {
                args.cfg.max_rank_schedules = parse_num(&value("--max-rank")?, "--max-rank")?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{name}: cannot parse {raw:?}"))
}

const USAGE: &str = "usage: predictd [--listen ADDR] [--port-file PATH] [--stdio] \
[--window N] [--horizon-secs S] [--frac F] [--max-rank N]";

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut service = Service::with_default_predictor(args.cfg);
    if args.stdio {
        return serve_stdio(&mut service).map_err(|e| format!("stdio transport failed: {e}"));
    }
    let listener =
        TcpListener::bind(&args.listen).map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
    let bound = listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    println!("listening on {bound}");
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{bound}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    serve(&listener, &mut service).map_err(|e| format!("serve failed: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("predictd: {msg}");
            ExitCode::from(2)
        }
    }
}
