//! Per-request service metrics: kind counts, profile-cache hit rate,
//! and a fixed-bucket latency histogram.
//!
//! The histogram uses 24 power-of-two microsecond buckets (bucket `i`
//! holds latencies in `(2^(i-1), 2^i]` µs, bucket 0 holds `≤ 1` µs), so
//! recording is O(1), allocation-free, and quantiles are upper bounds —
//! exactly what a long-running daemon wants from its own bookkeeping.

use crate::proto::{CacheStats, LatencySummary, RequestCounts, StatsReply};
use contention_model::units::f64_from_u64;

/// Number of histogram buckets (covers up to ~2.3 hours in µs).
const BUCKETS: usize = 24;

/// The request kinds the daemon serves, for per-kind counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// `load_report`.
    LoadReport,
    /// `predict`.
    Predict,
    /// `decide_batch`.
    DecideBatch,
    /// `rank`.
    Rank,
    /// `stats`.
    Stats,
    /// `shutdown`.
    Shutdown,
}

impl ReqKind {
    fn index(self) -> usize {
        match self {
            ReqKind::LoadReport => 0,
            ReqKind::Predict => 1,
            ReqKind::DecideBatch => 2,
            ReqKind::Rank => 3,
            ReqKind::Stats => 4,
            ReqKind::Shutdown => 5,
        }
    }
}

/// Fixed-bucket power-of-two latency histogram, microseconds.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max_us: u64,
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency observation.
    pub fn record(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation, µs (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Bucket index for a latency: bucket 0 is `≤ 1` µs, bucket `i`
    /// covers `(2^(i-1), 2^i]` µs; the last bucket absorbs the tail.
    fn bucket_of(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        // ceil(log2(us)) via leading_zeros on us-1; u32 → usize is lossless.
        let ceil_log2 = u64::BITS - (us - 1).leading_zeros();
        (ceil_log2 as usize).min(BUCKETS - 1)
    }

    /// Upper bound of a bucket, µs.
    fn bucket_upper(idx: usize) -> u64 {
        1u64 << idx.min(63)
    }

    /// Upper bound on the `q`-quantile latency (`q` in `[0, 1]`), µs.
    /// Returns 0 when no observations were recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = q.clamp(0.0, 1.0) * f64_from_u64(self.count);
        let mut cumulative = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if f64_from_u64(cumulative) >= target {
                // Never report past the true maximum.
                return Self::bucket_upper(idx).min(self.max_us);
            }
        }
        self.max_us
    }
}

/// All service metrics, mutated on every request.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counts: [u64; 6],
    cache_hits: u64,
    cache_misses: u64,
    hist: LatencyHistogram,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one request of `kind`.
    pub fn count_request(&mut self, kind: ReqKind) {
        self.counts[kind.index()] += 1;
    }

    /// Records one request latency.
    pub fn record_latency_us(&mut self, us: u64) {
        self.hist.record(us);
    }

    /// Counts a profile served from cache.
    pub fn cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Counts a profile recompute.
    pub fn cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    /// Snapshot for the `stats` response.
    pub fn snapshot(&self, machines: usize) -> StatsReply {
        let looked_up = self.cache_hits + self.cache_misses;
        let hit_rate = if looked_up == 0 {
            0.0
        } else {
            f64_from_u64(self.cache_hits) / f64_from_u64(looked_up)
        };
        StatsReply {
            requests: RequestCounts {
                load_report: self.counts[0],
                predict: self.counts[1],
                decide_batch: self.counts[2],
                rank: self.counts[3],
                stats: self.counts[4],
                shutdown: self.counts[5],
            },
            cache: CacheStats { hits: self.cache_hits, misses: self.cache_misses, hit_rate },
            latency_us: LatencySummary {
                count: self.hist.count(),
                p50_us: self.hist.quantile_us(0.50),
                p99_us: self.hist.quantile_us(0.99),
                max_us: self.hist.max_us(),
            },
            machines: u64::try_from(machines).unwrap_or(u64::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(5), 3);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(1025), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 900] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile_us(0.5), 1);
        // p99 lands in the 900 observation's bucket (512, 1024] but is
        // clamped to the observed maximum.
        assert_eq!(h.quantile_us(0.99), 900);
        assert_eq!(h.max_us(), 900);
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), 0);
    }

    #[test]
    fn snapshot_reports_rates() {
        let mut m = Metrics::new();
        m.count_request(ReqKind::Predict);
        m.count_request(ReqKind::Predict);
        m.count_request(ReqKind::Stats);
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.record_latency_us(10);
        let s = m.snapshot(3);
        assert_eq!(s.requests.predict, 2);
        assert_eq!(s.requests.stats, 1);
        assert_eq!(s.requests.total(), 3);
        assert_eq!(s.cache.hits, 2);
        assert!((s.cache.hit_rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.latency_us.count, 1);
        assert_eq!(s.machines, 3);
    }

    #[test]
    fn empty_metrics_have_zero_rate() {
        let s = Metrics::new().snapshot(0);
        assert_eq!(s.cache.hit_rate, 0.0);
        assert_eq!(s.latency_us.p99_us, 0);
        assert_eq!(s.requests.total(), 0);
    }
}
