//! Per-request service metrics: kind counts, profile-cache hit rate,
//! and a fixed-bucket latency histogram — all lock-free.
//!
//! Every counter is a relaxed [`AtomicU64`], so recording from many
//! worker threads never contends on a lock and a `stats` snapshot never
//! blocks the request path. Relaxed ordering is enough: the counters
//! are independent monotone tallies, and a snapshot taken while
//! requests are in flight is allowed to be a few events torn between
//! fields (documented on [`Metrics::snapshot`]).
//!
//! The histogram uses 24 power-of-two microsecond buckets (bucket `i`
//! holds latencies in `(2^(i-1), 2^i]` µs, bucket 0 holds `≤ 1` µs), so
//! recording is O(1), allocation-free, and quantiles are upper bounds —
//! exactly what a long-running daemon wants from its own bookkeeping.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::proto::{CacheStats, LatencySummary, RequestCounts, ShardStats, StatsReply};
use contention_model::units::f64_from_u64;

/// Number of histogram buckets (covers up to ~2.3 hours in µs).
const BUCKETS: usize = 24;

/// The request kinds the daemon serves, for per-kind counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// `load_report`.
    LoadReport,
    /// `predict`.
    Predict,
    /// `decide_batch`.
    DecideBatch,
    /// `rank`.
    Rank,
    /// `stats`.
    Stats,
    /// `shutdown`.
    Shutdown,
}

impl ReqKind {
    fn index(self) -> usize {
        match self {
            ReqKind::LoadReport => 0,
            ReqKind::Predict => 1,
            ReqKind::DecideBatch => 2,
            ReqKind::Rank => 3,
            ReqKind::Stats => 4,
            ReqKind::Shutdown => 5,
        }
    }
}

/// Fixed-bucket power-of-two latency histogram, microseconds. This is
/// the plain (single-owner) form; the service records into the atomic
/// twin inside [`Metrics`] and materializes one of these per snapshot.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max_us: u64,
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency observation.
    pub fn record(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one, bucket by bucket — how a
    /// load generator aggregates per-connection latencies into one
    /// fleet-wide distribution without sharing state between threads.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Largest observation, µs (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Bucket index for a latency: bucket 0 is `≤ 1` µs, bucket `i`
    /// covers `(2^(i-1), 2^i]` µs; the last bucket absorbs the tail.
    fn bucket_of(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        // ceil(log2(us)) via leading_zeros on us-1; u32 → usize is lossless.
        let ceil_log2 = u64::BITS - (us - 1).leading_zeros();
        (ceil_log2 as usize).min(BUCKETS - 1)
    }

    /// Upper bound of a bucket, µs.
    fn bucket_upper(idx: usize) -> u64 {
        1u64 << idx.min(63)
    }

    /// Upper bound on the `q`-quantile latency (`q` in `[0, 1]`), µs.
    /// Returns 0 when no observations were recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = q.clamp(0.0, 1.0) * f64_from_u64(self.count);
        let mut cumulative = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if f64_from_u64(cumulative) >= target {
                // Never report past the true maximum.
                return Self::bucket_upper(idx).min(self.max_us);
            }
        }
        self.max_us
    }
}

/// The atomic twin of [`LatencyHistogram`]: shared by every worker,
/// recorded with relaxed stores, drained into the plain form on demand.
#[derive(Debug, Default)]
struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl AtomicHistogram {
    fn record(&self, us: u64) {
        self.buckets[LatencyHistogram::bucket_of(us)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.max_us.fetch_max(us, Relaxed);
    }

    /// A point-in-time copy; concurrent records may straddle the loads.
    fn load(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Relaxed);
        }
        h.count = self.count.load(Relaxed);
        h.max_us = self.max_us.load(Relaxed);
        h
    }
}

/// All service metrics, recorded lock-free from any worker thread.
#[derive(Debug, Default)]
pub struct Metrics {
    counts: [AtomicU64; 6],
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    hist: AtomicHistogram,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one request of `kind`.
    pub fn count_request(&self, kind: ReqKind) {
        self.counts[kind.index()].fetch_add(1, Relaxed);
    }

    /// Records one request latency.
    pub fn record_latency_us(&self, us: u64) {
        self.hist.record(us);
    }

    /// Counts a profile served from cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Relaxed);
    }

    /// Counts a profile recompute.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Relaxed);
    }

    /// Snapshot for the `stats` response. Taken with relaxed loads while
    /// requests may be in flight, so totals can disagree by the handful
    /// of events mid-record — never by more, and never backwards.
    pub fn snapshot(
        &self,
        machines: usize,
        uptime_secs: f64,
        shards: Vec<ShardStats>,
    ) -> StatsReply {
        let hits = self.cache_hits.load(Relaxed);
        let misses = self.cache_misses.load(Relaxed);
        let looked_up = hits + misses;
        let hit_rate =
            if looked_up == 0 { 0.0 } else { f64_from_u64(hits) / f64_from_u64(looked_up) };
        let hist = self.hist.load();
        StatsReply {
            requests: RequestCounts {
                load_report: self.counts[0].load(Relaxed),
                predict: self.counts[1].load(Relaxed),
                decide_batch: self.counts[2].load(Relaxed),
                rank: self.counts[3].load(Relaxed),
                stats: self.counts[4].load(Relaxed),
                shutdown: self.counts[5].load(Relaxed),
            },
            cache: CacheStats { hits, misses, hit_rate },
            latency_us: LatencySummary {
                count: hist.count(),
                p50_us: hist.quantile_us(0.50),
                p99_us: hist.quantile_us(0.99),
                max_us: hist.max_us(),
            },
            machines: u64::try_from(machines).unwrap_or(u64::MAX),
            uptime_secs,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(5), 3);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(1025), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 900] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile_us(0.5), 1);
        // p99 lands in the 900 observation's bucket (512, 1024] but is
        // clamped to the observed maximum.
        assert_eq!(h.quantile_us(0.99), 900);
        assert_eq!(h.max_us(), 900);
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), 0);
    }

    #[test]
    fn merge_is_equivalent_to_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for us in [1u64, 7, 900, 4096] {
            a.record(us);
            whole.record(us);
        }
        for us in [2u64, 65_000, 3] {
            b.record(us);
            whole.record(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_us(), whole.max_us());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile_us(q), whole.quantile_us(q));
        }
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn snapshot_reports_rates() {
        let m = Metrics::new();
        m.count_request(ReqKind::Predict);
        m.count_request(ReqKind::Predict);
        m.count_request(ReqKind::Stats);
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.record_latency_us(10);
        let s = m.snapshot(3, 1.5, Vec::new());
        assert_eq!(s.requests.predict, 2);
        assert_eq!(s.requests.stats, 1);
        assert_eq!(s.requests.total(), 3);
        assert_eq!(s.cache.hits, 2);
        assert!((s.cache.hit_rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.latency_us.count, 1);
        assert_eq!(s.machines, 3);
        assert_eq!(s.uptime_secs, 1.5);
    }

    #[test]
    fn empty_metrics_have_zero_rate() {
        let s = Metrics::new().snapshot(0, 0.0, Vec::new());
        assert_eq!(s.cache.hit_rate, 0.0);
        assert_eq!(s.latency_us.p99_us, 0);
        assert_eq!(s.requests.total(), 0);
    }

    #[test]
    fn atomic_histogram_matches_plain_recording() {
        let m = Metrics::new();
        let mut plain = LatencyHistogram::new();
        for us in [0u64, 1, 7, 900, 4096, 4097] {
            m.record_latency_us(us);
            plain.record(us);
        }
        let s = m.snapshot(0, 0.0, Vec::new());
        assert_eq!(s.latency_us.count, plain.count());
        assert_eq!(s.latency_us.p50_us, plain.quantile_us(0.50));
        assert_eq!(s.latency_us.p99_us, plain.quantile_us(0.99));
        assert_eq!(s.latency_us.max_us, plain.max_us());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        m.count_request(ReqKind::Predict);
                        m.record_latency_us(i % 64);
                        if i % 2 == 0 {
                            m.cache_hit();
                        } else {
                            m.cache_miss();
                        }
                    }
                });
            }
        });
        let snap = m.snapshot(0, 0.0, Vec::new());
        assert_eq!(snap.requests.predict, 4000);
        assert_eq!(snap.latency_us.count, 4000);
        assert_eq!(snap.cache.hits, 2000);
        assert_eq!(snap.cache.misses, 2000);
    }
}
