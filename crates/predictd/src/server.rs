//! Transport: newline-delimited JSON over TCP or stdio.
//!
//! The daemon is deliberately std-only and single-threaded: requests
//! are small, handlers are microseconds, and one connection at a time
//! keeps the service state free of locks. Connections are served
//! sequentially; a connection-level I/O error drops that connection and
//! the accept loop keeps going. Only an explicit `shutdown` request (or
//! EOF on stdio) stops the daemon.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

use crate::service::Service;

/// Serves connections from `listener` until a `shutdown` request.
pub fn serve(listener: &TcpListener, service: &mut Service) -> io::Result<()> {
    for stream in listener.incoming() {
        match stream {
            Ok(conn) => {
                if serve_conn(conn, service) {
                    return Ok(());
                }
            }
            // A failed accept is transient (e.g. the peer vanished
            // between SYN and accept); keep listening.
            Err(_) => continue,
        }
    }
    Ok(())
}

/// Serves one connection; true means a `shutdown` request was handled.
fn serve_conn(conn: TcpStream, service: &mut Service) -> bool {
    let Ok(read_half) = conn.try_clone() else {
        return false;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(conn);
    for line in reader.lines() {
        let Ok(line) = line else {
            return false;
        };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, shutdown) = service.handle_line(&line);
        if writeln!(writer, "{reply}").is_err() || writer.flush().is_err() {
            return false;
        }
        if shutdown {
            return true;
        }
    }
    false
}

/// Serves requests from stdin to stdout until `shutdown` or EOF.
pub fn serve_stdio(service: &mut Service) -> io::Result<()> {
    let stdin = io::stdin();
    let mut stdout = io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (reply, shutdown) = service.handle_line(&line);
        writeln!(stdout, "{reply}")?;
        stdout.flush()?;
        if shutdown {
            break;
        }
    }
    Ok(())
}
