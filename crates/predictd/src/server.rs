//! Transport: newline-delimited JSON over TCP or stdio.
//!
//! The daemon is std-only but no longer single-threaded: an accept
//! loop hands connections to a fixed pool of worker threads (see
//! [`serve_pool`]), each of which serves its connection sequentially
//! with reused line/response buffers. The sharded [`Service`] behind
//! the pool takes `&self`, so workers never serialize on the service as
//! a whole — only on the one shard a request's machine routes to.
//!
//! **Connection hygiene.** Every connection gets a read/write timeout
//! and an oversized-line cap ([`ServerConfig`]): a stuck or trickling
//! client is dropped when the timeout fires (freeing its worker), while
//! an oversized request line is answered with a clean JSON `error`
//! response — the rest of the line is discarded and the connection
//! stays up.
//!
//! **Syscall batching.** Responses are serialized into a per-connection
//! buffer and written out only when no further complete request is
//! already buffered, so a pipelined client gets one `write(2)` per
//! burst instead of one per line — the dominant cost at small request
//! sizes. A ping-pong client still sees one write per request.
//!
//! A connection-level I/O error drops that connection and the pool
//! keeps serving. Only an explicit `shutdown` request (or EOF on
//! stdio) stops the daemon.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use crate::proto::Response;
use crate::service::Service;

/// Read buffer per connection; also the pipelining window the syscall
/// batching can see at once.
const READ_BUF_BYTES: usize = 32 * 1024;

/// Flush the response buffer early once it grows past this, so a deep
/// pipeline cannot balloon per-connection memory.
const FLUSH_BYTES: usize = 256 * 1024;

/// Transport-level tuning for the TCP server.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads serving accepted connections (clamped to ≥ 1).
    pub workers: usize,
    /// Per-connection read timeout; a connection idle past this is
    /// dropped so it cannot pin a worker. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout against unread response backlog.
    pub write_timeout: Option<Duration>,
    /// Longest accepted request line, bytes. Longer lines are answered
    /// with a JSON `error` (and discarded), not a disconnect.
    pub max_line_bytes: usize,
    /// Longest accepted binary frame body, bytes. Larger frames are
    /// answered with an `error` frame and skipped — the length prefix
    /// tells the server exactly how much to discard, so the stream
    /// stays in sync, mirroring the `max_line_bytes` behavior.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: default_workers(),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: 1 << 20,
            max_frame_bytes: 1 << 20,
        }
    }
}

/// Default worker count: the machine's available parallelism, clamped
/// to [1, 8] — request handlers are microseconds, so a few workers
/// cover a lot of connections.
fn default_workers() -> usize {
    thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1).clamp(1, 8)
}

/// Serves connections from `listener` sequentially on the calling
/// thread (the single-threaded baseline: one worker, no pool) until a
/// `shutdown` request. Equivalent to [`serve_pool`] with one worker.
pub fn serve(listener: &TcpListener, service: &Service) -> io::Result<()> {
    let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
    for stream in listener.incoming() {
        match stream {
            Ok(conn) => {
                if serve_conn(conn, service, &cfg) {
                    return Ok(());
                }
            }
            // A failed accept is transient (e.g. the peer vanished
            // between SYN and accept); keep listening.
            Err(_) => continue,
        }
    }
    Ok(())
}

/// Serves connections from `listener` on a fixed pool of
/// `cfg.workers` threads until a `shutdown` request. The accept loop
/// runs on the calling thread; each accepted connection is dispatched
/// whole to one worker (requests on a connection are handled in
/// order). Returns once every worker has drained.
pub fn serve_pool(listener: &TcpListener, service: &Service, cfg: &ServerConfig) -> io::Result<()> {
    let local = listener.local_addr()?;
    let shutdown = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Mutex::new(rx);
    thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            scope.spawn(|| loop {
                // Hold the receiver lock only to pull one connection.
                let conn = rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                let Ok(conn) = conn else { return };
                // One-way shutdown latch: release on the store,
                // acquire on every load. The self-connect wake lands
                // after the store through the kernel, so an acquire
                // load that sees `true` also sees everything the
                // storing worker published — no total order needed.
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                if serve_conn(conn, service, cfg) {
                    shutdown.store(true, Ordering::Release);
                    // Unblock the accept loop so it can observe the flag.
                    let _ = TcpStream::connect(local);
                    return;
                }
            });
        }
        for stream in listener.incoming() {
            // Acquire pairs with the workers' release store; the wake
            // conn only arrives after that store.
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(conn) => {
                    if tx.send(conn).is_err() {
                        break;
                    }
                }
                // Transient accept failure; keep listening.
                Err(_) => continue,
            }
        }
        // Dropping the sender wakes every idle worker out of recv().
        drop(tx);
    });
    Ok(())
}

/// What one capped line read produced.
enum LineRead {
    /// A complete line (without its newline) is in the buffer.
    Line,
    /// The line exceeded the cap; its content was discarded through the
    /// terminating newline (or EOF).
    TooLong,
    /// Clean end of stream with no pending bytes.
    Eof,
}

/// Reads one newline-terminated line into `line` (cleared first),
/// never retaining more than `cap` bytes: an over-long line is
/// discarded as it streams past and reported as [`LineRead::TooLong`].
/// A read timeout or transport error surfaces as `Err`.
fn read_line_capped(
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    cap: usize,
) -> io::Result<LineRead> {
    line.clear();
    let mut too_long = false;
    loop {
        let (consumed, done) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                // EOF: a partial unterminated line still gets served.
                let done = if too_long {
                    Some(LineRead::TooLong)
                } else if line.is_empty() {
                    Some(LineRead::Eof)
                } else {
                    Some(LineRead::Line)
                };
                (0, done)
            } else {
                match buf.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        let done = if too_long || line.len().saturating_add(i) > cap {
                            LineRead::TooLong
                        } else {
                            line.extend_from_slice(&buf[..i]);
                            LineRead::Line
                        };
                        (i + 1, Some(done))
                    }
                    None => {
                        if !too_long {
                            line.extend_from_slice(buf);
                            if line.len() > cap {
                                too_long = true;
                                line.clear();
                            }
                        }
                        (buf.len(), None)
                    }
                }
            }
        };
        reader.consume(consumed);
        if let Some(result) = done {
            return Ok(result);
        }
    }
}

/// Appends an `error` response line to the output buffer.
fn append_error(out: &mut String, message: &str) {
    serde_json::to_string_into(&Response::error(message), out);
    out.push('\n');
}

/// Writes and clears the pending response bytes.
fn drain(writer: &mut TcpStream, out: &mut String) -> io::Result<()> {
    if !out.is_empty() {
        writer.write_all(out.as_bytes())?;
        out.clear();
    }
    Ok(())
}

/// Writes and clears pending binary response frames.
fn drain_bytes(writer: &mut TcpStream, out: &mut Vec<u8>) -> io::Result<()> {
    if !out.is_empty() {
        writer.write_all(out)?;
        out.clear();
    }
    Ok(())
}

/// Serves one connection; true means a `shutdown` request was handled.
///
/// The first byte decides the codec: the binary [`binproto::MAGIC`]
/// byte (which can never start a JSON line) routes the connection to
/// the frame loop, anything else to the newline-JSON loop — the
/// untouched compatibility surface.
fn serve_conn(conn: TcpStream, service: &Service, cfg: &ServerConfig) -> bool {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(cfg.read_timeout);
    let _ = conn.set_write_timeout(cfg.write_timeout);
    let Ok(read_half) = conn.try_clone() else {
        return false;
    };
    let mut reader = BufReader::with_capacity(READ_BUF_BYTES, read_half);
    let mut writer = conn;
    // Sniff without consuming: binary clients open with the preamble.
    match reader.fill_buf() {
        Err(_) => return false,
        Ok([]) => return false,
        Ok([crate::binproto::MAGIC, ..]) => return serve_conn_binary(reader, writer, service, cfg),
        Ok(_) => {}
    }
    // Reused across every request on the connection: no per-request
    // line or response allocations once the buffers have warmed up.
    let mut line: Vec<u8> = Vec::with_capacity(1024);
    let mut out = String::with_capacity(4096);
    loop {
        match read_line_capped(&mut reader, &mut line, cfg.max_line_bytes) {
            // Timeout or transport error: a stuck client is dropped so
            // it cannot pin this worker.
            Err(_) => return false,
            Ok(LineRead::Eof) => {
                let _ = drain(&mut writer, &mut out);
                return false;
            }
            Ok(LineRead::TooLong) => {
                append_error(
                    &mut out,
                    &format!("request line exceeds {} bytes", cfg.max_line_bytes),
                );
            }
            Ok(LineRead::Line) => match std::str::from_utf8(&line) {
                Ok(text) => {
                    let text = text.trim();
                    if !text.is_empty() && service.handle_line_into(text, &mut out) {
                        let _ = drain(&mut writer, &mut out);
                        return true;
                    }
                }
                Err(_) => append_error(&mut out, "request line is not valid UTF-8"),
            },
        }
        // Syscall batching: flush only when no further complete request
        // is already buffered (or the backlog has grown large), so a
        // pipelined burst costs one write, not one per line.
        let more_buffered = reader.buffer().contains(&b'\n');
        if (!more_buffered || out.len() >= FLUSH_BYTES) && drain(&mut writer, &mut out).is_err() {
            return false;
        }
    }
}

/// Discards exactly `n` bytes from the reader — how an oversized frame
/// is skipped without ever buffering it (the length prefix keeps the
/// stream in sync).
fn skip_bytes(reader: &mut impl BufRead, mut n: usize) -> io::Result<()> {
    while n > 0 {
        let available = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame"));
            }
            buf.len().min(n)
        };
        reader.consume(available);
        n -= available;
    }
    Ok(())
}

/// Serves one binary-codec connection after the magic byte was sniffed;
/// true means a `shutdown` request was handled. Oversized frames are
/// rejected-and-skipped (connection survives); a malformed preamble is
/// answered with an `error` frame and a close.
fn serve_conn_binary(
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    service: &Service,
    cfg: &ServerConfig,
) -> bool {
    use crate::binproto;
    let mut out: Vec<u8> = Vec::with_capacity(4096);
    let mut pre = [0u8; 4];
    if reader.read_exact(&mut pre).is_err() {
        return false;
    }
    if pre != binproto::PREAMBLE {
        let _ = binproto::encode_response(
            &Response::error("bad preamble: expected BD 50 44 01"),
            &mut out,
        );
        let _ = drain_bytes(&mut writer, &mut out);
        return false;
    }
    let mut body: Vec<u8> = Vec::with_capacity(1024);
    loop {
        let mut len4 = [0u8; 4];
        if reader.read_exact(&mut len4).is_err() {
            // EOF (or timeout) between frames: flush any backlog.
            let _ = drain_bytes(&mut writer, &mut out);
            return false;
        }
        let len = usize::try_from(u32::from_le_bytes(len4)).unwrap_or(usize::MAX);
        if len == 0 {
            let _ = binproto::encode_response(&Response::error("bad frame: empty frame"), &mut out);
        } else if len > cfg.max_frame_bytes {
            let _ = binproto::encode_response(
                &Response::error(format!("frame exceeds {} bytes", cfg.max_frame_bytes)),
                &mut out,
            );
            if skip_bytes(&mut reader, len).is_err() {
                let _ = drain_bytes(&mut writer, &mut out);
                return false;
            }
        } else {
            body.resize(len, 0);
            if reader.read_exact(&mut body).is_err() {
                return false;
            }
            if service.handle_frame_into(&body, &mut out) {
                let _ = drain_bytes(&mut writer, &mut out);
                return true;
            }
        }
        // Same syscall batching as the JSON loop: flush only when the
        // read buffer does not already hold the next complete frame.
        let buffered = reader.buffer();
        let more_buffered = buffered.len() >= 4 && {
            let mut next = [0u8; 4];
            next.copy_from_slice(&buffered[..4]);
            let next_len = usize::try_from(u32::from_le_bytes(next)).unwrap_or(usize::MAX);
            next_len.saturating_add(4) <= buffered.len() || next_len > cfg.max_frame_bytes
        };
        if (!more_buffered || out.len() >= FLUSH_BYTES)
            && drain_bytes(&mut writer, &mut out).is_err()
        {
            return false;
        }
    }
}

/// Serves requests from stdin to stdout until `shutdown` or EOF.
pub fn serve_stdio(service: &Service) -> io::Result<()> {
    let stdin = io::stdin();
    let mut stdout = io::stdout().lock();
    let mut out = String::new();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let shutdown = service.handle_line_into(line.trim(), &mut out);
        stdout.write_all(out.as_bytes())?;
        stdout.flush()?;
        out.clear();
        if shutdown {
            break;
        }
    }
    Ok(())
}
