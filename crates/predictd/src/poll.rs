//! Minimal epoll/socket shim for the evented server — raw `extern "C"`
//! declarations of the half-dozen Linux syscalls the event loop needs,
//! keeping the crate's zero-heavy-deps discipline (no `libc` crate,
//! no async runtime).
//!
//! Everything unsafe is confined to this module; the surface it exports
//! ([`Epoll`], [`Waker`], [`bind_reuseport`], the buffer-size setters)
//! is safe: file descriptors are owned [`OwnedFd`]s closed on drop, and
//! every syscall result is translated into [`std::io::Error`].
//!
//! Linux-only by construction (predictd's evented engine is too); the
//! blocking pool engine remains the portable fallback.

use std::io;
use std::net::{SocketAddrV4, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readiness: data to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: error on the descriptor (always reported).
pub const EPOLLERR: u32 = 0x008;
/// Condition: hangup (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Condition: peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

const AF_INET: i32 = 2;
const SOCK_STREAM: i32 = 1;
const SOCK_NONBLOCK: i32 = 0x800;
const SOCK_CLOEXEC: i32 = 0x80000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEADDR: i32 = 2;
const SO_SNDBUF: i32 = 7;
const SO_RCVBUF: i32 = 8;
const SO_REUSEPORT: i32 = 15;

/// One epoll readiness record. x86_64 packs the struct (kernel ABI);
/// other architectures use natural layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set ([`EPOLLIN`] | …).
    pub events: u32,
    /// The caller's token, returned verbatim.
    pub data: u64,
}

#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
    fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Re-runs a syscall-shaped operation while it reports `EINTR`.
///
/// A signal delivered mid-call (profiler ticks, `SIGCHLD` from a test
/// harness) makes the kernel return early with `EINTR`; treating that
/// as failure silently drops wakeups. Every other error — including
/// `EAGAIN` on the nonblocking eventfd, which callers treat as
/// success-with-nothing-to-do — passes straight through.
fn retry_eintr<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall; the returned fd is immediately owned.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: fd was just returned by the kernel and is unowned.
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        check(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Starts watching `fd` with interest `events`, tagging readiness
    /// records with `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Changes the interest set of an already-watched `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Stops watching `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: pre-2.6.9 kernels demanded a non-null event even for DEL.
        check(unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks up to `timeout_ms` (-1 = forever) for readiness, filling
    /// `events` from the front. Returns how many records are valid.
    /// `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let cap = i32::try_from(events.len()).unwrap_or(i32::MAX).max(1);
        let n = retry_eintr(|| {
            // SAFETY: the buffer is valid for `cap` records for the call.
            let n =
                unsafe { epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr(), cap, timeout_ms) };
            check(n)
        })?;
        // n is bounded by cap, which came from a usize.
        Ok(usize::try_from(n).unwrap_or(0))
    }
}

/// An eventfd-based cross-thread wakeup: any thread calls [`Waker::wake`],
/// the owning event loop sees the fd turn readable and [`Waker::drain`]s it.
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// A fresh nonblocking eventfd.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall; the returned fd is immediately owned.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: fd was just returned by the kernel and is unowned.
        Ok(Waker { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    /// The descriptor to register with an [`Epoll`].
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Wakes the owning loop. Best-effort: a full counter (already
    /// pending wakeups, `EAGAIN`) is success — but an `EINTR`'d write
    /// is retried, because dropping it would lose the wakeup entirely.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = retry_eintr(|| {
            // SAFETY: 8 valid bytes; eventfd writes are atomic.
            let n = unsafe { write(self.fd.as_raw_fd(), one.to_ne_bytes().as_ptr(), 8) };
            if n < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        });
    }

    /// Clears pending wakeups after the loop observed readability.
    /// `EINTR` is retried: leaving the counter set would make the
    /// level-triggered epoll re-report readability and spin the loop.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = retry_eintr(|| {
            // SAFETY: 8 valid bytes.
            let n = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8) };
            if n < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        });
    }
}

fn set_opt(fd: RawFd, level: i32, name: i32, value: i32) -> io::Result<()> {
    let sz = u32::try_from(std::mem::size_of::<i32>()).unwrap_or(4);
    // SAFETY: `value` is a live i32 for the duration of the call.
    check(unsafe { setsockopt(fd, level, name, &value, sz) })?;
    Ok(())
}

/// Binds a nonblocking IPv4 listener with `SO_REUSEPORT` set, so every
/// event-loop thread can bind the same address and let the kernel
/// load-balance accepts across them.
pub fn bind_reuseport(addr: SocketAddrV4) -> io::Result<TcpListener> {
    // SAFETY: plain syscall; the returned fd is immediately owned.
    let fd = check(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    // SAFETY: fd was just returned by the kernel and is unowned.
    let owned = unsafe { OwnedFd::from_raw_fd(fd) };
    set_opt(fd, SOL_SOCKET, SO_REUSEADDR, 1)?;
    set_opt(fd, SOL_SOCKET, SO_REUSEPORT, 1)?;
    let sa = SockAddrIn {
        sin_family: u16::try_from(AF_INET).unwrap_or(2),
        sin_port: addr.port().to_be(),
        // Network order is the octets verbatim.
        sin_addr: u32::from_ne_bytes(addr.ip().octets()),
        sin_zero: [0; 8],
    };
    let len = u32::try_from(std::mem::size_of::<SockAddrIn>()).unwrap_or(16);
    // SAFETY: `sa` is a live, fully initialized sockaddr_in.
    check(unsafe { bind(fd, &sa, len) })?;
    // SAFETY: plain syscall on an owned fd.
    check(unsafe { listen(fd, 1024) })?;
    Ok(TcpListener::from(owned))
}

/// Shrinks (or grows) the kernel send buffer of a connected stream —
/// used by tests to provoke partial writes.
pub fn set_send_buf(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    set_opt(stream.as_raw_fd(), SOL_SOCKET, SO_SNDBUF, i32::try_from(bytes).unwrap_or(i32::MAX))
}

/// Shrinks (or grows) the kernel receive buffer of a connected stream.
pub fn set_recv_buf(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    set_opt(stream.as_raw_fd(), SOL_SOCKET, SO_RCVBUF, i32::try_from(bytes).unwrap_or(i32::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{Ipv4Addr, SocketAddrV4};

    #[test]
    fn epoll_sees_eventfd_wakeups() {
        let ep = Epoll::new().expect("epoll");
        let waker = Waker::new().expect("eventfd");
        ep.add(waker.as_raw_fd(), 42, EPOLLIN).expect("add");
        let mut evs = [EpollEvent { events: 0, data: 0 }; 8];
        assert_eq!(ep.wait(&mut evs, 0).expect("wait"), 0, "nothing pending yet");
        waker.wake();
        let n = ep.wait(&mut evs, 1000).expect("wait");
        assert_eq!(n, 1);
        let token = evs[0].data;
        assert_eq!(token, 42);
        waker.drain();
        assert_eq!(ep.wait(&mut evs, 0).expect("wait"), 0, "drained");
    }

    #[test]
    fn reuseport_listeners_share_an_address() {
        let first = bind_reuseport(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).expect("bind 0");
        let addr = first.local_addr().expect("addr");
        let port = addr.port();
        assert_ne!(port, 0);
        let second = bind_reuseport(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
            .expect("second bind on the same port");
        assert_eq!(second.local_addr().expect("addr").port(), port);

        // A connection lands on exactly one of them and carries data.
        let ep = Epoll::new().expect("epoll");
        ep.add(first.as_raw_fd(), 1, EPOLLIN).expect("add");
        ep.add(second.as_raw_fd(), 2, EPOLLIN).expect("add");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(b"hi").expect("write");
        let mut evs = [EpollEvent { events: 0, data: 0 }; 8];
        let n = ep.wait(&mut evs, 2000).expect("wait");
        assert!(n >= 1);
        let token = evs[0].data;
        let (mut conn, _) = if token == 1 {
            first.accept().expect("accept")
        } else {
            second.accept().expect("accept")
        };
        conn.set_nonblocking(false).expect("blocking");
        let mut buf = [0u8; 2];
        conn.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn retry_eintr_retries_interrupts_and_passes_other_errors_through() {
        // Two simulated signal interruptions, then success.
        let mut calls = 0;
        let out = retry_eintr(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::from(io::ErrorKind::Interrupted))
            } else {
                Ok(8isize)
            }
        });
        assert_eq!(out.expect("retried to success"), 8);
        assert_eq!(calls, 3);

        // A non-EINTR error is not retried: one call, error returned.
        let mut calls = 0;
        let out: io::Result<()> = retry_eintr(|| {
            calls += 1;
            Err(io::Error::from(io::ErrorKind::WouldBlock))
        });
        assert_eq!(out.expect_err("passed through").kind(), io::ErrorKind::WouldBlock);
        assert_eq!(calls, 1);
    }

    #[test]
    fn send_buf_can_be_shrunk() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let s = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        set_send_buf(&s, 4096).expect("sndbuf");
        set_recv_buf(&s, 4096).expect("rcvbuf");
    }
}
