//! # predictd — the contention-prediction service daemon
//!
//! An NWS-inspired companion to the contention model: machines (or the
//! simulator standing in for them) stream load reports in, schedulers
//! ask placement questions out, and the daemon keeps the forecasting
//! state, epoch-keyed profile caches, and request metrics in between.
//! The paper's model makes run-time placement decisions cheap; this
//! daemon is the run-time: a long-lived process that turns a feed of
//! load observations into `decide()`-grade answers over a wire.
//!
//! Deliberately std-only: newline-delimited JSON (via the vendored
//! serde) over TCP or stdio, no async runtime. Connections are served
//! concurrently by a fixed worker pool over a sharded service — machine
//! state is partitioned across [`std::sync::RwLock`]-guarded shards and
//! metrics are lock-free atomics, so warm predictions run under read
//! locks and `stats` never blocks the request path. The wire surface
//! (request/response types, JSON fast path, binary codec) lives in the
//! shared [`proto`] crate and is re-exported here under its historical
//! paths; see [`service`] for the request handler and sharding,
//! [`server`]/[`client`] for transport, and [`metrics`] for the
//! per-request bookkeeping behind `stats`.
//!
//! Two binaries ship with the crate: `predictd` (the daemon) and
//! `predictctl` (a thin command-line client used by tests and CI).
//!
//! modelcheck: no-panic, lossy-cast, missing-docs, lock-discipline, atomics, float-env, wire-taint, event-loop, lock-order

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod poll;
pub mod server;
pub mod server_evented;
pub mod service;

pub use ::proto::{binproto, codec, proto};

pub use client::{Client, ClientError};
pub use metrics::{LatencyHistogram, Metrics, ReqKind};
pub use proto::{Request, Response};
pub use server::{serve, serve_pool, serve_stdio, ServerConfig};
pub use server_evented::EventedServer;
pub use service::{Affinity, Service, ServiceConfig};

use contention_model::comm::{LinearCommModel, PiecewiseCommModel};
use contention_model::delay::{CommDelayTable, CompDelayTable};
use contention_model::predict::ParagonPredictor;
use contention_model::units::{secs, BytesPerSec};

/// A representative calibrated Sun/Paragon predictor (values from a
/// real calibration run), so the daemon serves sane answers out of the
/// box without running a calibration at startup.
pub fn default_predictor() -> ParagonPredictor {
    let linear = |alpha: f64, beta_words_per_sec: f64| {
        LinearCommModel::new(secs(alpha), BytesPerSec::from_words_per_sec(beta_words_per_sec))
    };
    ParagonPredictor {
        comm_to: PiecewiseCommModel::new(1024, linear(1.6e-3, 79_000.0), linear(5.6e-3, 104_000.0)),
        comm_from: PiecewiseCommModel::new(
            1024,
            linear(1.5e-3, 149_000.0),
            LinearCommModel::from_fit(-4.0e-3, 83_000.0),
        ),
        comm_delays: CommDelayTable::new(
            vec![0.27, 0.61, 1.02, 1.40],
            vec![0.19, 0.49, 0.81, 1.10],
        ),
        comp_delays: CompDelayTable::new(
            vec![1, 500, 1000],
            vec![
                vec![0.22, 0.37, 0.37, 0.37],
                vec![0.66, 1.15, 1.59, 1.90],
                vec![1.68, 3.59, 5.52, 7.00],
            ],
        ),
    }
}
