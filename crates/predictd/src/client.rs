//! A small blocking client for the predictd wire protocol, used by
//! `predictctl`, the integration tests, and the CI smoke job.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{Request, Response};

/// What can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The daemon answered, but not with a decodable response line.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected predictd client (one request in flight at a time).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:7171"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request and decodes the response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let line = serde_json::to_string(req).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let reply = self.request_raw(&line)?;
        serde_json::from_str(&reply).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one raw request line and returns the raw response line —
    /// the escape hatch `predictctl raw` uses.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed by daemon".to_string()));
        }
        Ok(reply.trim_end().to_string())
    }
}
