//! A small blocking client for the predictd wire protocol, used by
//! `predictctl`, the integration tests, the CI smoke job, and the
//! `loadgen` traffic generator.
//!
//! Besides the one-request-at-a-time [`Client::request`] path, the
//! client exposes a split pipelined surface — queue lines with
//! [`Client::send_raw`], [`Client::flush`] once per burst, then drain
//! replies with [`Client::recv_raw_into`] into a reused buffer — so a
//! load generator can keep many requests in flight per connection
//! without allocating per request.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::binproto;
use crate::proto::{Request, Response};

/// Largest reply frame the client will accept. The daemon's default
/// request limit is 1 MiB (`ServerConfig::max_frame_bytes`); 16 MiB
/// leaves headroom for large responses while keeping a corrupt or
/// hostile length word from forcing a multi-gigabyte allocation.
pub const MAX_REPLY_FRAME_BYTES: usize = 16 << 20;

/// What can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The daemon answered, but not with a decodable response line.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected predictd client. `request` keeps one request in flight;
/// the `send_raw`/`flush`/`recv_raw_into` surface pipelines many.
///
/// [`Client::connect`] speaks newline-JSON; [`Client::connect_binary`]
/// negotiates the length-prefixed binary codec by sending the
/// [`binproto::PREAMBLE`] right after connect. Either way, [`Client::request`]
/// transparently uses the connection's codec, and the pipelined raw
/// surfaces (`send_raw`/`recv_raw_into` for JSON, [`Client::send_frame`]/
/// [`Client::recv_frame_into`] for binary) keep many requests in flight.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    binary: bool,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:7171"`),
    /// speaking newline-JSON.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(stream), binary: false })
    }

    /// Connects speaking the binary codec: sends the 4-byte preamble,
    /// then exchanges length-prefixed frames.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let mut client = Client::connect(addr)?;
        client.binary = true;
        client.writer.write_all(&binproto::PREAMBLE)?;
        Ok(client)
    }

    /// Connects speaking the binary codec with a bounded connect and
    /// bounded per-call reads/writes (`None` = block forever) — what
    /// the gateway uses toward its backends, so one dead or wedged
    /// backend stalls a request for at most the timeout instead of
    /// pinning a worker indefinitely. Every resolved address is tried
    /// in order; the last connect error is returned if all fail.
    pub fn connect_binary_timeout(
        addr: impl ToSocketAddrs,
        connect: std::time::Duration,
        io: Option<std::time::Duration>,
    ) -> Result<Self, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for a in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&a, connect) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(io)?;
                    stream.set_write_timeout(io)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    let mut client =
                        Client { reader, writer: BufWriter::new(stream), binary: true };
                    // modelcheck-allow: event-loop — connect is already a
                    // blocking, timeout-bounded call; the 4-byte preamble
                    // shares the socket's write timeout. The gateway's
                    // backend fan-out is synchronous by design.
                    client.writer.write_all(&binproto::PREAMBLE)?;
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }

    /// True when this connection negotiated the binary codec.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Sends one request and decodes the response, using whichever
    /// codec the connection negotiated.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if self.binary {
            let mut frame = Vec::with_capacity(256);
            if !binproto::encode_request(req, &mut frame) {
                return Err(ClientError::Protocol("request exceeds frame limits".to_string()));
            }
            self.send_frame(&frame)?;
            self.flush()?;
            let mut body = Vec::with_capacity(256);
            self.recv_frame_into(&mut body)?;
            return binproto::decode_response(&body)
                .map_err(|e| ClientError::Protocol(e.to_string()));
        }
        let line = serde_json::to_string(req).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let reply = self.request_raw(&line)?;
        serde_json::from_str(&reply).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Queues one already-encoded binary frame (length prefix included)
    /// without flushing, for pipelining.
    pub fn send_frame(&mut self, frame: &[u8]) -> Result<(), ClientError> {
        self.writer.write_all(frame)?;
        Ok(())
    }

    /// Reads one binary frame body (tag + payload, the length prefix
    /// stripped) into `body` (cleared first), reusing the caller's
    /// buffer. Frames longer than [`MAX_REPLY_FRAME_BYTES`] are
    /// rejected before any allocation: the length word arrives off the
    /// wire, and a corrupt or hostile peer must not be able to make the
    /// client allocate 4 GiB.
    pub fn recv_frame_into(&mut self, body: &mut Vec<u8>) -> Result<(), ClientError> {
        let mut len4 = [0u8; 4];
        self.reader.read_exact(&mut len4).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ClientError::Protocol("connection closed by daemon".to_string())
            } else {
                ClientError::Io(e)
            }
        })?;
        let len = usize::try_from(u32::from_le_bytes(len4)).unwrap_or(usize::MAX);
        if len > MAX_REPLY_FRAME_BYTES {
            return Err(ClientError::Protocol(format!(
                "reply frame of {len} bytes exceeds the {MAX_REPLY_FRAME_BYTES}-byte limit"
            )));
        }
        body.clear();
        body.resize(len, 0);
        self.reader.read_exact(body)?;
        Ok(())
    }

    /// Sends one raw request line and returns the raw response line —
    /// the escape hatch `predictctl raw` uses.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.send_raw(line)?;
        self.flush()?;
        let mut reply = String::new();
        self.recv_raw_into(&mut reply)?;
        Ok(reply)
    }

    /// Queues one raw request line without flushing, for pipelining.
    pub fn send_raw(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Flushes all queued request lines to the daemon.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one raw response line into `reply` (cleared first),
    /// reusing the caller's buffer. The trailing newline is trimmed.
    pub fn recv_raw_into(&mut self, reply: &mut String) -> Result<(), ClientError> {
        reply.clear();
        let n = self.reader.read_line(reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed by daemon".to_string()));
        }
        reply.truncate(reply.trim_end().len());
        Ok(())
    }
}
