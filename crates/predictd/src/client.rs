//! A small blocking client for the predictd wire protocol, used by
//! `predictctl`, the integration tests, the CI smoke job, and the
//! `loadgen` traffic generator.
//!
//! Besides the one-request-at-a-time [`Client::request`] path, the
//! client exposes a split pipelined surface — queue lines with
//! [`Client::send_raw`], [`Client::flush`] once per burst, then drain
//! replies with [`Client::recv_raw_into`] into a reused buffer — so a
//! load generator can keep many requests in flight per connection
//! without allocating per request.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{Request, Response};

/// What can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The daemon answered, but not with a decodable response line.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected predictd client. `request` keeps one request in flight;
/// the `send_raw`/`flush`/`recv_raw_into` surface pipelines many.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:7171"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(stream) })
    }

    /// Sends one request and decodes the response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let line = serde_json::to_string(req).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let reply = self.request_raw(&line)?;
        serde_json::from_str(&reply).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one raw request line and returns the raw response line —
    /// the escape hatch `predictctl raw` uses.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.send_raw(line)?;
        self.flush()?;
        let mut reply = String::new();
        self.recv_raw_into(&mut reply)?;
        Ok(reply)
    }

    /// Queues one raw request line without flushing, for pipelining.
    pub fn send_raw(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Flushes all queued request lines to the daemon.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one raw response line into `reply` (cleared first),
    /// reusing the caller's buffer. The trailing newline is trimmed.
    pub fn recv_raw_into(&mut self, reply: &mut String) -> Result<(), ClientError> {
        reply.clear();
        let n = self.reader.read_line(reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed by daemon".to_string()));
        }
        reply.truncate(reply.trim_end().len());
        Ok(())
    }
}
