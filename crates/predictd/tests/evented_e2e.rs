//! End-to-end coverage for the evented engine and the binary codec
//! negotiation: a mixed JSON + binary client fleet on one server,
//! malformed-preamble rejection, oversized- and truncated-frame
//! handling, and slow readers that force the partial-write paths on
//! both engines.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use contention_model::dataset::DataSet;
use contention_model::predict::ParagonTask;
use contention_model::units::secs;
use predictd::binproto;
use predictd::proto::{DecideBatch, LoadReport, Predict, Request, Response};
use predictd::{serve_pool, Client, EventedServer, ServerConfig, Service, ServiceConfig};

fn task() -> ParagonTask {
    ParagonTask {
        dcomp_sun: secs(30.0),
        t_paragon: secs(6.0),
        to_backend: vec![DataSet::burst(10, 2000)],
        from_backend: vec![DataSet::single(1000)],
    }
}

/// Boots an evented server on a loopback port. The service and config
/// are leaked — each test owns one short-lived process anyway.
fn spawn_evented(cfg: ServerConfig, workers: usize) -> (SocketAddr, thread::JoinHandle<()>) {
    let service: &'static Service =
        Box::leak(Box::new(Service::with_default_predictor(ServiceConfig::default())));
    let cfg: &'static ServerConfig = Box::leak(Box::new(cfg));
    let server =
        EventedServer::bind("127.0.0.1:0".parse().expect("loopback"), workers).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run(service, cfg).expect("evented run"));
    (addr, handle)
}

fn report(machine: &str, at: f64) -> Request {
    Request::LoadReport(LoadReport { machine: machine.to_string(), at, load: 2.0, comm_frac: 0.5 })
}

fn predict(machine: &str, now: f64) -> Request {
    Request::Predict(Predict { machine: machine.to_string(), now, task: task(), j_words: 500 })
}

/// JSON and binary clients share one evented server concurrently; both
/// codecs observe the same forecasts and the same decisions.
#[test]
fn mixed_fleet_agrees_across_codecs() {
    let (addr, handle) = spawn_evented(ServerConfig::default(), 2);

    // Concurrent warm-up traffic from both codecs on separate machines.
    thread::scope(|scope| {
        for (i, binary) in [(0usize, false), (1, true), (2, false), (3, true)] {
            scope.spawn(move || {
                let mut client = if binary {
                    Client::connect_binary(addr).expect("binary connect")
                } else {
                    Client::connect(addr).expect("json connect")
                };
                let machine = format!("fleet{i}");
                for t in 0..4 {
                    let resp = client.request(&report(&machine, f64::from(t))).expect("ack");
                    let Response::Ack(a) = resp else { panic!("want ack, got {resp:?}") };
                    assert!(a.accepted, "fresh report must be accepted");
                }
                let resp = client.request(&predict(&machine, 3.5)).expect("prediction");
                let Response::Prediction(p) = resp else { panic!("want prediction: {resp:?}") };
                assert!(!p.stale);
                assert_eq!(p.p, 2, "constant load of 2 forecasts p = 2");
            });
        }
    });

    // Same machine, both codecs: identical answers (cache_hit is
    // per-core replica metadata and may differ; the decision may not).
    let mut json = Client::connect(addr).expect("json connect");
    let mut bin = Client::connect_binary(addr).expect("binary connect");
    for t in 0..4 {
        json.request(&report("shared", f64::from(t))).expect("ack");
    }
    let a = json.request(&predict("shared", 3.5)).expect("json prediction");
    let b = bin.request(&predict("shared", 3.5)).expect("binary prediction");
    let (Response::Prediction(a), Response::Prediction(b)) = (a, b) else {
        panic!("both codecs must answer predictions")
    };
    assert_eq!(a.p, b.p);
    assert_eq!(a.stale, b.stale);
    assert_eq!(a.decision, b.decision, "codec choice must not change the placement");

    let resp = json.request(&Request::Stats).expect("stats");
    let Response::Stats(st) = resp else { panic!("want stats: {resp:?}") };
    assert!(st.requests.predict >= 6, "{:?}", st.requests);

    let resp = bin.request(&Request::Shutdown).expect("shutdown");
    assert!(matches!(resp, Response::Ok), "{resp:?}");
    handle.join().expect("server exits after a binary shutdown");
}

/// A magic first byte with a wrong preamble tail gets one binary error
/// frame and a closed connection — not a JSON parse attempt.
#[test]
fn malformed_preamble_is_rejected_with_an_error_frame() {
    let (addr, handle) = spawn_evented(ServerConfig::default(), 1);
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(&[binproto::MAGIC, b'X', b'Y', 9]).expect("bad preamble");
    conn.flush().expect("flush");

    let mut len4 = [0u8; 4];
    conn.read_exact(&mut len4).expect("error frame length");
    let mut body = vec![0u8; u32::from_le_bytes(len4) as usize];
    conn.read_exact(&mut body).expect("error frame body");
    let resp = binproto::decode_response(&body).expect("decodable error frame");
    let Response::Error(e) = resp else { panic!("want error, got {resp:?}") };
    assert!(e.message.contains("preamble"), "{}", e.message);
    // The server closes after a bad handshake.
    let n = conn.read(&mut [0u8; 16]).expect("read eof");
    assert_eq!(n, 0, "connection must be closed");

    let mut client = Client::connect_binary(addr).expect("fresh connect");
    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server exits");
}

/// A frame above `--max-frame-bytes` gets a clean error, is skipped in
/// full, and the connection keeps working afterwards.
#[test]
fn oversized_frame_is_skipped_and_the_connection_survives() {
    let (addr, handle) =
        spawn_evented(ServerConfig { max_frame_bytes: 256, ..ServerConfig::default() }, 1);
    let mut client = Client::connect_binary(addr).expect("connect");

    // ~40 tasks encode far past 256 bytes.
    let big = Request::DecideBatch(DecideBatch {
        machine: "big".to_string(),
        now: 1.0,
        tasks: (0..40).map(|_| task()).collect(),
        j_words: 500,
    });
    let mut frame = Vec::new();
    assert!(binproto::encode_request(&big, &mut frame));
    assert!(frame.len() > 4 + 256, "fixture must exceed the cap");
    client.send_frame(&frame).expect("send oversized");
    client.flush().expect("flush");
    let mut body = Vec::new();
    client.recv_frame_into(&mut body).expect("error frame");
    let resp = binproto::decode_response(&body).expect("decodable");
    let Response::Error(e) = resp else { panic!("want error, got {resp:?}") };
    assert!(e.message.contains("256"), "error must name the cap: {}", e.message);

    // The same connection answers a small request right after.
    let resp = client.request(&report("ok", 1.0)).expect("follow-up");
    assert!(matches!(resp, Response::Ack(_)), "{resp:?}");

    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server exits");
}

/// A client that dies mid-frame neither wedges nor poisons the server.
#[test]
fn truncated_frame_then_disconnect_leaves_the_server_healthy() {
    let (addr, handle) = spawn_evented(ServerConfig::default(), 1);
    {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(&binproto::PREAMBLE).expect("preamble");
        // Length prefix promises 100 bytes, only 10 arrive.
        conn.write_all(&100u32.to_le_bytes()).expect("length");
        conn.write_all(&[binproto::REQ_STATS; 10]).expect("partial body");
        conn.flush().expect("flush");
    } // dropped: connection closes mid-frame

    let mut client = Client::connect_binary(addr).expect("fresh connect");
    let resp = client.request(&Request::Stats).expect("stats after truncation");
    assert!(matches!(resp, Response::Stats(_)), "{resp:?}");
    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server exits");
}

/// The evented engine's JSON path enforces the line cap with an error
/// and keeps the connection, like the blocking engine.
#[test]
fn evented_json_line_cap_answers_and_survives() {
    let (addr, handle) =
        spawn_evented(ServerConfig { max_line_bytes: 1024, ..ServerConfig::default() }, 1);
    let mut conn = TcpStream::connect(addr).expect("connect");
    let big = vec![b'x'; 8 * 1024];
    conn.write_all(&big).expect("oversized line");
    conn.write_all(b"\n").expect("newline");
    conn.flush().expect("flush");

    let mut reader = std::io::BufReader::new(conn.try_clone().expect("clone"));
    let mut reply = String::new();
    std::io::BufRead::read_line(&mut reader, &mut reply).expect("error reply");
    assert!(reply.contains("\"kind\":\"error\""), "{reply:?}");
    assert!(reply.contains("1024"), "error should name the cap: {reply:?}");

    conn.write_all(b"{\"kind\":\"stats\"}\n").expect("follow-up");
    conn.flush().expect("flush");
    reply.clear();
    std::io::BufRead::read_line(&mut reader, &mut reply).expect("stats reply");
    assert!(reply.contains("\"kind\":\"stats\""), "{reply:?}");

    conn.write_all(b"{\"kind\":\"shutdown\"}\n").expect("shutdown");
    conn.flush().expect("flush");
    handle.join().expect("server exits");
}

/// Pipelines many large responses at a reader with a shrunken receive
/// buffer: the server's writes go partial, and every byte must still
/// arrive in order. Exercises the evented engine's EPOLLOUT path.
#[test]
fn slow_reader_gets_every_byte_from_the_evented_engine() {
    let (addr, handle) = spawn_evented(ServerConfig::default(), 1);
    slow_reader_drives(addr, 60);
    let mut client = Client::connect_binary(addr).expect("shutdown connect");
    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server exits");
}

/// The same slow-reader traffic against the blocking pool engine, whose
/// writes must also survive short writes and full socket buffers.
#[test]
fn slow_reader_gets_every_byte_from_the_pool_engine() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || {
        let service = Service::with_default_predictor(ServiceConfig::default());
        let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
        serve_pool(&listener, &service, &cfg).expect("serve_pool");
    });
    slow_reader_drives(addr, 60);
    let mut client = Client::connect_binary(addr).expect("shutdown connect");
    client.request(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server exits");
}

/// Sends `n` pipelined `decide_batch` requests (64 tasks each, so every
/// response is kilobytes) without reading, naps while the server's
/// write path hits the shrunken receive window, then drains and checks
/// every response.
fn slow_reader_drives(addr: SocketAddr, n: usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    predictd::poll::set_recv_buf(&stream, 4096).expect("shrink recv buffer");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(&binproto::PREAMBLE).expect("preamble");

    let req = Request::DecideBatch(DecideBatch {
        machine: "slow".to_string(),
        now: 1.0,
        tasks: (0..64).map(|_| task()).collect(),
        j_words: 500,
    });
    let mut frame = Vec::new();
    assert!(binproto::encode_request(&req, &mut frame));
    for _ in 0..n {
        writer.write_all(&frame).expect("pipelined frame");
    }
    writer.flush().expect("flush");

    // Let the server run into the full socket buffer before we drain.
    thread::sleep(Duration::from_millis(300));

    let mut reader = std::io::BufReader::new(stream);
    let mut body = Vec::new();
    for i in 0..n {
        let mut len4 = [0u8; 4];
        reader.read_exact(&mut len4).unwrap_or_else(|e| panic!("length of reply {i}: {e}"));
        body.resize(u32::from_le_bytes(len4) as usize, 0);
        reader.read_exact(&mut body).unwrap_or_else(|e| panic!("body of reply {i}: {e}"));
        let resp = binproto::decode_response(&body).expect("decodable reply");
        let Response::Decisions(d) = resp else {
            panic!("reply {i}: want decisions, got {resp:?}")
        };
        assert_eq!(d.decisions.len(), 64, "reply {i} must carry every decision");
    }
}
