//! Sharding must be invisible in the answers: a machine's state never
//! leaves its shard, so a service with N shards is bit-identical to the
//! single-shard (PR 3) path for every request sequence. Pinned here by
//! replaying random report/predict/batch/rank interleavings against a
//! 1-shard and an 8-shard service and demanding equal responses.

use contention_model::dataset::DataSet;
use contention_model::predict::ParagonTask;
use contention_model::units::secs;
use predictd::proto::{DecideBatch, LoadReport, Predict, Rank, Request, Response};
use predictd::{Service, ServiceConfig};
use proptest::prelude::*;

fn task(scale: f64) -> ParagonTask {
    ParagonTask {
        dcomp_sun: secs(10.0 + scale),
        t_paragon: secs(1.0 + scale * 0.1),
        to_backend: vec![DataSet::burst(10, 1500)],
        from_backend: vec![DataSet::single(800)],
    }
}

/// One step of a replayed session, decoded from a generated tuple of
/// `(kind, machine, dt, load, frac, scale, n)`. The vendored proptest
/// has no `prop_oneof`, so the op kind is an integer weight: 0-2 report,
/// 3-5 predict, 6 batch, 7 rank (3:3:1:1, as the real traffic mix).
type RawOp = (usize, usize, f64, f64, f64, f64, usize);

fn request_for(raw: &RawOp, now: f64) -> Request {
    let (kind, machine, _dt, load, frac, scale, n) = *raw;
    let machine = format!("machine-{machine}");
    match kind {
        0..=2 => Request::LoadReport(LoadReport { machine, at: now, load, comm_frac: frac }),
        3..=5 => Request::Predict(Predict { machine, now, task: task(scale), j_words: 500 }),
        6 => Request::DecideBatch(DecideBatch {
            machine,
            now,
            tasks: (0..n).map(|i| task(i as f64)).collect(),
            j_words: 500,
        }),
        _ => Request::Rank(Rank {
            machine,
            now,
            workflow: hetsched::example::workflow(),
            front_end: 0,
            j_words: 500,
            limit: 0,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every response — decisions, contender counts, staleness flags,
    /// cache-hit pedigree — is bit-identical between shard counts.
    #[test]
    fn sharded_routing_is_bit_identical_to_single_shard(
        ops in proptest::collection::vec(
            (0..8usize, 0..5usize, 0.0..1.5f64, 0.0..6.0f64, -0.5..1.0f64, 0.0..20.0f64, 1..5usize),
            1..60,
        )
    ) {
        let single = Service::with_default_predictor(ServiceConfig {
            shards: 1,
            ..ServiceConfig::default()
        });
        let sharded = Service::with_default_predictor(ServiceConfig {
            shards: 8,
            ..ServiceConfig::default()
        });
        let mut now = 0.0f64;
        for (i, op) in ops.iter().enumerate() {
            now += op.2;
            let req = request_for(op, now);
            let (a, stop_a) = single.handle(&req);
            let (b, stop_b) = sharded.handle(&req);
            prop_assert_eq!(stop_a, stop_b);
            prop_assert!(!matches!(a, Response::Error(_)), "unexpected error at step {}: {:?}", i, a);
            prop_assert_eq!(a, b, "step {} diverged between 1 and 8 shards", i);
        }
        prop_assert_eq!(single.machine_count(), sharded.machine_count());
    }
}
