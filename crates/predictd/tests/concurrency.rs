//! Concurrency coverage for the worker pool and the sharded service:
//! many clients hammering one daemon from parallel threads, with the
//! per-kind request counts reconciled afterwards.

use std::net::TcpListener;
use std::thread;

use contention_model::dataset::DataSet;
use contention_model::predict::ParagonTask;
use contention_model::units::secs;
use predictd::proto::{DecideBatch, LoadReport, Predict, Request, Response};
use predictd::{serve_pool, Client, ServerConfig, Service, ServiceConfig};

fn task() -> ParagonTask {
    ParagonTask {
        dcomp_sun: secs(30.0),
        t_paragon: secs(6.0),
        to_backend: vec![DataSet::burst(10, 2000)],
        from_backend: vec![DataSet::single(1000)],
    }
}

fn spawn_pool_daemon(
    workers: usize,
    shards: usize,
) -> (std::net::SocketAddr, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || {
        let service =
            Service::with_default_predictor(ServiceConfig { shards, ..ServiceConfig::default() });
        let cfg = ServerConfig { workers, ..ServerConfig::default() };
        serve_pool(&listener, &service, &cfg).expect("serve_pool");
    });
    (addr, handle)
}

/// N client threads × M requests each against a 4-worker pool: every
/// request must succeed, and the server's own counters must add up to
/// exactly what was sent.
#[test]
fn many_clients_many_requests_all_succeed_and_counts_reconcile() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 25;
    let (addr, handle) = spawn_pool_daemon(4, 8);

    thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let machine = format!("m{c}");
                for r in 0..ROUNDS {
                    // One load report, then a predict and a small batch
                    // against the just-reported forecast.
                    let at = 0.1 * (r as f64);
                    let resp = client
                        .request(&Request::LoadReport(LoadReport {
                            machine: machine.clone(),
                            at,
                            load: 2.0,
                            comm_frac: 0.4,
                        }))
                        .expect("ack");
                    let Response::Ack(a) = resp else { panic!("want ack, got {resp:?}") };
                    assert!(a.accepted, "monotone per-machine reports must be accepted");

                    let resp = client
                        .request(&Request::Predict(Predict {
                            machine: machine.clone(),
                            now: at,
                            task: task(),
                            j_words: 500,
                        }))
                        .expect("prediction");
                    let Response::Prediction(p) = resp else {
                        panic!("want prediction, got {resp:?}")
                    };
                    assert!(!p.stale);

                    let resp = client
                        .request(&Request::DecideBatch(DecideBatch {
                            machine: machine.clone(),
                            now: at,
                            tasks: vec![task(), task(), task()],
                            j_words: 500,
                        }))
                        .expect("decisions");
                    let Response::Decisions(d) = resp else {
                        panic!("want decisions, got {resp:?}")
                    };
                    assert_eq!(d.decisions.len(), 3);
                    assert_eq!(d.decisions[0], p.decision, "batch must agree with single predict");
                }
            });
        }
    });

    let mut client = Client::connect(addr).expect("connect for stats");
    let resp = client.request(&Request::Stats).expect("stats");
    let Response::Stats(st) = resp else { panic!("want stats, got {resp:?}") };
    let n = (CLIENTS * ROUNDS) as u64;
    assert_eq!(st.requests.load_report, n, "every load_report must be counted exactly once");
    assert_eq!(st.requests.predict, n);
    assert_eq!(st.requests.decide_batch, n);
    assert_eq!(st.machines, CLIENTS as u64);
    assert_eq!(st.latency_us.count, 3 * n, "stats' own latency lands after the snapshot");
    let by_shard: u64 = st.shards.iter().map(|s| s.machines).sum();
    assert_eq!(by_shard, st.machines);
    let reports: u64 = st.shards.iter().map(|s| s.load_reports).sum();
    assert_eq!(reports, n, "per-shard write tallies must reconcile");
    assert!(st.uptime_secs >= 0.0);

    client.request(&Request::Shutdown).expect("ok");
    handle.join().expect("daemon pool exits cleanly");
}

/// Pipelined requests on one connection come back in order, one reply
/// per request, through the syscall-batched write path.
#[test]
fn pipelined_requests_answer_in_order() {
    let (addr, handle) = spawn_pool_daemon(2, 4);
    let mut client = Client::connect(addr).expect("connect");
    const DEPTH: usize = 64;
    for i in 0..DEPTH {
        let line = format!(
            "{{\"kind\":\"load_report\",\"machine\":\"pipe\",\"at\":{}.0,\"load\":1.0,\
             \"comm_frac\":-1.0}}",
            i
        );
        client.send_raw(&line).expect("queue");
    }
    client.flush().expect("flush burst");
    let mut reply = String::new();
    for i in 0..DEPTH {
        client.recv_raw_into(&mut reply).expect("reply");
        assert!(reply.contains("\"kind\":\"ack\""), "reply {i}: {reply}");
    }
    client.request(&Request::Shutdown).expect("ok");
    handle.join().expect("daemon pool exits cleanly");
}

/// Shutdown through one client stops the daemon even while other
/// connections are open.
#[test]
fn shutdown_stops_the_pool_with_idle_connections_open() {
    let (addr, handle) = spawn_pool_daemon(3, 4);
    let idle = Client::connect(addr).expect("idle connection");
    let mut active = Client::connect(addr).expect("active connection");
    let resp = active.request(&Request::Shutdown).expect("ok");
    assert_eq!(resp, Response::Ok);
    // The pool drains once the remaining connections go away; dropping
    // the clients closes them, and join must then return promptly.
    drop(idle);
    drop(active);
    handle.join().expect("pool joins after shutdown once connections close");
}
