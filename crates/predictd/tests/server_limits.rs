//! Connection-hygiene coverage: the oversized-line cap answers with a
//! clean JSON error (connection survives), and the read timeout drops a
//! stuck client so it cannot pin a worker forever.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use predictd::proto::{Request, Response};
use predictd::{serve_pool, Client, ServerConfig, Service, ServiceConfig};

fn spawn_daemon(cfg: ServerConfig) -> (std::net::SocketAddr, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || {
        let service = Service::with_default_predictor(ServiceConfig::default());
        serve_pool(&listener, &service, &cfg).expect("serve_pool");
    });
    (addr, handle)
}

#[test]
fn oversized_line_gets_a_json_error_and_the_connection_survives() {
    let (addr, handle) =
        spawn_daemon(ServerConfig { workers: 2, max_line_bytes: 1024, ..ServerConfig::default() });
    let mut conn = TcpStream::connect(addr).expect("connect");
    // 64 KiB of garbage on one line: far past the cap, streamed in
    // chunks so the server must discard as it reads.
    let big = vec![b'x'; 64 * 1024];
    conn.write_all(&big).expect("write oversized line");
    conn.write_all(b"\n").expect("terminate line");
    conn.flush().expect("flush");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("error reply");
    assert!(reply.contains("\"kind\":\"error\""), "want clean JSON error, got {reply:?}");
    assert!(reply.contains("1024"), "error should name the cap: {reply:?}");

    // The same connection keeps working afterwards.
    conn.write_all(b"{\"kind\":\"stats\"}\n").expect("follow-up request");
    reply.clear();
    reader.read_line(&mut reply).expect("stats reply");
    assert!(reply.contains("\"kind\":\"stats\""), "connection must survive the cap: {reply:?}");

    // Non-UTF-8 bytes also get an error, not a disconnect.
    conn.write_all(&[0xff, 0xfe, b'\n']).expect("binary junk");
    reply.clear();
    reader.read_line(&mut reply).expect("utf-8 error reply");
    assert!(reply.contains("\"kind\":\"error\""), "{reply:?}");

    let mut client = Client::connect(addr).expect("second client");
    client.request(&Request::Shutdown).expect("ok");
    drop(conn);
    handle.join().expect("daemon exits");
}

#[test]
fn stuck_client_is_dropped_by_the_read_timeout_and_frees_its_worker() {
    // One worker: a stuck client would starve everyone without the
    // timeout.
    let (addr, handle) = spawn_daemon(ServerConfig {
        workers: 1,
        read_timeout: Some(Duration::from_millis(200)),
        write_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    let mut stuck = TcpStream::connect(addr).expect("stuck client connects");
    // Send half a line and then go silent: the server must not wait on
    // the rest forever.
    stuck.write_all(b"{\"kind\":\"sta").expect("partial line");
    stuck.flush().expect("flush partial");

    let started = Instant::now();
    let mut client = Client::connect(addr).expect("well-behaved client");
    let resp = client.request(&Request::Stats).expect("stats despite the stuck peer");
    let Response::Stats(_) = resp else { panic!("want stats, got {resp:?}") };
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the single worker must be freed by the read timeout, not pinned"
    );

    // The stuck connection was closed by the server.
    let mut probe = [0u8; 1];
    stuck.set_read_timeout(Some(Duration::from_secs(5))).expect("probe timeout");
    let n = stuck.read(&mut probe).expect("stuck connection sees EOF");
    assert_eq!(n, 0, "server must have dropped the stuck connection");

    client.request(&Request::Shutdown).expect("ok");
    handle.join().expect("daemon exits");
}
