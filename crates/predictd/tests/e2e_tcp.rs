//! End-to-end over real TCP: a daemon thread on a loopback port, a
//! client exercising the full request surface, and the staleness
//! policy observable on the wire.

use std::net::TcpListener;
use std::thread;

use contention_model::dataset::DataSet;
use contention_model::mix::WorkloadMix;
use contention_model::predict::ParagonTask;
use contention_model::units::{prob, secs};
use predictd::proto::{LoadReport, Predict, Rank, Request, Response};
use predictd::{default_predictor, serve, Client, Service, ServiceConfig};

fn task() -> ParagonTask {
    ParagonTask {
        dcomp_sun: secs(30.0),
        t_paragon: secs(6.0),
        to_backend: vec![DataSet::burst(10, 2000)],
        from_backend: vec![DataSet::single(1000)],
    }
}

fn spawn_daemon() -> (std::net::SocketAddr, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || {
        let service = Service::with_default_predictor(ServiceConfig::default());
        serve(&listener, &service).expect("serve");
    });
    (addr, handle)
}

fn load_report(machine: &str, at: f64, load: f64, frac: f64) -> Request {
    Request::LoadReport(LoadReport { machine: machine.to_string(), at, load, comm_frac: frac })
}

fn predict(machine: &str, now: f64) -> Request {
    Request::Predict(Predict { machine: machine.to_string(), now, task: task(), j_words: 500 })
}

#[test]
fn full_session_over_tcp() {
    let (addr, handle) = spawn_daemon();
    let mut client = Client::connect(addr).expect("connect");

    // Feed a constant load of 2 with a communication fraction.
    for t in 0..4 {
        let resp = client.request(&load_report("m0", f64::from(t), 2.0, 0.5)).expect("ack");
        let Response::Ack(a) = resp else { panic!("want ack, got {resp:?}") };
        assert!(a.accepted);
    }

    // Fresh predict: p = 2, decision bit-identical to a local decide()
    // with the true mix at the EWMA-tracked fraction.
    let resp = client.request(&predict("m0", 3.5)).expect("prediction");
    let Response::Prediction(p) = resp else { panic!("want prediction, got {resp:?}") };
    assert!(!p.stale);
    assert_eq!(p.p, 2);
    // frac_gain 0.3 from Prob::ZERO toward 0.5, four reports.
    let mut frac = 0.0f64;
    for _ in 0..4 {
        frac += 0.3 * (0.5 - frac);
    }
    let truth = WorkloadMix::from_probs(&[prob(frac); 2]);
    let direct = default_predictor().decide(&task(), &truth, 500);
    assert_eq!(p.decision, direct, "wire answer must match the local model bit-for-bit");

    // Far-future predict: the staleness policy degrades to dedicated.
    let resp = client.request(&predict("m0", 1e6)).expect("stale prediction");
    let Response::Prediction(p) = resp else { panic!("want prediction, got {resp:?}") };
    assert!(p.stale, "stale feed must be flagged");
    assert_eq!(p.p, 0);
    assert_eq!(p.forecaster, "dedicated");
    let dedicated = default_predictor().decide(&task(), &WorkloadMix::new(), 500);
    assert_eq!(p.decision, dedicated, "stale answer must be the dedicated decision");

    // Rank the worked example under the forecast.
    let resp = client
        .request(&Request::Rank(Rank {
            machine: "m0".to_string(),
            now: 3.5,
            workflow: hetsched::example::workflow(),
            front_end: 0,
            j_words: 500,
            limit: 2,
        }))
        .expect("ranked");
    let Response::Ranked(r) = resp else { panic!("want ranked, got {resp:?}") };
    assert_eq!(r.total, 4);
    assert_eq!(r.schedules.len(), 2, "limit must truncate");
    assert!(r.schedules[0].makespan <= r.schedules[1].makespan);

    // Malformed line: error response, connection survives.
    let raw = client.request_raw("{\"kind\":\"teleport\"}").expect("error line");
    assert!(raw.contains("\"kind\":\"error\""), "{raw}");

    // Stats reflect everything above.
    let resp = client.request(&Request::Stats).expect("stats");
    let Response::Stats(st) = resp else { panic!("want stats, got {resp:?}") };
    assert_eq!(st.requests.load_report, 4);
    assert_eq!(st.requests.predict, 2);
    assert_eq!(st.requests.rank, 1);
    assert_eq!(st.requests.stats, 1);
    assert_eq!(st.machines, 1);
    assert!(st.cache.hits + st.cache.misses >= 3);
    // 4 load_reports + 2 predicts + 1 rank; the malformed line never
    // reached the handler and stats' own latency lands post-snapshot.
    assert_eq!(st.latency_us.count, 7);
    assert!(st.latency_us.max_us >= st.latency_us.p50_us);

    // Shutdown stops the daemon thread.
    let resp = client.request(&Request::Shutdown).expect("ok");
    assert_eq!(resp, Response::Ok);
    handle.join().expect("daemon thread exits cleanly");
}

#[test]
fn sequential_connections_share_state() {
    let (addr, handle) = spawn_daemon();
    {
        let mut c1 = Client::connect(addr).expect("connect 1");
        for t in 0..3 {
            c1.request(&load_report("shared", f64::from(t), 1.0, -1.0)).expect("ack");
        }
    } // dropping the stream ends connection 1; the daemon keeps running
    let mut c2 = Client::connect(addr).expect("connect 2");
    let resp = c2.request(&predict("shared", 2.5)).expect("prediction");
    let Response::Prediction(p) = resp else { panic!("want prediction, got {resp:?}") };
    assert!(!p.stale, "state from the first connection must persist");
    assert_eq!(p.p, 1);
    c2.request(&Request::Shutdown).expect("ok");
    handle.join().expect("daemon thread exits cleanly");
}
