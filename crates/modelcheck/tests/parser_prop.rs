//! Robustness properties for the hand-rolled lexer and tolerant AST
//! parser: *no input panics them*. The passes run over every `.rs`
//! file in the workspace — including half-saved editor states in a
//! dirty tree — so the frontend must reject or tolerate arbitrary
//! garbage, never crash on it.
//!
//! Two generators attack from opposite directions:
//!
//! * **Token soup** — syntactically plausible fragments (keywords,
//!   idents, delimiters, operators, literals) shuffled into nonsense.
//!   This stresses the parser's recovery paths with input the lexer
//!   happily accepts.
//! * **Byte mutations** — real workspace sources with bytes
//!   overwritten, inserted, or deleted at random offsets. This
//!   stresses the lexer's literal/comment scanning and the parser's
//!   delimiter matching with *almost*-valid input, where tolerant
//!   parsing bugs actually live.
//!
//! Both check the same contract: `lex` returns `Ok` or `Err` (never
//! panics), every token's byte span and line/col sit inside the input,
//! and when the tokens parse, every recorded fn/block/call index is in
//! bounds.

use modelcheck::ast::{self, Ast};
use modelcheck::lexer::{lex, TokKind, Token};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

/// Lex → parse, asserting every span and cross-index is in bounds.
/// Returns without asserting anything else when either stage declines.
fn frontend_holds(text: &str) {
    let Ok(toks) = lex(text) else { return };
    for t in &toks {
        assert!(t.start <= t.end && t.end <= text.len(), "token span out of bounds");
        assert!(t.line >= 1 && t.col >= 1, "token line/col not 1-based");
        assert!(text.get(t.start..t.end).is_some(), "token span splits a char");
    }
    let refs: Vec<&Token<'_>> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let Ok(ast) = ast::parse(&refs) else { return };
    assert_indices_in_bounds(&ast, refs.len());
}

/// Every index the AST records must point into the token slice (or a
/// real arena slot) — a stale index panics some later pass instead.
fn assert_indices_in_bounds(ast: &Ast, n_toks: usize) {
    for f in &ast.fns {
        assert!(f.fn_tok < n_toks, "fn_tok out of bounds");
        if let Some(b) = f.body {
            assert!(b < ast.blocks.len(), "fn body block out of bounds");
        }
    }
    for b in &ast.blocks {
        assert!(b.open <= b.close && b.close < n_toks, "block span out of bounds");
        for s in &b.stmts {
            assert!(s.span.0 <= s.span.1 && s.span.1 <= n_toks, "stmt span out of bounds");
        }
    }
    for c in &ast.calls {
        assert!(c.name_tok < n_toks, "call name out of bounds");
        assert!(c.open <= c.close && c.close < n_toks, "call parens out of bounds");
    }
    for e in &ast.exprs {
        assert!(e.span.0 <= e.span.1 && e.span.1 <= n_toks, "expr span out of bounds");
        for &b in &e.blocks {
            assert!(b < ast.blocks.len(), "expr block out of bounds");
        }
    }
}

/// The token-soup fragment pool: keywords the parser dispatches on,
/// idents, literals, every delimiter, and the operators the item/stmt
/// scanners treat specially.
fn fragment_pool() -> Vec<&'static str> {
    vec![
        "fn",
        "let",
        "impl",
        "mod",
        "match",
        "if",
        "else",
        "for",
        "while",
        "return",
        "pub",
        "use",
        "struct",
        "enum",
        "trait",
        "union",
        "macro_rules",
        "const",
        "static",
        "unsafe",
        "async",
        "extern",
        "type",
        "self",
        "mut",
        "in",
        "x",
        "foo",
        "bar_2",
        "shards",
        "try_from",
        "write_lock",
        "0",
        "42",
        "0xff",
        "1.5e3",
        "\"str\"",
        "\"{ unbalanced\"",
        "'c'",
        "'{'",
        "'static",
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        ";",
        ",",
        ".",
        "::",
        "->",
        "=>",
        "=",
        "!",
        "#",
        "&",
        "|",
        "<",
        ">",
        "?",
        "//! doc\n",
        "// line\n",
        "/* block */",
        "\n",
    ]
}

/// Every `.rs` file in the workspace, loaded once.
fn workspace_sources() -> &'static [(PathBuf, String)] {
    use std::sync::OnceLock;
    static SOURCES: OnceLock<Vec<(PathBuf, String)>> = OnceLock::new();
    SOURCES.get_or_init(|| {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let mut out = Vec::new();
        modelcheck::walk_by(&root, &mut |path: &Path| {
            if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(text) = fs::read_to_string(path) {
                    out.push((path.to_path_buf(), text));
                }
            }
        });
        assert!(out.len() > 50, "walked only {} files", out.len());
        out
    })
}

/// Applies `muts` — `(op, offset, byte)` triples, offsets taken modulo
/// the current length — and re-validates as UTF-8, replacing broken
/// sequences (the scanner only ever sees `&str`).
fn mutate(text: &str, muts: &[(usize, usize, u8)]) -> String {
    let mut bytes = text.as_bytes().to_vec();
    for &(op, at, byte) in muts {
        if bytes.is_empty() {
            break;
        }
        match op % 3 {
            0 => {
                let i = at % bytes.len();
                bytes[i] = byte;
            }
            1 => {
                let i = at % (bytes.len() + 1);
                bytes.insert(i, byte);
            }
            _ => {
                let i = at % bytes.len();
                bytes.remove(i);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary token soup neither panics the lexer nor the parser.
    fn token_soup_never_panics(
        frags in prop::collection::vec(prop::sample::select(fragment_pool()), 0..120),
    ) {
        let mut text = String::new();
        for f in &frags {
            text.push_str(f);
            text.push(' ');
        }
        frontend_holds(&text);
    }

    /// Workspace sources with up to 8 byte-level edits neither panic
    /// the lexer nor the parser. Every case mutates a fresh
    /// pseudo-random file, so the whole tree is covered across cases.
    fn mutated_workspace_sources_never_panic(
        file_idx in 0usize..1_000_000,
        muts in prop::collection::vec((0usize..3, 0usize..1_000_000, 0u8..=255u8), 1..8),
    ) {
        let sources = workspace_sources();
        let (_, text) = &sources[file_idx % sources.len()];
        frontend_holds(&mutate(text, &muts));
    }
}

/// The unmutated tree, exhaustively: every file must round-trip the
/// full frontend with in-bounds spans — not sampled, so a file the
/// random cases never land on still gets checked.
#[test]
fn every_workspace_source_holds_unmutated() {
    for (path, text) in workspace_sources() {
        let held = std::panic::catch_unwind(|| frontend_holds(text));
        assert!(held.is_ok(), "frontend invariants broke on {}", path.display());
    }
}

/// Byte mutations of every file at fixed offsets: a deterministic
/// sweep (delete, overwrite-with-`{`, overwrite-with-`"`) across the
/// whole tree, independent of what the random cases draw.
#[test]
fn deterministic_mutation_sweep_never_panics() {
    for (path, text) in workspace_sources() {
        for (op, byte) in [(2usize, 0u8), (0, b'{'), (0, b'"')] {
            let step = (text.len() / 7).max(1);
            let muts: Vec<(usize, usize, u8)> = (0..7).map(|k| (op, k * step, byte)).collect();
            let mutated = mutate(text, &muts);
            let held = std::panic::catch_unwind(|| frontend_holds(&mutated));
            assert!(held.is_ok(), "frontend panicked on mutated {}", path.display());
        }
    }
}
