//! End-to-end tests: the library scan over a seeded fixture tree, and
//! the `modelcheck` binary's exit codes on both the fixture tree and the
//! real workspace (the shipped tree must be clean — that is the
//! acceptance bar for the pass).

use modelcheck::{scan_workspace, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/ws"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn seeded_violations_are_all_found() {
    let diags = scan_workspace(fixture_root());
    let count = |rule: Rule| diags.iter().filter(|d| d.rule == rule).count();
    assert_eq!(count(Rule::NakedF64), 1, "{diags:?}");
    assert_eq!(count(Rule::MissingDocs), 1, "{diags:?}");
    assert_eq!(count(Rule::NoPanic), 1, "{diags:?}");
    assert_eq!(count(Rule::LossyCast), 1, "{diags:?}");
    assert_eq!(count(Rule::NoTodoDbg), 1, "{diags:?}");
    // The typo fixture's misspelled pragma is itself a diagnostic.
    assert_eq!(count(Rule::Pragma), 1, "{diags:?}");
    // Nothing beyond the seeded six: the two allow comments held, and the
    // unscoped crate (no pragma) contributes nothing despite its unwrap.
    assert_eq!(diags.len(), 6, "{diags:?}");
    assert!(
        !diags.iter().any(|d| d.file.contains("unscoped")),
        "crates without a pragma must stay exempt: {diags:?}"
    );
    // The undocumented naked signature is reported where it starts.
    let naked = diags.iter().find(|d| d.rule == Rule::NakedF64).unwrap();
    assert_eq!(naked.file, "crates/core/src/bad.rs");
    assert_eq!(naked.line, 3);
    let pragma = diags.iter().find(|d| d.rule == Rule::Pragma).unwrap();
    assert_eq!(pragma.file, "crates/typo/src/lib.rs");
    assert!(pragma.message.contains("no-panick"), "{}", pragma.message);
}

#[test]
fn binary_exits_nonzero_on_seeded_tree() {
    let status = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .arg(fixture_root())
        .status()
        .expect("spawn modelcheck");
    assert_eq!(status.code(), Some(1));
}

#[test]
fn binary_is_clean_on_the_shipped_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .arg(repo_root())
        .output()
        .expect("spawn modelcheck");
    assert!(
        out.status.success(),
        "shipped tree has diagnostics:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn json_output_is_machine_readable() {
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .arg("--json")
        .arg(fixture_root())
        .output()
        .expect("spawn modelcheck");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let body = stdout.trim();
    assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
    for rule in ["no-panic", "naked-f64", "lossy-cast", "no-todo-dbg", "missing-docs", "pragma"] {
        assert!(body.contains(&format!("\"rule\":\"{rule}\"")), "missing {rule} in {body}");
    }
}
