//! End-to-end tests: the library scan over a seeded fixture tree, the
//! `modelcheck` binary's exit codes and baseline handling, a lexer
//! self-test over every shipped `.rs` file, and a drift-injection test
//! proving a protocol change without a codec arm fails the scan. The
//! shipped tree must come up clean — that is the acceptance bar.

use modelcheck::passes::drift;
use modelcheck::{scan_workspace, walk_by, Rule};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/ws"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn seeded_violations_are_all_found() {
    let diags = scan_workspace(fixture_root());
    let count = |rule: Rule| diags.iter().filter(|d| d.rule == rule).count();
    assert_eq!(count(Rule::NakedF64), 1, "{diags:?}");
    assert_eq!(count(Rule::MissingDocs), 1, "{diags:?}");
    assert_eq!(count(Rule::NoPanic), 1, "{diags:?}");
    assert_eq!(count(Rule::LossyCast), 1, "{diags:?}");
    // One in src/, one in the core crate's tests/ tree: the global rule
    // covers integration tests, benches, and examples too.
    assert_eq!(count(Rule::NoTodoDbg), 2, "{diags:?}");
    // The typo fixture's misspelled pragma is itself a diagnostic.
    assert_eq!(count(Rule::Pragma), 1, "{diags:?}");
    // The conc crate seeds one of each lock shape (write-in-read-path,
    // nested acquisition, guard across I/O) and both atomics shapes.
    assert_eq!(count(Rule::LockDiscipline), 3, "{diags:?}");
    assert_eq!(count(Rule::Atomics), 2, "{diags:?}");
    // The wire crate seeds every taint sink shape: with_capacity,
    // reserve, resize, repeat-count vec!, slice index, loop bound, and
    // a raw recv_frame* length; its guarded twins stay silent.
    assert_eq!(count(Rule::WireTaint), 7, "{diags:?}");
    // The evloop crate seeds every blocking shape: lock, sleep, and a
    // stdio macro in the annotated loop, plus write_lock and write_all
    // one call level down.
    assert_eq!(count(Rule::EventLoop), 5, "{diags:?}");
    // Nothing beyond the seeded set: the allow comments held, and the
    // unscoped crate (no pragma) contributes nothing despite its unwrap.
    assert_eq!(diags.len(), 24, "{diags:?}");
    assert!(
        !diags.iter().any(|d| d.file.contains("unscoped")),
        "crates without a pragma must stay exempt: {diags:?}"
    );
    // The undocumented naked signature is reported where it starts.
    let naked = diags.iter().find(|d| d.rule == Rule::NakedF64).unwrap();
    assert_eq!(naked.file, "crates/core/src/bad.rs");
    assert_eq!(naked.line, 3);
    let pragma = diags.iter().find(|d| d.rule == Rule::Pragma).unwrap();
    assert_eq!(pragma.file, "crates/typo/src/lib.rs");
    assert!(pragma.message.contains("no-panick"), "{}", pragma.message);
    // The tests-tree finding names the tests-tree file.
    assert!(
        diags.iter().any(|d| d.rule == Rule::NoTodoDbg && d.file == "crates/core/tests/has_dbg.rs"),
        "{diags:?}"
    );
    // But opt-in rules must not leak into tests/ trees: the fixture's
    // unwrap there stays silent.
    assert!(
        !diags.iter().any(|d| d.rule == Rule::NoPanic && d.file.contains("tests/")),
        "{diags:?}"
    );
    // The lock findings cover all three shapes, with spans.
    let locks: Vec<_> = diags.iter().filter(|d| d.rule == Rule::LockDiscipline).collect();
    assert!(locks.iter().any(|d| d.message.contains("read-path")), "{locks:?}");
    assert!(locks.iter().any(|d| d.message.contains("second shard lock")), "{locks:?}");
    assert!(locks.iter().any(|d| d.message.contains("write_all")), "{locks:?}");
    assert!(locks.iter().all(|d| d.col >= 1 && d.end_col > d.col), "{locks:?}");
    // Taint findings name the value, the sink, and the fix.
    let taints: Vec<_> = diags.iter().filter(|d| d.rule == Rule::WireTaint).collect();
    for sink in ["with_capacity", "reserve", "resize", "vec", "slice index", "loop bound"] {
        assert!(taints.iter().any(|d| d.message.contains(sink)), "missing {sink}: {taints:?}");
    }
    // Propagated event-loop findings say which root reaches them.
    let evs: Vec<_> = diags.iter().filter(|d| d.rule == Rule::EventLoop).collect();
    assert_eq!(evs.iter().filter(|d| d.message.contains("called from `event_loop`")).count(), 2);
}

#[test]
fn binary_exits_nonzero_on_seeded_tree() {
    let status = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .arg(fixture_root())
        .status()
        .expect("spawn modelcheck");
    assert_eq!(status.code(), Some(1));
}

#[test]
fn binary_is_clean_on_the_shipped_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .arg(repo_root())
        .output()
        .expect("spawn modelcheck");
    assert!(
        out.status.success(),
        "shipped tree has non-baseline diagnostics:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn json_output_is_machine_readable() {
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .arg("--json")
        .arg(fixture_root())
        .output()
        .expect("spawn modelcheck");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let body = stdout.trim();
    assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
    for rule in [
        "no-panic",
        "naked-f64",
        "lossy-cast",
        "no-todo-dbg",
        "missing-docs",
        "pragma",
        "lock-discipline",
        "atomics",
        "wire-taint",
        "event-loop",
    ] {
        assert!(body.contains(&format!("\"rule\":\"{rule}\"")), "missing {rule} in {body}");
    }
    // v3 fields: family, span, and baseline status on every finding.
    for family in ["style", "config", "concurrency", "dataflow"] {
        assert!(body.contains(&format!("\"family\":\"{family}\"")), "missing {family}");
    }
    assert!(body.contains("\"col\":") && body.contains("\"end_col\":"), "{body}");
    assert!(body.contains("\"baselined\":false"), "{body}");
}

#[test]
fn baseline_accepts_findings_and_catches_drift() {
    let dir = std::env::temp_dir().join(format!("modelcheck-bl-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("mkdir");
    let bl = dir.join("test.baseline");

    // --fix-baseline accepts the seeded findings and exits 0.
    let status = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .args(["--baseline", bl.to_str().unwrap(), "--fix-baseline"])
        .arg(fixture_root())
        .status()
        .expect("spawn modelcheck");
    assert_eq!(status.code(), Some(0));
    let text = fs::read_to_string(&bl).expect("baseline written");
    assert!(text.contains("crates/core/src/bad.rs"), "{text}");
    assert!(text.contains(":no-panic"), "{text}");

    // With everything baselined, the same tree now passes…
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .args(["--baseline", bl.to_str().unwrap()])
        .arg(fixture_root())
        .output()
        .expect("spawn modelcheck");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(baselined)"), "{stdout}");

    // …and baselined findings are marked in the JSON report.
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .args(["--baseline", bl.to_str().unwrap(), "--json"])
        .arg(fixture_root())
        .output()
        .expect("spawn modelcheck");
    assert_eq!(out.status.code(), Some(0));
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("\"baselined\":true"), "{body}");
    assert!(!body.contains("\"baselined\":false"), "{body}");

    // A baseline missing one entry leaves that finding an error.
    let pruned: String =
        text.lines().filter(|l| !l.contains("no-panic")).collect::<Vec<_>>().join("\n");
    fs::write(&bl, pruned).expect("rewrite baseline");
    let status = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .args(["--baseline", bl.to_str().unwrap()])
        .arg(fixture_root())
        .status()
        .expect("spawn modelcheck");
    assert_eq!(status.code(), Some(1));

    let _ = fs::remove_dir_all(&dir);
}

/// Every shipped `.rs` file must tokenize: the passes degrade to line
/// scanning on a lex failure, and that fallback should never be needed
/// on our own tree.
#[test]
fn lexer_handles_every_workspace_file() {
    let root = repo_root();
    let mut checked = 0usize;
    walk_by(&root, &mut |path: &Path| {
        if path.extension().is_some_and(|e| e == "rs") {
            let Ok(text) = fs::read_to_string(path) else { return };
            if let Err(e) = modelcheck::lexer::lex(&text) {
                panic!("{} does not lex: {}:{}: {}", path.display(), e.line, e.col, e.message);
            }
            checked += 1;
        }
    });
    assert!(checked > 50, "walked only {checked} files under {}", root.display());
}

/// The acceptance scenario for protocol drift: adding a variant to the
/// real proto.rs without touching the real codec.rs must fail the scan.
#[test]
fn drift_fires_when_a_proto_variant_lacks_a_codec_arm() {
    let root = repo_root();
    let proto = fs::read_to_string(root.join(drift::PROTO_REL)).expect("proto.rs");
    let codec = fs::read_to_string(root.join(drift::CODEC_REL)).expect("codec.rs");
    let binproto = fs::read_to_string(root.join(drift::BINPROTO_REL)).expect("binproto.rs");
    let design = fs::read_to_string(root.join(drift::DESIGN_REL)).expect("DESIGN.md");
    let gateway = fs::read_to_string(root.join(drift::GATEWAY_REL)).expect("gateway.rs");
    let journal = fs::read_to_string(root.join(drift::JOURNAL_REL)).expect("journal.rs");

    // The shipped protocol agrees with itself.
    let clean = drift::check(
        drift::PROTO_REL,
        &proto,
        drift::CODEC_REL,
        &codec,
        drift::BINPROTO_REL,
        Some(&binproto),
        "DESIGN.md",
        Some(&design),
        drift::GATEWAY_REL,
        Some(&gateway),
        drift::JOURNAL_REL,
        Some(&journal),
    );
    assert!(clean.is_empty(), "{clean:?}");

    // Inject a new request variant + kind arm into the proto text only.
    let injected = proto
        .replacen("pub enum Request {", "pub enum Request {\n    Probe,", 1)
        .replacen("match self {", "match self {\n            Request::Probe => \"probe\",", 1);
    assert_ne!(injected, proto, "injection points vanished from proto.rs");
    let diags = drift::check(
        drift::PROTO_REL,
        &injected,
        drift::CODEC_REL,
        &codec,
        drift::BINPROTO_REL,
        Some(&binproto),
        "DESIGN.md",
        Some(&design),
        drift::GATEWAY_REL,
        Some(&gateway),
        drift::JOURNAL_REL,
        Some(&journal),
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::ProtocolDrift
            && d.file == drift::CODEC_REL
            && d.message.contains("\"probe\"")),
        "expected a codec drift finding for the injected variant: {diags:?}"
    );
    // The binary codec has no frame layout for the new kind either.
    assert!(
        diags.iter().any(|d| d.rule == Rule::ProtocolDrift
            && d.file == drift::BINPROTO_REL
            && d.message.contains("\"probe\"")
            && d.message.contains("binary")),
        "expected a binary-codec drift finding for the injected variant: {diags:?}"
    );
    // The documentation table is missing the new kind too.
    assert!(
        diags.iter().any(|d| d.rule == Rule::ProtocolDrift && d.file == "DESIGN.md"),
        "{diags:?}"
    );
    // And the gateway has no dispatch arm for it: a federated client
    // would be rejected at the gateway for a kind the backends accept.
    assert!(
        diags.iter().any(|d| d.rule == Rule::ProtocolDrift
            && d.file == drift::GATEWAY_REL
            && d.message.contains("\"probe\"")
            && d.message.contains("gateway")),
        "expected a gateway drift finding for the injected variant: {diags:?}"
    );

    // Same rule for the journal's on-disk format: a new record tag in
    // journal.rs without a DESIGN.md table row must fail the scan.
    let j_injected = journal.replacen(
        "pub const REC_META",
        "pub const REC_PROBE: u8 = 0x7f;\npub const REC_META",
        1,
    );
    assert_ne!(j_injected, journal, "injection point vanished from journal.rs");
    let diags = drift::check(
        drift::PROTO_REL,
        &proto,
        drift::CODEC_REL,
        &codec,
        drift::BINPROTO_REL,
        Some(&binproto),
        "DESIGN.md",
        Some(&design),
        drift::GATEWAY_REL,
        Some(&gateway),
        drift::JOURNAL_REL,
        Some(&j_injected),
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::ProtocolDrift
            && d.file == drift::JOURNAL_REL
            && d.message.contains("REC_PROBE")),
        "expected a journal drift finding for the injected record: {diags:?}"
    );
}

/// Every shipped `.rs` file must also *parse*: the structural passes
/// skip a file on delimiter mismatch, and that degradation should
/// never trigger on our own tree.
#[test]
fn parser_handles_every_workspace_file() {
    use modelcheck::lexer::{lex, TokKind, Token};
    let root = repo_root();
    let mut checked = 0usize;
    walk_by(&root, &mut |path: &Path| {
        if path.extension().is_some_and(|e| e == "rs") {
            let Ok(text) = fs::read_to_string(path) else { return };
            let toks = lex(&text)
                .unwrap_or_else(|e| panic!("{} does not lex: {}", path.display(), e.message));
            let refs: Vec<&Token<'_>> = toks
                .iter()
                .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
                .collect();
            if let Err(e) = modelcheck::ast::parse(&refs) {
                panic!("{} does not parse: {}:{}: {}", path.display(), e.line, e.col, e.message);
            }
            checked += 1;
        }
    });
    assert!(checked > 50, "walked only {checked} files under {}", root.display());
}

/// `--list-rules` pins the catalog: one tab-separated line per rule in
/// `Rule::ALL` order, with family, pragma spelling (or `-` for
/// always-on rules), and a description.
#[test]
fn list_rules_pins_the_catalog() {
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .arg("--list-rules")
        .output()
        .expect("spawn modelcheck");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), Rule::ALL.len(), "{stdout}");
    for (line, rule) in lines.iter().zip(Rule::ALL) {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 4, "{line}");
        assert_eq!(fields[0], rule.name(), "{line}");
        assert_eq!(fields[1], rule.family(), "{line}");
        assert_eq!(fields[2], rule.pragma_spelling().unwrap_or("-"), "{line}");
        assert!(!fields[3].is_empty(), "{line}");
    }
    // Spot-pin the v4 rules, the v5 rule, and one always-on rule.
    assert!(lines.iter().any(|l| l.starts_with("wire-taint\tdataflow\twire-taint\t")), "{stdout}");
    assert!(
        lines.iter().any(|l| l.starts_with("event-loop\tconcurrency\tevent-loop\t")),
        "{stdout}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("lock-order\tconcurrency\tlock-order\t")),
        "{stdout}"
    );
    assert!(lines.iter().any(|l| l.starts_with("protocol-drift\tprotocol\t-\t")), "{stdout}");
}

/// `--emit github` renders one workflow command per finding, with the
/// span properties CI needs to attach inline PR annotations, and keeps
/// the baselined/new split (warning vs error).
#[test]
fn github_emit_renders_workflow_commands() {
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .args(["--emit", "github"])
        .arg(fixture_root())
        .output()
        .expect("spawn modelcheck");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for line in stdout.lines() {
        assert!(line.starts_with("::error ") || line.starts_with("::warning "), "{line}");
        assert!(line.contains("file=") && line.contains(",line="), "{line}");
        assert!(line.contains(",col=") && line.contains(",endColumn="), "{line}");
        assert!(line.contains("title=modelcheck "), "{line}");
        assert!(line.contains("::"), "{line}");
    }
    // The seeded naked-f64 finding is annotated at its real location…
    assert!(
        stdout.contains("::error file=crates/core/src/bad.rs,line=3,"),
        "missing the naked-f64 annotation: {stdout}"
    );
    // …and message text never leaks a raw newline (workflow commands
    // are line-oriented; the emitter escapes to %0A).
    assert_eq!(stdout.lines().count(), 24, "{stdout}");

    // An unknown emit mode is a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .args(["--emit", "sarif"])
        .arg(fixture_root())
        .output()
        .expect("spawn modelcheck");
    assert_eq!(out.status.code(), Some(2));
}

/// Builds a one-crate temp tree whose root pragma opts into `rules`,
/// with `files` under `crates/p/src/`, and returns the scan's exit
/// code plus stdout.
fn scan_temp_tree(tag: &str, rules: &str, files: &[(&str, &str)]) -> (i32, String) {
    let dir = std::env::temp_dir().join(format!("modelcheck-inj-{tag}-{}", std::process::id()));
    let src = dir.join("crates").join("p").join("src");
    fs::create_dir_all(&src).expect("mkdir");
    // A Cargo.toml marks the directory as a crate root, which is what
    // makes the scanner read the lib.rs pragma for the whole crate.
    fs::write(
        dir.join("crates").join("p").join("Cargo.toml"),
        "[package]\nname = \"p\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .expect("write Cargo.toml");
    let mut lib = format!("//! Injection fixture crate root.\n//!\n//! modelcheck: {rules}\n\n");
    for (name, _) in files {
        lib.push_str(&format!("pub mod {};\n", name.trim_end_matches(".rs")));
    }
    fs::write(src.join("lib.rs"), lib).expect("write lib.rs");
    for (name, text) in files {
        fs::write(src.join(name), text).expect("write module");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_modelcheck"))
        .arg(&dir)
        .output()
        .expect("spawn modelcheck");
    let _ = fs::remove_dir_all(&dir);
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The acceptance scenario for wire-taint: deleting the real bounds
/// check in `binproto.rs`'s matrix decoder must fail the scan — the
/// decoded dimension flows to a loop bound with nothing dominating it.
#[test]
fn wire_taint_fires_when_a_real_bounds_check_is_deleted() {
    let binproto =
        fs::read_to_string(repo_root().join("crates/proto/src/binproto.rs")).expect("binproto");

    // The shipped decoder is clean under the wire-taint rule.
    let (code, stdout) = scan_temp_tree("wt-clean", "wire-taint", &[("binproto.rs", &binproto)]);
    assert_eq!(code, 0, "shipped binproto.rs must scan clean:\n{stdout}");

    // Delete the matrix-size guard and nothing else.
    let guard = "if need > self.remaining() {\n            \
                 return Err(err(format!(\"matrix size {n} exceeds frame\")));\n        }";
    let mutated = binproto.replacen(guard, "let _ = need;", 1);
    assert_ne!(mutated, binproto, "the matrix bounds check moved; update this test");

    let (code, stdout) = scan_temp_tree("wt-inj", "wire-taint", &[("binproto.rs", &mutated)]);
    assert_eq!(code, 1, "deleting the bounds check must fail the scan:\n{stdout}");
    assert!(stdout.contains("wire-taint"), "{stdout}");
    assert!(stdout.contains("`n`"), "the finding names the tainted value: {stdout}");
}

/// The acceptance scenario for lock-order: two functions that each
/// hold one shard lock while calling a helper that takes the *other*
/// shard — an ordering cycle no single function exhibits — planted in
/// the real service.rs must fail the scan.
#[test]
fn lock_order_fires_on_an_opposite_order_cycle_split_across_functions() {
    let service =
        fs::read_to_string(repo_root().join("crates/predictd/src/service.rs")).expect("service");

    // The shipped service is clean under the lock-order rule.
    let (code, stdout) = scan_temp_tree("lo-clean", "lock-order", &[("service.rs", &service)]);
    assert_eq!(code, 0, "shipped service.rs must scan clean:\n{stdout}");

    // Each injected pair is individually innocent: one guard, one call.
    // Only the cross-function order — 0 then 1 in the even path, 1 then
    // 0 in the odd path — closes the cycle.
    let injected = format!(
        "{service}\n\
         impl Service {{\n\
         \x20   fn merge_even(&self) {{\n\
         \x20       let a = write_lock(&self.shards[0]);\n\
         \x20       self.finish_even();\n\
         \x20       drop(a);\n\
         \x20   }}\n\
         \x20   fn finish_even(&self) {{\n\
         \x20       let b = write_lock(&self.shards[1]);\n\
         \x20       drop(b);\n\
         \x20   }}\n\
         \x20   fn merge_odd(&self) {{\n\
         \x20       let a = write_lock(&self.shards[1]);\n\
         \x20       self.finish_odd();\n\
         \x20       drop(a);\n\
         \x20   }}\n\
         \x20   fn finish_odd(&self) {{\n\
         \x20       let b = write_lock(&self.shards[0]);\n\
         \x20       drop(b);\n\
         \x20   }}\n\
         }}\n"
    );
    let (code, stdout) = scan_temp_tree("lo-inj", "lock-order", &[("service.rs", &injected)]);
    assert_eq!(code, 1, "the opposite-order pair must fail the scan:\n{stdout}");
    assert!(stdout.contains("lock-order"), "{stdout}");
    assert!(
        stdout.contains("shards[0]") && stdout.contains("shards[1]"),
        "the finding names both lock classes: {stdout}"
    );
}

/// The acceptance scenario for interprocedural wire-taint: deleting
/// the caller-side `.min(clean_len)` cap in the real journal replay —
/// the bound that re-establishes what `scan()` proved — must fail the
/// scan, because the on-disk length flows to a slice index unchecked.
#[test]
fn wire_taint_fires_when_the_journal_replay_cap_is_deleted() {
    let journal =
        fs::read_to_string(repo_root().join("crates/predictgw/src/journal.rs")).expect("journal");

    // The shipped journal is clean under the wire-taint rule.
    let (code, stdout) = scan_temp_tree("jr-clean", "wire-taint", &[("journal.rs", &journal)]);
    assert_eq!(code, 0, "shipped journal.rs must scan clean:\n{stdout}");

    // Delete the replay cap and nothing else.
    let mutated = journal.replacen("(pos + 4 + len).min(clean_len)", "pos + 4 + len", 1);
    assert_ne!(mutated, journal, "the replay cap moved; update this test");

    let (code, stdout) = scan_temp_tree("jr-inj", "wire-taint", &[("journal.rs", &mutated)]);
    assert_eq!(code, 1, "deleting the replay cap must fail the scan:\n{stdout}");
    assert!(stdout.contains("wire-taint"), "{stdout}");
    assert!(stdout.contains("`end`"), "the finding names the tainted value: {stdout}");
}

/// The acceptance scenario for event-loop purity: a `thread::sleep`
/// planted in the evented engine's annotated entry point must fail the
/// scan.
#[test]
fn event_loop_fires_when_sleep_is_planted_in_the_real_loop() {
    let engine = fs::read_to_string(repo_root().join("crates/predictd/src/server_evented.rs"))
        .expect("server_evented");

    // The shipped engine is clean under the event-loop rule.
    let (code, stdout) = scan_temp_tree("ev-clean", "event-loop", &[("engine.rs", &engine)]);
    assert_eq!(code, 0, "shipped server_evented.rs must scan clean:\n{stdout}");

    // Plant a sleep right after the loop sets up its epoll.
    let anchor = "let epoll = Epoll::new()?;";
    let planted = format!("{anchor}\n    std::thread::sleep(std::time::Duration::from_millis(1));");
    let mutated = engine.replacen(anchor, &planted, 1);
    assert_ne!(mutated, engine, "the epoll setup anchor moved; update this test");

    let (code, stdout) = scan_temp_tree("ev-inj", "event-loop", &[("engine.rs", &mutated)]);
    assert_eq!(code, 1, "a planted sleep must fail the scan:\n{stdout}");
    assert!(stdout.contains("event-loop"), "{stdout}");
    assert!(stdout.contains("sleep"), "{stdout}");
    assert!(stdout.contains("event_loop"), "the finding names the entry point: {stdout}");
}
