// Integration-test fixture: the global no-todo-dbg rule must apply to
// tests/ trees too, not just src/ — while the crate's opt-in rules
// (the unwrap below would trip no-panic in src/) must not.

#[test]
fn leftover_debugging() {
    let v = vec![1u32];
    let first = *v.first().unwrap();
    dbg!(first);
}
