// Seeded violations; this tree is only ever scanned by the modelcheck tests.

pub fn naked(x: f64) -> f64 {
    x
}

/// Documented, but unwraps.
pub fn panics(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

/// Documented; the allow above the signature covers only the rule it names.
// modelcheck-allow: naked-f64 — fixture: the cast below is the target here
pub fn lossy(n: u64) -> f64 {
    n as f64
}

/// The escape hatch suppresses the named rule on the annotated line.
pub fn allowed(n: u64) -> u64 {
    let _x = n as f64; // modelcheck-allow: lossy-cast — fixture
    n
}

fn unfinished() {
    todo!()
}
