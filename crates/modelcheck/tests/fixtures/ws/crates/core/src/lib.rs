//! Fixture crate opting into every rule.
//!
//! modelcheck: no-panic, naked-f64, lossy-cast, missing-docs

pub mod bad;
