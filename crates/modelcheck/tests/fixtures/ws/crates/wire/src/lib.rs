//! Fixture crate opting into the wire-taint dataflow rule. Seeded
//! violations: one of each sink shape fed by an unguarded wire-decoded
//! length — capacity allocation, `reserve`, `resize`, the repeat-count
//! `vec!`, a slice index, a loop bound, and a raw `recv_frame*`
//! length. The guarded twins stay silent: `.min(` caps at the binding
//! or the use, an early-return bounds check, else-branch domination,
//! and an `assert!`.
//!
//! modelcheck: wire-taint

/// A stand-in wire cursor over a received frame.
pub struct Cur {
    /// Remaining frame bytes.
    pub buf: Vec<u8>,
}

impl Cur {
    /// Decodes a little-endian length word off the wire.
    pub fn u32(&mut self) -> u32 {
        let mut word = [0u8; 4];
        word.copy_from_slice(&self.buf[..4]);
        u32::from_le_bytes(word)
    }
}

/// A stand-in frame receive whose name marks its result wire-derived.
pub fn recv_frame_len(_sock: &mut impl std::io::Read) -> usize {
    8
}

/// Seeded: a tainted capacity allocation.
pub fn alloc_with_capacity(cur: &mut Cur) -> Vec<u8> {
    let len = cur.u32() as usize;
    Vec::with_capacity(len)
}

/// Seeded: a tainted `reserve`.
pub fn grow_reserve(cur: &mut Cur, out: &mut Vec<u8>) {
    let extra = cur.u32() as usize;
    out.reserve(extra);
}

/// Seeded: a tainted `resize`.
pub fn grow_resize(cur: &mut Cur, out: &mut Vec<u8>) {
    let len = cur.u32() as usize;
    out.resize(len, 0);
}

/// Seeded: a tainted repeat count in `vec!`.
pub fn alloc_vec_macro(cur: &mut Cur) -> Vec<u8> {
    let n = cur.u32() as usize;
    vec![0u8; n]
}

/// Seeded: a tainted slice index.
pub fn index_unchecked(cur: &mut Cur, table: &[u8]) -> u8 {
    let idx = cur.u32() as usize;
    table[idx]
}

/// Seeded: a tainted loop bound.
pub fn loop_unchecked(cur: &mut Cur) -> u64 {
    let rows = cur.u32() as usize;
    let mut acc = 0u64;
    for _ in 0..rows {
        acc += 1;
    }
    acc
}

/// Seeded: a raw `recv_frame*` length used directly as a resize.
pub fn recv_unchecked(sock: &mut impl std::io::Read) -> Vec<u8> {
    let len = recv_frame_len(sock);
    let mut body = Vec::new();
    body.resize(len, 0);
    body
}

/// Not seeded: `.min(` at the use site caps the allocation.
pub fn capped_at_use(cur: &mut Cur) -> Vec<u8> {
    let len = cur.u32() as usize;
    Vec::with_capacity(len.min(4096))
}

/// Not seeded: `.min(` at the binding cleans every later use.
pub fn capped_at_binding(sock: &mut impl std::io::Read) -> Vec<u8> {
    let len = recv_frame_len(sock).min(4096);
    let mut body = Vec::new();
    body.resize(len, 0);
    body
}

/// Not seeded: an early-return bounds check dominates the sink.
pub fn guarded_by_early_return(cur: &mut Cur, max: usize) -> Vec<u8> {
    let len = cur.u32() as usize;
    if len > max {
        return Vec::new();
    }
    vec![0u8; len]
}

/// Not seeded: the branches of a bounds check are each dominated.
pub fn guarded_by_else(cur: &mut Cur, max: usize) -> Vec<u8> {
    let len = cur.u32() as usize;
    if len > max {
        Vec::new()
    } else {
        Vec::with_capacity(len)
    }
}

/// Not seeded: an `assert!` establishes the bound before the index.
pub fn guarded_by_assert(cur: &mut Cur, table: &[u8]) -> u8 {
    let idx = cur.u32() as usize;
    assert!(idx < table.len());
    table[idx]
}

/// Not seeded: the allow escape hatch holds with a stated reason.
pub fn allowed_with_reason(cur: &mut Cur) -> Vec<u8> {
    let len = cur.u32() as usize;
    // modelcheck-allow: wire-taint — fixture: peer is loopback-only here
    Vec::with_capacity(len)
}
