//! Fixture crate opting into the concurrency rules. Seeded violations:
//! one of each lock-discipline shape plus both atomics shapes.
//!
//! modelcheck: lock-discipline, atomics

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// A stand-in shard.
pub struct Shard {
    /// Payload.
    pub data: Vec<u64>,
}

/// Seeded: a write lock inside a declared read path.
// modelcheck: read-path
pub fn read_path_takes_write(s: &RwLock<Shard>) -> usize {
    let g = s.write().unwrap();
    g.data.len()
}

/// Seeded: a second shard lock while the first guard is live.
pub fn nested_locks(a: &RwLock<Shard>, b: &RwLock<Shard>) -> usize {
    let ga = a.read().unwrap();
    let gb = b.read().unwrap();
    ga.data.len() + gb.data.len()
}

/// Seeded: socket I/O under a live guard.
pub fn io_under_guard(s: &RwLock<Shard>, out: &mut std::net::TcpStream) {
    let g = s.read().unwrap();
    let _ = out.write_all(&g.data[0].to_le_bytes());
}

/// Seeded: a strong ordering with no justifying allow.
pub fn unjustified_seqcst(b: &AtomicBool) {
    b.store(true, Ordering::SeqCst);
}

/// Seeded: a torn read-modify-write of an atomic counter.
pub fn torn_counter_bump(c: &AtomicU64) {
    c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
}

/// Not seeded: the allow escape hatch holds for justified orderings.
pub fn justified_acqrel(c: &AtomicU64) -> u64 {
    // modelcheck-allow: atomics — fixture: a justified strong ordering
    // stays silent even with the reason spread over two lines.
    c.fetch_add(1, Ordering::AcqRel)
}
