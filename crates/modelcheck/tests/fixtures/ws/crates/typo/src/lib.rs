//! Fixture crate whose pragma misspells a rule name.
//!
//! modelcheck: no-panick
