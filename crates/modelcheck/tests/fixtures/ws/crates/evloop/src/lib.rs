//! Fixture crate opting into the event-loop purity rule. Seeded
//! violations: the annotated loop blocks three ways itself (mutex
//! lock, sleep, stdio macro), and its directly-called helper blocks
//! two more (shard write-lock, `write_all`). Unannotated functions,
//! `read_lock`, and the justified allow stay silent.
//!
//! modelcheck: event-loop

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared loop state.
pub struct State {
    /// Request tally, mutex-guarded (wrongly, for the fixture).
    pub hits: Mutex<u64>,
    /// Lock-free epoch counter for the designed read path.
    pub epoch: AtomicU64,
}

/// Seeded: the annotated loop itself blocks three ways.
// modelcheck: event-loop
pub fn event_loop(st: &State) {
    let mut g = st.hits.lock().unwrap();
    *g += 1;
    std::thread::sleep(std::time::Duration::from_millis(1));
    println!("tick {g}");
    drop(g);
    accept_ready(st);
}

/// Seeded: a shard write-lock and blocking I/O one call level down.
pub fn accept_ready(st: &State) {
    use std::io::Write as _;
    let hits = write_lock(st);
    let mut out: Vec<u8> = Vec::new();
    let _ = out.write_all(&hits.to_le_bytes());
}

/// A stand-in shard write-lock acquisition (lock-free here so its own
/// body seeds nothing — only the *call* above is the finding).
pub fn write_lock(st: &State) -> u64 {
    st.epoch.load(Ordering::Relaxed)
}

/// Not seeded: `read_lock` is the designed hot path and stays exempt.
// modelcheck: event-loop
pub fn on_readable(st: &State) -> u64 {
    read_lock(st)
}

/// A stand-in core-local replica read (lock-free by design).
pub fn read_lock(st: &State) -> u64 {
    st.epoch.load(Ordering::Relaxed)
}

/// Not seeded: blocking is fine off-loop in an unannotated fn.
pub fn offline_maintenance(st: &State) {
    std::thread::sleep(std::time::Duration::from_millis(5));
    let mut g = st.hits.lock().unwrap();
    *g = 0;
}

/// Not seeded: the allow escape hatch holds with a stated reason.
// modelcheck: event-loop
pub fn startup(st: &State) {
    // modelcheck-allow: event-loop — fixture: banner prints before the loop spins
    eprintln!("listening, epoch {}", st.epoch.load(Ordering::Relaxed));
}
