// No pragma: this crate never opted in, so only the global rule applies.

pub fn undocumented_and_panicky(v: &[u32]) -> f64 {
    *v.first().unwrap() as f64
}
