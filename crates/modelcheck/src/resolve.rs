//! Name-resolution and guard-shape helpers shared by the AST passes.
//!
//! Nothing here is a full resolver — the analyzer works one crate at a
//! time with no type information. What the passes need is much
//! smaller: "is this `fn` annotated with a marker comment", "does this
//! span mention that identifier", "is this condition an ordering
//! comparison", "does this block bail out early". Those queries live
//! here so `taint.rs` and `event_loop.rs` stay about *policy*, not
//! token mechanics.

use crate::ast::{Ast, Block, FnDef, Span};
use crate::lexer::{TokKind, Token};
use crate::passes::FileInput;
use std::collections::HashMap;

/// True when the function starting on 1-based `fn_line` carries the
/// given marker comment (`modelcheck: read-path`,
/// `modelcheck: event-loop`, …) — trailing on the `fn` line or in the
/// contiguous comment/attribute block above it.
pub fn fn_annotated(input: &FileInput<'_>, fn_line: usize, marker: &str) -> bool {
    let idx = fn_line - 1;
    if input.raw_lines.get(idx).is_some_and(|l| l.contains(marker)) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = input.raw_lines[j].trim_start();
        if t.starts_with("//") || t.starts_with("#[") {
            if t.contains(marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// True when any identifier token in `span` is exactly `name`.
pub fn span_mentions(toks: &[&Token<'_>], span: Span, name: &str) -> bool {
    toks[span.0..span.1.min(toks.len())].iter().any(|t| t.kind == TokKind::Ident && t.text == name)
}

/// True when `span` contains an ordering comparison (`<`, `<=`, `>`,
/// `>=`) at any depth. Equality is deliberately excluded — `len == 0`
/// proves nothing about an upper bound — and shifts (`<<`, `>>`),
/// arrows (`->`, `=>`), and generic-argument brackets written as
/// `::<…>` are filtered out.
pub fn has_ordering_cmp(toks: &[&Token<'_>], span: Span) -> bool {
    let end = span.1.min(toks.len());
    let mut angle = 0i64;
    for k in span.0..end {
        let t = toks[k];
        // Inside a `::<…>` turbofish, track bracket depth so its
        // closing `>` (possibly nested, `Vec<Vec<u8>>`) is not a cmp.
        if angle > 0 {
            match t.text {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            continue;
        }
        if t.text == "<" && k > 0 && toks[k - 1].text == ":" {
            angle = 1;
            continue;
        }
        if t.text != "<" && t.text != ">" {
            continue;
        }
        let fused_prev = k > 0 && toks[k - 1].end == t.start;
        let fused_next = k + 1 < toks.len() && t.end == toks[k + 1].start;
        let prev = if k > 0 { toks[k - 1].text } else { "" };
        let next = if k + 1 < toks.len() { toks[k + 1].text } else { "" };
        // `<<` / `>>` shifts, `->` / `=>` arrows, turbofish `::<`.
        if fused_next && next == t.text {
            continue;
        }
        if fused_prev && (prev == t.text || (t.text == ">" && matches!(prev, "-" | "="))) {
            continue;
        }
        if t.text == "<" && prev == ":" {
            continue;
        }
        return true;
    }
    false
}

/// True when the block contains an early exit (`return`, `break`,
/// `continue`) or a diverging `Err(...)?`-style bail anywhere inside —
/// the shape of a bounds-check guard body.
pub fn block_has_early_exit(toks: &[&Token<'_>], block: &Block) -> bool {
    toks[block.open + 1..block.close]
        .iter()
        .any(|t| t.kind == TokKind::Ident && matches!(t.text, "return" | "break" | "continue"))
}

/// The callee name of a call, as source text.
pub fn call_name<'a>(toks: &[&Token<'a>], name_tok: usize) -> &'a str {
    toks[name_tok].text
}

/// Function definitions indexed by name. Resolution is *unique-name
/// only*: a name mapping to two or more definitions in the crate
/// (different impls, shadowed helpers) resolves to nothing, which
/// keeps the one-level call propagation in the event-loop pass from
/// chasing lookalikes.
pub struct FnIndex<'f> {
    by_name: HashMap<&'f str, Vec<&'f FnDef>>,
}

impl<'f> FnIndex<'f> {
    /// Indexes every function in `asts` (one entry per file).
    pub fn new(asts: impl IntoIterator<Item = &'f Ast>) -> Self {
        let mut by_name: HashMap<&str, Vec<&FnDef>> = HashMap::new();
        for ast in asts {
            for f in &ast.fns {
                by_name.entry(f.name.as_str()).or_default().push(f);
            }
        }
        FnIndex { by_name }
    }

    /// The unique definition for `name`, when exactly one exists.
    pub fn unique(&self, name: &str) -> Option<&'f FnDef> {
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([one]) => Some(one),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;
    use crate::FileScope;

    #[test]
    fn ordering_cmp_skips_shifts_arrows_and_turbofish() {
        let toks = lex("a << 2; b -> c; d => e; f::<u32>(); g.sum::<u64>()\n").unwrap();
        let refs: Vec<&Token<'_>> = toks.iter().collect();
        assert!(!has_ordering_cmp(&refs, (0, refs.len())));
        let toks = lex("if n > max_frame_bytes\n").unwrap();
        let refs: Vec<&Token<'_>> = toks.iter().collect();
        assert!(has_ordering_cmp(&refs, (0, refs.len())));
        let toks = lex("if n <= cap\n").unwrap();
        let refs: Vec<&Token<'_>> = toks.iter().collect();
        assert!(has_ordering_cmp(&refs, (0, refs.len())));
        let toks = lex("if n == 0\n").unwrap();
        let refs: Vec<&Token<'_>> = toks.iter().collect();
        assert!(!has_ordering_cmp(&refs, (0, refs.len())));
    }

    #[test]
    fn fn_annotated_sees_trailing_and_block_markers() {
        let src = "// modelcheck: event-loop\n#[inline]\nfn a() {}\n\nfn b() {}\n";
        let (input, _) = FileInput::build("x.rs", src, FileScope::ALL);
        assert!(fn_annotated(&input, 3, "modelcheck: event-loop"));
        assert!(!fn_annotated(&input, 5, "modelcheck: event-loop"));
    }

    #[test]
    fn unique_name_resolution_rejects_duplicates() {
        let src = "fn only() {}\nimpl A { fn dup(&self) {} }\nimpl B { fn dup(&self) {} }\n";
        let toks = lex(src).unwrap();
        let refs: Vec<&Token<'_>> = toks.iter().collect();
        let ast = parse(&refs).unwrap();
        let idx = FnIndex::new([&ast]);
        assert!(idx.unique("only").is_some());
        assert!(idx.unique("dup").is_none());
        assert!(idx.unique("absent").is_none());
    }
}
