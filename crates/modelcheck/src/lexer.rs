//! A hand-rolled Rust lexer: the foundation of the v3 multi-pass
//! analyzer.
//!
//! The v2 scanner worked line by line and could be fooled by exactly
//! the constructs Rust makes easy: `//` inside a string literal,
//! `panic!` inside a *block* comment, raw strings holding arbitrary
//! code. The lexer tokenizes whole files instead — normal and raw
//! strings (any `#` depth, `b`/`c` prefixes), char literals vs
//! lifetimes, nested block comments, numbers with exponents — and
//! every token carries its span (line, column, byte range), so passes
//! can point diagnostics at the offending token rather than a whole
//! line.
//!
//! It is still zero-dependency and deliberately *not* a parser: no
//! AST, no name resolution. Passes walk the token stream with small
//! local state machines (brace depth, guard liveness), which is enough
//! for the repo-local invariants modelcheck enforces and keeps a full
//! workspace scan in the low milliseconds.
//!
//! Robustness bar: every `.rs` file in the workspace must lex without
//! error (pinned by a self-test in `tests/cli.rs`); a file that fails
//! to lex surfaces as a [`crate::Rule::Lex`] diagnostic, never a
//! panic.

/// What a token is, at the granularity the passes need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (includes raw identifiers like `r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Integer or float literal, including suffixes (`1_000u64`, `1.5e-3`).
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `// …` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` comment, nesting tracked.
    BlockComment,
    /// A single punctuation byte (`{`, `:`, `=`, …). Multi-byte
    /// operators arrive as adjacent tokens; passes that care check
    /// adjacency via [`Token::end`].
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokKind,
    /// The exact source slice (quotes and prefixes included).
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// 1-based byte column of the token's first byte.
    pub col: usize,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

/// Where and why lexing failed (unterminated string/char/comment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending construct's start.
    pub line: usize,
    /// 1-based byte column of the offending construct's start.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

/// True for bytes that can start an identifier. Non-ASCII leading
/// bytes count: Rust identifiers may be Unicode and the lexer only
/// needs to group them, not validate them.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for bytes that can continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    text: &'a str,
    b: &'a [u8],
    i: usize,
    line: usize,
    /// Byte offset where the current line starts (for columns).
    line_start: usize,
}

impl<'a> Lexer<'a> {
    fn col(&self, at: usize) -> usize {
        at - self.line_start + 1
    }

    fn err(&self, start: usize, start_line: usize, start_col: usize, what: &str) -> LexError {
        let _ = start;
        LexError { line: start_line, col: start_col, message: what.to_string() }
    }

    fn newline(&mut self, at: usize) {
        self.line += 1;
        self.line_start = at + 1;
    }

    /// Advances past one byte, tracking newlines.
    fn bump(&mut self) {
        if self.b[self.i] == b'\n' {
            self.newline(self.i);
        }
        self.i += 1;
    }

    /// Consumes a `// …` comment (terminator newline excluded).
    fn line_comment(&mut self) {
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
    }

    /// Consumes a nested `/* … */` comment; `self.i` sits on the `/`.
    fn block_comment(&mut self) -> Result<(), (usize, usize)> {
        let (sl, sc) = (self.line, self.col(self.i));
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'/' if self.b.get(self.i + 1) == Some(&b'*') => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.b.get(self.i + 1) == Some(&b'/') => {
                    depth -= 1;
                    self.i += 2;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                _ => self.bump(),
            }
        }
        Err((sl, sc))
    }

    /// Consumes the body of a normal (escaping) string; `self.i` sits
    /// on the opening quote.
    fn quoted(&mut self, quote: u8) -> Result<(), (usize, usize)> {
        let (sl, sc) = (self.line, self.col(self.i));
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    self.i += 1;
                    if self.i < self.b.len() {
                        self.bump();
                    }
                }
                b if b == quote => {
                    self.i += 1;
                    return Ok(());
                }
                _ => self.bump(),
            }
        }
        Err((sl, sc))
    }

    /// Consumes a raw string starting at the `#`s or quote after an
    /// `r`/`br`/`cr` prefix.
    fn raw_string(&mut self) -> Result<(), (usize, usize)> {
        let (sl, sc) = (self.line, self.col(self.i));
        let mut hashes = 0usize;
        while self.b.get(self.i) == Some(&b'#') {
            hashes += 1;
            self.i += 1;
        }
        if self.b.get(self.i) != Some(&b'"') {
            return Err((sl, sc));
        }
        self.i += 1;
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let tail = &self.b[self.i + 1..];
                if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                    self.i += 1 + hashes;
                    return Ok(());
                }
            }
            self.bump();
        }
        Err((sl, sc))
    }

    /// Consumes a number literal. Heuristic but safe: consumes
    /// alphanumerics/underscores, a fraction dot only when a digit
    /// follows (so `1..2` and `1.max()` split correctly), and an
    /// exponent sign after `e`/`E` in decimal literals.
    fn number(&mut self) {
        let start = self.i;
        let hexish = self.b[self.i] == b'0'
            && matches!(self.b.get(self.i + 1), Some(b'x' | b'X' | b'b' | b'o'));
        let mut seen_dot = false;
        while self.i < self.b.len() {
            let b = self.b[self.i];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.i += 1;
            } else if b == b'.'
                && !seen_dot
                && self.b.get(self.i + 1).is_some_and(u8::is_ascii_digit)
            {
                seen_dot = true;
                self.i += 1;
            } else if (b == b'+' || b == b'-')
                && !hexish
                && self.i > start
                && matches!(self.b[self.i - 1], b'e' | b'E')
                && self.b.get(self.i + 1).is_some_and(u8::is_ascii_digit)
            {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    /// After a `'`: decides char literal vs lifetime. `self.i` sits on
    /// the quote. Returns the token kind consumed.
    fn char_or_lifetime(&mut self) -> Result<TokKind, (usize, usize)> {
        let (sl, sc) = (self.line, self.col(self.i));
        let next = self.b.get(self.i + 1).copied();
        match next {
            // `'\…'` is always a char literal.
            Some(b'\\') => {
                self.quoted(b'\'').map_err(|_| (sl, sc))?;
                Ok(TokKind::Char)
            }
            Some(c) => {
                // One character (possibly multibyte), then a closing
                // quote → char literal; otherwise a lifetime/label.
                let c_len = self.text[self.i + 1..].chars().next().map_or(1, char::len_utf8);
                if self.b.get(self.i + 1 + c_len) == Some(&b'\'') && c != b'\'' {
                    for _ in 0..(1 + c_len + 1) {
                        self.bump();
                    }
                    Ok(TokKind::Char)
                } else if is_ident_start(c) {
                    self.i += 2;
                    while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                        self.i += 1;
                    }
                    Ok(TokKind::Lifetime)
                } else {
                    // A stray quote (macro fragment); emit it as punct
                    // rather than failing the whole file.
                    self.i += 1;
                    Ok(TokKind::Punct)
                }
            }
            None => Err((sl, sc)),
        }
    }
}

/// Tokenizes `text`. Whitespace is skipped; comments are kept (passes
/// that only want code filter on [`TokKind`]). Fails only on
/// unterminated strings/chars/block comments — valid Rust always
/// lexes.
pub fn lex(text: &str) -> Result<Vec<Token<'_>>, LexError> {
    let mut lx = Lexer { text, b: text.as_bytes(), i: 0, line: 1, line_start: 0 };
    let mut out = Vec::new();
    while lx.i < lx.b.len() {
        let b = lx.b[lx.i];
        if b.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (start, line, col) = (lx.i, lx.line, lx.col(lx.i));
        let kind = match b {
            b'/' if lx.b.get(lx.i + 1) == Some(&b'/') => {
                lx.line_comment();
                TokKind::LineComment
            }
            b'/' if lx.b.get(lx.i + 1) == Some(&b'*') => match lx.block_comment() {
                Ok(()) => TokKind::BlockComment,
                Err((l, c)) => return Err(lx.err(start, l, c, "unterminated block comment")),
            },
            b'"' => match lx.quoted(b'"') {
                Ok(()) => TokKind::Str,
                Err((l, c)) => return Err(lx.err(start, l, c, "unterminated string literal")),
            },
            b'\'' => match lx.char_or_lifetime() {
                Ok(kind) => kind,
                Err((l, c)) => return Err(lx.err(start, l, c, "unterminated char literal")),
            },
            b if b.is_ascii_digit() => {
                lx.number();
                TokKind::Number
            }
            b if is_ident_start(b) => {
                while lx.i < lx.b.len() && is_ident_continue(lx.b[lx.i]) {
                    lx.i += 1;
                }
                let ident = &text[start..lx.i];
                match lx.b.get(lx.i) {
                    // String prefixes: r"…", b"…", br#"…"#, c"…", cr"…".
                    Some(b'"') if matches!(ident, "r" | "b" | "br" | "c" | "cr") => {
                        match lx.quoted_or_raw(ident) {
                            Ok(()) => TokKind::Str,
                            Err((l, c)) => {
                                return Err(lx.err(start, l, c, "unterminated string literal"))
                            }
                        }
                    }
                    Some(b'#') if matches!(ident, "r" | "br" | "cr") => {
                        // `r#"…"#` raw string, or `r#ident` raw identifier.
                        let mut j = lx.i;
                        while lx.b.get(j) == Some(&b'#') {
                            j += 1;
                        }
                        if lx.b.get(j) == Some(&b'"') {
                            match lx.raw_string() {
                                Ok(()) => TokKind::Str,
                                Err((l, c)) => {
                                    return Err(lx.err(start, l, c, "unterminated raw string"))
                                }
                            }
                        } else if ident == "r"
                            && lx.b.get(lx.i + 1).copied().is_some_and(is_ident_start)
                        {
                            lx.i += 1;
                            while lx.i < lx.b.len() && is_ident_continue(lx.b[lx.i]) {
                                lx.i += 1;
                            }
                            TokKind::Ident
                        } else {
                            TokKind::Ident
                        }
                    }
                    // Byte-char literal: b'x'.
                    Some(b'\'') if ident == "b" => match lx.quoted(b'\'') {
                        Ok(()) => TokKind::Char,
                        Err((l, c)) => {
                            return Err(lx.err(start, l, c, "unterminated byte-char literal"))
                        }
                    },
                    _ => TokKind::Ident,
                }
            }
            _ => {
                lx.bump();
                TokKind::Punct
            }
        };
        out.push(Token { kind, text: &text[start..lx.i], line, col, start, end: lx.i });
    }
    Ok(out)
}

impl Lexer<'_> {
    /// Dispatches a prefixed string whose quote `self.i` sits on:
    /// raw prefixes re-use the raw scanner, escaping prefixes the
    /// quoted scanner.
    fn quoted_or_raw(&mut self, prefix: &str) -> Result<(), (usize, usize)> {
        if prefix.contains('r') {
            self.raw_string()
        } else {
            self.quoted(b'"')
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).expect("lexes").into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        assert_eq!(
            kinds("let x = 1_000u64;"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Number, "1_000u64"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn floats_ranges_and_method_calls_split_correctly() {
        assert_eq!(
            kinds("1.5e-3 1..2 1.max(2) 0xFF"),
            vec![
                (TokKind::Number, "1.5e-3"),
                (TokKind::Number, "1"),
                (TokKind::Punct, "."),
                (TokKind::Punct, "."),
                (TokKind::Number, "2"),
                (TokKind::Number, "1"),
                (TokKind::Punct, "."),
                (TokKind::Ident, "max"),
                (TokKind::Punct, "("),
                (TokKind::Number, "2"),
                (TokKind::Punct, ")"),
                (TokKind::Number, "0xFF"),
            ]
        );
    }

    #[test]
    fn strings_hide_comment_markers_and_code() {
        let toks = kinds(r##"let s = "no // comment"; let r = r#"panic!("x")"#;"##);
        let strs: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Str).map(|(_, t)| *t).collect();
        assert_eq!(strs, vec!["\"no // comment\"", "r#\"panic!(\"x\")\"#"]);
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::LineComment));
    }

    #[test]
    fn escaped_quotes_and_byte_strings() {
        let toks = kinds(r#"("a\"b", b"bytes", b'x', '\'')"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("<'a, 'static> 'x' '\\n' 'outer: loop {}")
                .into_iter()
                .filter(|(k, _)| matches!(k, TokKind::Lifetime | TokKind::Char))
                .collect::<Vec<_>>(),
            vec![
                (TokKind::Lifetime, "'a"),
                (TokKind::Lifetime, "'static"),
                (TokKind::Char, "'x'"),
                (TokKind::Char, "'\\n'"),
                (TokKind::Lifetime, "'outer"),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* one /* two */ still one */ b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a"),
                (TokKind::BlockComment, "/* one /* two */ still one */"),
                (TokKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert_eq!(
            kinds("r#type r#fn"),
            vec![(TokKind::Ident, "r#type"), (TokKind::Ident, "r#fn")]
        );
    }

    #[test]
    fn spans_carry_lines_and_columns() {
        let toks = lex("fn f() {\n    x.read()\n}\n").expect("lexes");
        let read = toks.iter().find(|t| t.text == "read").expect("read token");
        assert_eq!(read.line, 2);
        assert_eq!(read.col, 7);
        let brace = toks.iter().find(|t| t.text == "}").expect("close brace");
        assert_eq!(brace.line, 3);
    }

    #[test]
    fn unterminated_constructs_error_with_position() {
        for (src, what) in [("\"abc", "string"), ("/* never closed", "comment"), ("r#\"raw", "raw")]
        {
            let e = lex(src).expect_err("must fail");
            assert_eq!(e.line, 1, "{src}");
            assert!(e.message.contains(what) || !what.is_empty(), "{src}: {e:?}");
        }
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let toks = lex("let s = \"line\nbreak\";\nnext").expect("lexes");
        let next = toks.iter().find(|t| t.text == "next").expect("next");
        assert_eq!(next.line, 3);
    }
}
