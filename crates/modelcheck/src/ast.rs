//! A lightweight per-file AST, parsed by recursive descent over the
//! [`crate::lexer`] token stream.
//!
//! The v3 passes walked raw tokens with ad-hoc state machines (brace
//! depth, guard liveness). v4 parses each file once into a small tree —
//! items, functions, blocks, statements, `let` bindings, calls, and
//! if/match arms, every node carrying token-index spans — and the
//! passes become structural walks: guard liveness is a scope-tree
//! traversal, taint is a per-statement dataflow over `let` bindings.
//!
//! The parser is deliberately *tolerant*: it recognizes the structures
//! the passes need and skips everything else token by token, so any
//! file the lexer accepts parses (pinned by a workspace self-test).
//! The only hard error is a mismatched delimiter, which valid Rust
//! cannot produce; that surfaces as a [`crate::Rule::Parse`]
//! diagnostic, never a panic. Macro *bodies* (`macro_rules!`,
//! item-level invocations) are skipped wholesale: token soup inside a
//! macro is not code the dataflow rules can reason about.
//!
//! Nodes live in arenas indexed by [`BlockId`]/[`ExprId`]; spans are
//! `[start, end)` ranges of indices into the *code-token* slice the
//! tree was parsed from (comments excluded, see
//! [`crate::passes::FileInput::code_tokens`]).

use crate::lexer::{TokKind, Token};

/// Token-index span `[start, end)` into the code-token slice.
pub type Span = (usize, usize);
/// Index into [`Ast::blocks`].
pub type BlockId = usize;
/// Index into [`Ast::exprs`].
pub type ExprId = usize;

/// Keywords that can never be call names.
const NON_CALL_KEYWORDS: [&str; 29] = [
    "if", "while", "for", "match", "loop", "return", "break", "continue", "in", "as", "move",
    "else", "unsafe", "fn", "let", "mut", "ref", "pub", "use", "where", "impl", "dyn", "box",
    "await", "yield", "async", "const", "static", "extern",
];

/// A function definition (free fn, method, trait default, nested fn).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// 1-based source line of the `fn` keyword.
    pub line: usize,
    /// Signature span: `[fn_tok, body-open)` (or to the `;` for
    /// bodyless declarations).
    pub sig: Span,
    /// The body block, when the declaration has one.
    pub body: Option<BlockId>,
}

/// A `{ … }` block: statements between matched braces.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token index of the `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement inside a block.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Tokens the statement covers (terminating `;` excluded).
    pub span: Span,
    /// What kind of statement this is.
    pub kind: StmtKind,
}

/// Statement kinds, at the granularity the passes need.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `let <pat> = <init>;` — `name` is `Some` only for a simple
    /// identifier pattern (what the dataflow layer can track).
    Let {
        /// Binding name for `let x = …` / `let mut x = …`.
        name: Option<String>,
        /// The initializer expression, when present.
        init: Option<ExprId>,
    },
    /// An expression statement (or tail expression).
    Expr(ExprId),
    /// A nested item; nested `fn`s are also recorded in [`Ast::fns`].
    Item,
}

/// An expression region: a token span plus the blocks nested in it.
#[derive(Debug, Clone)]
pub struct Expr {
    /// Tokens the expression covers.
    pub span: Span,
    /// Structure, where the passes care about it.
    pub kind: ExprKind,
    /// Directly nested blocks, in source order (then/else blocks for
    /// `If`, the loop body for `For`/`While`, closure and bare blocks
    /// for `Plain`). Match arm bodies live in [`Arm::body`] instead.
    pub blocks: Vec<BlockId>,
}

/// Expression structure the dataflow passes consume.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// `if c0 { b0 } else if c1 { b1 } else { b2 }`: `conds[i]` guards
    /// `blocks[i]`; a trailing block with no cond is the final `else`.
    If {
        /// Condition spans, aligned with the leading `blocks`.
        conds: Vec<Span>,
    },
    /// `match head { arms }`.
    Match {
        /// The scrutinee span.
        head: Span,
        /// The arms, in source order.
        arms: Vec<Arm>,
    },
    /// `for <pat> in <iter> { … }`.
    For {
        /// The iterator span (after `in`, before the body `{`).
        iter: Span,
    },
    /// `while <cond> { … }` (including `while let`).
    While {
        /// The condition span.
        cond: Span,
    },
    /// Anything else (method chains, literals, struct literals, …).
    Plain,
}

/// One `pat => body` match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// The pattern span (guard included, when present).
    pub pat: Span,
    /// The arm body expression.
    pub body: ExprId,
}

/// A call site: `name(…)`, `.name(…)`, or `name!(…)`.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the callee's final path segment (or macro name).
    pub name_tok: usize,
    /// True for `.name(…)` method syntax.
    pub is_method: bool,
    /// True for `name!…` macro invocations.
    pub is_macro: bool,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the matching closing delimiter.
    pub close: usize,
    /// The argument tokens: `(open + 1, close)`.
    pub args: Span,
}

/// Where and why parsing failed (a mismatched delimiter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

/// The parsed file: arenas of nodes plus a flat, source-ordered call
/// list. Spans index the code-token slice passed to [`parse`].
#[derive(Debug, Default)]
pub struct Ast {
    /// Every function definition, methods and nested fns included.
    pub fns: Vec<FnDef>,
    /// Block arena.
    pub blocks: Vec<Block>,
    /// Expression arena.
    pub exprs: Vec<Expr>,
    /// Every call site, ordered by `name_tok`.
    pub calls: Vec<Call>,
    /// `pairs[open]` is the close index for each open delimiter
    /// (`usize::MAX` elsewhere) — shared so passes can jump groups.
    pub pairs: Vec<usize>,
}

impl Ast {
    /// The calls whose name token falls inside `span`.
    pub fn calls_in(&self, span: Span) -> &[Call] {
        let lo = self.calls.partition_point(|c| c.name_tok < span.0);
        let hi = self.calls.partition_point(|c| c.name_tok < span.1);
        &self.calls[lo..hi]
    }

    /// Every block nested anywhere inside `expr` (match arms followed),
    /// appended to `out` — the scope-tree walk the lock pass runs on.
    pub fn blocks_of_expr(&self, expr: ExprId, out: &mut Vec<BlockId>) {
        let e = &self.exprs[expr];
        out.extend_from_slice(&e.blocks);
        if let ExprKind::Match { arms, .. } = &e.kind {
            for arm in arms {
                self.blocks_of_expr(arm.body, out);
            }
        }
    }
}

/// Parses one file's code tokens into an [`Ast`]. The only failure is
/// a mismatched delimiter.
pub fn parse(toks: &[&Token<'_>]) -> Result<Ast, ParseError> {
    let pairs = match_delims(toks)?;
    let mut p = Parser { toks, pairs, ast: Ast::default() };
    p.parse_items(0, toks.len());
    p.ast.calls = collect_calls(toks, &p.pairs);
    p.ast.pairs = p.pairs;
    Ok(p.ast)
}

/// Builds the open → close map for `(` `[` `{`; errors on mismatch.
fn match_delims(toks: &[&Token<'_>]) -> Result<Vec<usize>, ParseError> {
    let mut pairs = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(usize, &str)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.text {
            "(" | "[" | "{" => stack.push((i, t.text)),
            ")" | "]" | "}" => {
                let want = match t.text {
                    ")" => "(",
                    "]" => "[",
                    _ => "{",
                };
                match stack.pop() {
                    Some((open, kind)) if kind == want => pairs[open] = i,
                    _ => {
                        return Err(ParseError {
                            line: t.line,
                            col: t.col,
                            message: format!("unmatched `{}`", t.text),
                        })
                    }
                }
            }
            _ => {}
        }
    }
    if let Some((open, kind)) = stack.pop() {
        let t = toks[open];
        return Err(ParseError { line: t.line, col: t.col, message: format!("unclosed `{kind}`") });
    }
    Ok(pairs)
}

/// Flat scan for call sites; independent of the tree so calls inside
/// skipped constructs are still visible to the passes.
fn collect_calls(toks: &[&Token<'_>], pairs: &[usize]) -> Vec<Call> {
    let mut calls = Vec::new();
    for k in 0..toks.len() {
        if toks[k].kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&toks[k].text) {
            continue;
        }
        if k > 0 && toks[k - 1].text == "fn" {
            continue; // a definition, not a call
        }
        let mut open = k + 1;
        let is_macro = toks.get(open).is_some_and(|t| t.text == "!");
        if is_macro {
            open += 1;
        }
        let delim_ok = match toks.get(open).map(|t| t.text) {
            Some("(") => true,
            Some("[") | Some("{") => is_macro,
            _ => false,
        };
        if !delim_ok || pairs[open] == usize::MAX {
            continue;
        }
        let close = pairs[open];
        calls.push(Call {
            name_tok: k,
            is_method: k > 0 && toks[k - 1].text == ".",
            is_macro,
            open,
            close,
            args: (open + 1, close),
        });
    }
    calls
}

struct Parser<'t, 'a> {
    toks: &'t [&'t Token<'a>],
    pairs: Vec<usize>,
    ast: Ast,
}

impl Parser<'_, '_> {
    fn txt(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text)
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// The close index matching the open delimiter at `i` (`i` if the
    /// token is not an open delimiter with a recorded pair).
    fn close_of(&self, i: usize) -> usize {
        match self.txt(i) {
            "(" | "[" | "{" if self.pairs[i] != usize::MAX => self.pairs[i],
            _ => i,
        }
    }

    /// True when tokens `i` and `i + 1` touch (multi-char operator).
    fn fused(&self, i: usize) -> bool {
        match (self.toks.get(i), self.toks.get(i + 1)) {
            (Some(a), Some(b)) => a.end == b.start,
            _ => false,
        }
    }

    /// Scans `[from, end)` at group depth 0 for a token matching
    /// `pred`; groups are jumped wholesale.
    fn scan0(&self, from: usize, end: usize, pred: impl Fn(&str) -> bool) -> usize {
        let mut i = from;
        while i < end {
            match self.txt(i) {
                "(" | "[" | "{" => i = self.close_of(i) + 1,
                t if pred(t) => return i,
                _ => i += 1,
            }
        }
        end
    }

    /// The statement-terminating `;` at depth 0, or `end`.
    fn find_semi(&self, from: usize, end: usize) -> usize {
        self.scan0(from, end, |t| t == ";")
    }

    /// The body-opening `{` at depth 0, or `end`.
    fn find_brace(&self, from: usize, end: usize) -> usize {
        let mut i = from;
        while i < end {
            match self.txt(i) {
                "{" => return i,
                "(" | "[" => i = self.close_of(i) + 1,
                _ => i += 1,
            }
        }
        end
    }

    /// Skips `#[…]` / `#![…]` attributes starting at `i`.
    fn skip_attrs(&self, mut i: usize, end: usize) -> usize {
        while i < end && self.txt(i) == "#" {
            let j = if self.txt(i + 1) == "!" { i + 2 } else { i + 1 };
            if self.txt(j) == "[" {
                i = self.close_of(j) + 1;
            } else {
                break;
            }
        }
        i
    }

    /// True when an item begins at `i` (attributes already skipped).
    fn starts_item(&self, i: usize) -> bool {
        match self.txt(i) {
            "fn" => self.is_ident(i + 1),
            "struct" | "enum" | "trait" | "impl" | "mod" | "use" | "static" | "macro_rules"
            | "type" => true,
            "union" => self.is_ident(i + 1) && self.txt(i + 2) == "{",
            "const" => self.is_ident(i + 1) && self.txt(i + 2) == ":" || self.txt(i + 1) == "_",
            "extern" => {
                self.toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Str)
                    || self.txt(i + 1) == "crate"
            }
            "pub" => true,
            "unsafe" | "async" | "default" => self.starts_item(i + 1),
            _ => false,
        }
    }

    fn parse_items(&mut self, mut i: usize, end: usize) {
        while i < end {
            i = self.parse_item(i, end);
        }
    }

    /// Parses (or tolerantly skips) one item at `i`; always advances.
    fn parse_item(&mut self, i: usize, end: usize) -> usize {
        let mut j = self.skip_attrs(i, end);
        // Visibility and fn qualifiers.
        loop {
            match self.txt(j) {
                "pub" => {
                    j += 1;
                    if self.txt(j) == "(" {
                        j = self.close_of(j) + 1;
                    }
                }
                "unsafe" | "async" | "default" => j += 1,
                "const" if matches!(self.txt(j + 1), "fn" | "unsafe" | "async" | "extern") => {
                    j += 1
                }
                "extern"
                    if self.toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Str)
                        && self.txt(j + 2) == "fn" =>
                {
                    j += 2
                }
                _ => break,
            }
        }
        match self.txt(j) {
            "fn" if self.is_ident(j + 1) => self.parse_fn(j, end),
            "mod" => {
                // `scan0` would descend *past* a `{` instead of
                // returning it, so walk for the body brace (or the
                // `mod foo;` semicolon) by hand.
                let mut brace = j + 1;
                while brace < end && !matches!(self.txt(brace), "{" | ";") {
                    brace += 1;
                }
                if self.txt(brace) == "{" {
                    let close = self.close_of(brace);
                    self.parse_items(brace + 1, close);
                    close + 1
                } else {
                    brace + 1
                }
            }
            "impl" | "trait" => {
                let brace = self.find_brace(j + 1, end);
                if brace < end {
                    let close = self.close_of(brace);
                    self.parse_items(brace + 1, close);
                    close + 1
                } else {
                    end
                }
            }
            "extern"
                if self.toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Str)
                    && self.txt(j + 2) == "{" =>
            {
                let close = self.close_of(j + 2);
                self.parse_items(j + 3, close);
                close + 1
            }
            "struct" | "enum" | "union" => {
                let stop = self.scan0(j + 1, end, |t| t == ";");
                // A brace body ends the item without a `;` (`struct S { … }`).
                let brace = self.find_brace(j + 1, stop.min(end));
                if brace < stop.min(end) {
                    self.close_of(brace) + 1
                } else {
                    stop + 1
                }
            }
            "macro_rules" => {
                // macro_rules ! name { … }
                let mut k = j + 1;
                while k < end && !matches!(self.txt(k), "(" | "[" | "{") {
                    k += 1;
                }
                self.close_of(k) + 1
            }
            "use" | "type" | "static" | "const" | "extern" => self.find_semi(j, end) + 1,
            name if self.is_ident(j) && self.txt(j + 1) == "!" => {
                // Item-level macro invocation: `name! { … }` / `name!(…);`
                let _ = name;
                let mut k = j + 2;
                if self.is_ident(k) {
                    k += 1; // `macro_rules!`-style `name! ident { … }`
                }
                if matches!(self.txt(k), "(" | "[" | "{") {
                    let after = self.close_of(k) + 1;
                    if self.txt(after) == ";" {
                        after + 1
                    } else {
                        after
                    }
                } else {
                    j + 2
                }
            }
            _ => i.max(j).max(i + 1).min(end.max(i + 1)), // tolerant skip
        }
    }

    /// Parses `fn name …` at `j`; records the [`FnDef`].
    fn parse_fn(&mut self, j: usize, end: usize) -> usize {
        let name = self.txt(j + 1).to_string();
        let tok = self.toks[j];
        let mut k = j + 2;
        let mut open = None;
        while k < end {
            match self.txt(k) {
                "(" | "[" => k = self.close_of(k) + 1,
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
        }
        let (body, after) = match open {
            Some(o) => {
                let b = self.parse_block(o);
                (Some(b), self.close_of(o) + 1)
            }
            None => (None, k + 1),
        };
        self.ast.fns.push(FnDef {
            name,
            fn_tok: j,
            line: tok.line,
            sig: (j, open.unwrap_or(k)),
            body,
        });
        after
    }

    /// Parses the block opening at `open`; returns its arena id.
    fn parse_block(&mut self, open: usize) -> BlockId {
        let close = self.close_of(open);
        let mut stmts = Vec::new();
        let mut i = open + 1;
        while i < close {
            if self.txt(i) == ";" {
                i += 1;
                continue;
            }
            let start = i;
            let mut d = self.skip_attrs(i, close);
            if d >= close {
                break;
            }
            // A loop label (`'outer: for …`) prefixes the construct.
            if self.toks.get(d).is_some_and(|t| t.kind == TokKind::Lifetime)
                && self.txt(d + 1) == ":"
            {
                d += 2;
            }
            if self.txt(d) == "let" {
                let (stmt, next) = self.parse_let(start, d, close);
                stmts.push(stmt);
                i = next;
            } else if self.starts_item(d) {
                let next = self.parse_item(d, close);
                stmts.push(Stmt { span: (start, next), kind: StmtKind::Item });
                i = next;
            } else {
                let stmt_end = self.stmt_end_from(d, close);
                let e = self.parse_expr(d, stmt_end);
                stmts.push(Stmt { span: (start, stmt_end), kind: StmtKind::Expr(e) });
                i = stmt_end.max(d + 1);
            }
        }
        self.ast.blocks.push(Block { open, close, stmts });
        self.ast.blocks.len() - 1
    }

    /// Where the statement beginning at `d` ends. Block-ended
    /// constructs in statement position (`if`/`match`/`for`/`while`/
    /// `loop`/`unsafe`/bare blocks) terminate at their final `}` with
    /// no `;`, so splitting on semicolons alone would swallow the next
    /// statement into their span.
    fn stmt_end_from(&self, d: usize, close: usize) -> usize {
        match self.txt(d) {
            "if" | "match" => {
                let mut i = d;
                loop {
                    let brace = self.find_brace(i + 1, close);
                    if brace >= close {
                        return self.find_semi(d, close);
                    }
                    i = self.close_of(brace) + 1;
                    if self.txt(d) == "if" && self.txt(i) == "else" {
                        if self.txt(i + 1) == "if" {
                            i += 1;
                            continue;
                        }
                        if self.txt(i + 1) == "{" {
                            return self.close_of(i + 1) + 1;
                        }
                    }
                    return i;
                }
            }
            "for" | "while" | "loop" => {
                let brace = self.find_brace(d + 1, close);
                if brace >= close {
                    self.find_semi(d, close)
                } else {
                    self.close_of(brace) + 1
                }
            }
            "unsafe" if self.txt(d + 1) == "{" => self.close_of(d + 1) + 1,
            "{" => self.close_of(d) + 1,
            _ => self.find_semi(d, close),
        }
    }

    /// Parses `let …;` starting at `let_idx` (`start` includes any
    /// attributes). Returns the statement and the index after its `;`.
    fn parse_let(&mut self, start: usize, let_idx: usize, block_close: usize) -> (Stmt, usize) {
        let stmt_end = self.find_semi(let_idx, block_close);
        let mut n = let_idx + 1;
        while self.txt(n) == "mut" {
            n += 1;
        }
        let name = if self.is_ident(n) && matches!(self.txt(n + 1), "=" | ":" | ";") {
            Some(self.txt(n).to_string())
        } else {
            None
        };
        // The initializer `=`: first stand-alone `=` at depth 0 (not
        // part of `==`, `=>`, `<=`, `>=`, `!=`, or a compound assign).
        let mut eq = None;
        let mut k = let_idx + 1;
        while k < stmt_end {
            match self.txt(k) {
                "(" | "[" | "{" => k = self.close_of(k) + 1,
                "=" => {
                    let fused_next = self.fused(k) && matches!(self.txt(k + 1), "=" | ">");
                    let fused_prev = k > 0
                        && self.fused(k - 1)
                        && matches!(
                            self.txt(k - 1),
                            "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                        );
                    if !fused_next && !fused_prev {
                        eq = Some(k);
                        break;
                    }
                    k += 1;
                }
                _ => k += 1,
            }
        }
        let init = eq.map(|e| self.parse_expr(e + 1, stmt_end));
        (Stmt { span: (start, stmt_end), kind: StmtKind::Let { name, init } }, stmt_end + 1)
    }

    /// Parses one expression region `[start, end)`.
    fn parse_expr(&mut self, start: usize, end: usize) -> ExprId {
        if start >= end {
            return self.push_expr(Expr {
                span: (start, end),
                kind: ExprKind::Plain,
                blocks: vec![],
            });
        }
        match self.txt(start) {
            "if" => self.parse_if(start, end),
            "match" => self.parse_match(start, end),
            "for" => {
                let in_kw = self.scan0(start + 1, end, |t| t == "in");
                let brace = self.find_brace(in_kw + 1, end);
                let mut blocks = Vec::new();
                let after = if brace < end {
                    blocks.push(self.parse_block(brace));
                    self.close_of(brace) + 1
                } else {
                    end
                };
                self.plain_tail(after, end, &mut blocks);
                self.push_expr(Expr {
                    span: (start, end),
                    kind: ExprKind::For { iter: (in_kw + 1, brace) },
                    blocks,
                })
            }
            "while" => {
                let brace = self.find_brace(start + 1, end);
                let mut blocks = Vec::new();
                let after = if brace < end {
                    blocks.push(self.parse_block(brace));
                    self.close_of(brace) + 1
                } else {
                    end
                };
                self.plain_tail(after, end, &mut blocks);
                self.push_expr(Expr {
                    span: (start, end),
                    kind: ExprKind::While { cond: (start + 1, brace) },
                    blocks,
                })
            }
            _ => {
                let mut blocks = Vec::new();
                self.plain_tail(start, end, &mut blocks);
                self.push_expr(Expr { span: (start, end), kind: ExprKind::Plain, blocks })
            }
        }
    }

    /// Collects every block in `[i, end)`, parsing each; parens and
    /// brackets are transparent so closure bodies are captured.
    fn plain_tail(&mut self, mut i: usize, end: usize, blocks: &mut Vec<BlockId>) {
        while i < end {
            if self.txt(i) == "{" {
                let close = self.close_of(i);
                blocks.push(self.parse_block(i));
                i = close + 1;
            } else {
                i += 1;
            }
        }
    }

    fn parse_if(&mut self, start: usize, end: usize) -> ExprId {
        let mut conds = Vec::new();
        let mut blocks = Vec::new();
        let mut i = start;
        loop {
            // At an `if`.
            let cond_start = i + 1;
            let brace = self.find_brace(cond_start, end);
            if brace >= end {
                break;
            }
            conds.push((cond_start, brace));
            blocks.push(self.parse_block(brace));
            i = self.close_of(brace) + 1;
            if i < end && self.txt(i) == "else" {
                if self.txt(i + 1) == "if" {
                    i += 1;
                    continue;
                }
                if self.txt(i + 1) == "{" {
                    blocks.push(self.parse_block(i + 1));
                    i = self.close_of(i + 1) + 1;
                }
            }
            break;
        }
        let mut tail_blocks = Vec::new();
        self.plain_tail(i, end, &mut tail_blocks);
        blocks.extend(tail_blocks);
        self.push_expr(Expr { span: (start, end), kind: ExprKind::If { conds }, blocks })
    }

    fn parse_match(&mut self, start: usize, end: usize) -> ExprId {
        let brace = self.find_brace(start + 1, end);
        if brace >= end {
            let mut blocks = Vec::new();
            self.plain_tail(start, end, &mut blocks);
            return self.push_expr(Expr { span: (start, end), kind: ExprKind::Plain, blocks });
        }
        let head = (start + 1, brace);
        let body_close = self.close_of(brace);
        let mut arms = Vec::new();
        let mut i = brace + 1;
        while i < body_close {
            if self.txt(i) == "," {
                i += 1;
                continue;
            }
            let pat_start = i;
            // The arm's `=>` at depth 0.
            let mut arrow = None;
            let mut j = i;
            while j < body_close {
                match self.txt(j) {
                    "(" | "[" | "{" => j = self.close_of(j) + 1,
                    "=" if self.fused(j) && self.txt(j + 1) == ">" => {
                        arrow = Some(j);
                        break;
                    }
                    _ => j += 1,
                }
            }
            let Some(arrow) = arrow else { break };
            let body_start = arrow + 2;
            let arm_end = if self.txt(body_start) == "{" {
                self.close_of(body_start) + 1
            } else {
                self.scan0(body_start, body_close, |t| t == ",")
            };
            let body = self.parse_expr(body_start, arm_end);
            arms.push(Arm { pat: (pat_start, arrow), body });
            i = arm_end;
        }
        let after = body_close + 1;
        let mut blocks = Vec::new();
        self.plain_tail(after, end, &mut blocks);
        self.push_expr(Expr { span: (start, end), kind: ExprKind::Match { head, arms }, blocks })
    }

    fn push_expr(&mut self, e: Expr) -> ExprId {
        self.ast.exprs.push(e);
        self.ast.exprs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> (Vec<crate::lexer::Token<'_>>, Ast) {
        let toks = lex(src).expect("lexes");
        let refs: Vec<&Token<'_>> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let ast = parse(&refs).expect("parses");
        (toks, ast)
    }

    #[test]
    fn fns_and_bodies_are_found() {
        let (_, ast) = parsed(
            "fn a() { let x = 1; }\n\
             impl S { fn b(&self) -> usize { self.0 } }\n\
             trait T { fn c(&self); }\n",
        );
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(ast.fns[0].body.is_some());
        assert!(ast.fns[1].body.is_some());
        assert!(ast.fns[2].body.is_none());
    }

    #[test]
    fn items_after_an_inline_module_are_still_found() {
        // A `mod x { … }` mid-file must not swallow what follows it —
        // the regression hid every fn after a tests module.
        let (_, ast) = parsed(
            "mod early { fn inner() { let x = 1; } }\n\
             fn after(&self) { let y = 2; }\n\
             mod decl;\n\
             fn last() {}\n",
        );
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["inner", "after", "last"]);
    }

    #[test]
    fn let_bindings_carry_names_and_inits() {
        let (_, ast) = parsed("fn f() { let mut n = g(); let (a, b) = h(); let t: u32 = 3; }\n");
        let body = ast.fns[0].body.unwrap();
        let kinds: Vec<Option<&str>> = ast.blocks[body]
            .stmts
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Let { name, .. } => name.as_deref(),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![Some("n"), None, Some("t")]);
    }

    #[test]
    fn if_chains_have_aligned_conds() {
        let (_, ast) =
            parsed("fn f() { if a > 1 { x(); } else if b < 2 { y(); } else { z(); } }\n");
        let body = ast.fns[0].body.unwrap();
        let StmtKind::Expr(e) = &ast.blocks[body].stmts[0].kind else { panic!() };
        let ExprKind::If { conds } = &ast.exprs[*e].kind else { panic!("{:?}", ast.exprs[*e]) };
        assert_eq!(conds.len(), 2);
        assert_eq!(ast.exprs[*e].blocks.len(), 3);
    }

    #[test]
    fn match_arms_split_on_fat_arrows() {
        let (_, ast) = parsed(
            "fn f(x: u8) -> u8 { match x { 0 => 1, n if n > 4 => { big(n) } _ => other(x), } }\n",
        );
        let body = ast.fns[0].body.unwrap();
        let StmtKind::Expr(e) = &ast.blocks[body].stmts[0].kind else { panic!() };
        let ExprKind::Match { arms, .. } = &ast.exprs[*e].kind else { panic!() };
        assert_eq!(arms.len(), 3);
    }

    #[test]
    fn calls_record_method_and_macro_forms() {
        let (_, ast) = parsed("fn f() { a.b(1); Vec::with_capacity(n); vec![0; n]; g(); }\n");
        let shapes: Vec<(bool, bool)> =
            ast.calls.iter().map(|c| (c.is_method, c.is_macro)).collect();
        assert_eq!(shapes, vec![(true, false), (false, false), (false, true), (false, false)]);
    }

    #[test]
    fn closure_bodies_inside_args_become_blocks() {
        let (_, ast) = parsed("fn f() { xs.iter().map(|x| { x + 1 }).sum::<u32>(); }\n");
        let body = ast.fns[0].body.unwrap();
        let StmtKind::Expr(e) = &ast.blocks[body].stmts[0].kind else { panic!() };
        assert_eq!(ast.exprs[*e].blocks.len(), 1);
    }

    #[test]
    fn mismatched_delimiter_is_an_error_not_a_panic() {
        let toks = lex("fn f( { }\n").expect("lexes");
        let refs: Vec<&Token<'_>> = toks.iter().collect();
        assert!(parse(&refs).is_err());
    }

    #[test]
    fn macro_items_and_extern_blocks_are_tolerated() {
        let (_, ast) = parsed(
            "macro_rules! m { ($x:expr) => { $x }; }\n\
             thread_local! { static T: u32 = 0; }\n\
             extern \"C\" { fn read(fd: i32) -> isize; }\n\
             fn after() {}\n",
        );
        assert!(ast.fns.iter().any(|f| f.name == "after"));
        assert!(ast.fns.iter().any(|f| f.name == "read" && f.body.is_none()));
    }
}
