//! Repo-specific static analysis for the contention-model workspace.
//!
//! `modelcheck` is a standalone, no-network lint pass that token-scans
//! every workspace `.rs` file (`vendor/` excluded) and enforces rules the
//! compiler cannot express but the model's correctness depends on.
//!
//! **Crates opt in via a root pragma.** Instead of a hard-coded crate
//! list, each crate declares the rules it holds itself to with a doc
//! line in its crate root (`src/lib.rs`, or `src/main.rs` for pure
//! binaries):
//!
//! ```text
//! //! modelcheck: no-panic, lossy-cast, missing-docs
//! ```
//!
//! [`scan_workspace`] discovers every `Cargo.toml` under the root
//! (skipping `vendor/`, `target/`, `.git/`, `fixtures/`), reads the
//! crate root's pragma, and applies the named rules to that crate's
//! `src/` tree. A crate with no pragma gets only the global rule. A
//! pragma naming an unknown rule is itself a diagnostic (`pragma`), so
//! typos fail the build instead of silently disabling a rule.
//!
//! | rule | scope | what it rejects |
//! |------|-------|-----------------|
//! | `no-panic` | pragma'd `src/` | `.unwrap()`, `.expect(`, `panic!` — model code must carry invariants, not abort paths (`assert!`/`unreachable!` are fine) |
//! | `naked-f64` | pragma'd `src/` except `units.rs` | `f64`/`f32` in a `pub fn` signature — public model APIs speak [`Seconds`]-style newtypes, not bare floats |
//! | `lossy-cast` | pragma'd `src/` | `as f64` / `as f32` and visibly-float → integer `as` casts — use the checked `f64_from_u64` funnel |
//! | `no-todo-dbg` | everywhere scanned | `todo!` / `dbg!` — placeholders and debug prints must not ship |
//! | `missing-docs` | pragma'd `src/` | a public item with no `///` doc comment |
//! | `pragma` | crate roots | a `modelcheck:` pragma naming an unknown rule |
//!
//! A diagnostic on line *n* is suppressed by `// modelcheck-allow: <rule>`
//! on line *n* or line *n−1*; the comment is expected to say *why* the
//! exception is sound. Code under `#[cfg(test)]` is exempt from every
//! rule except `no-todo-dbg`.
//!
//! The pass is a *token scanner*, not a parser: it strips `//` comments,
//! tracks `#[cfg(test)]` blocks by brace counting, and accumulates
//! multi-line `pub fn` signatures until the opening `{` or a `;`. That
//! keeps it dependency-free and fast (the whole workspace scans in
//! milliseconds) at the cost of not seeing through macros — acceptable
//! for a repo-local style gate backed by human-reviewed allows.
//!
//! [`Seconds`]: ../contention_model/units/struct.Seconds.html

#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The rules enforced by the pass. Names are what crate-root pragmas and
/// `modelcheck-allow` comments reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` in pragma'd crate sources.
    NoPanic,
    /// Bare `f64`/`f32` in a `pub fn` signature of a pragma'd crate.
    NakedF64,
    /// Lossy `as` casts between integer and float types.
    LossyCast,
    /// `todo!` / `dbg!` anywhere.
    NoTodoDbg,
    /// Undocumented public item in a pragma'd crate.
    MissingDocs,
    /// A crate-root `modelcheck:` pragma naming an unknown rule.
    Pragma,
}

impl Rule {
    /// The rule's name as written in pragmas and `modelcheck-allow`
    /// comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NakedF64 => "naked-f64",
            Rule::LossyCast => "lossy-cast",
            Rule::NoTodoDbg => "no-todo-dbg",
            Rule::MissingDocs => "missing-docs",
            Rule::Pragma => "pragma",
        }
    }
}

/// One finding: a rule violated at a `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.message)
    }
}

impl Diagnostic {
    /// The finding as one JSON object (hand-rolled: the pass must work
    /// with no dependencies at all).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            self.rule.name(),
            escape_json(&self.message)
        )
    }
}

/// Renders a full diagnostic list as a JSON array.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Which rules apply to a given file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// `no-panic` applies.
    pub no_panic: bool,
    /// `naked-f64` applies.
    pub naked_f64: bool,
    /// `lossy-cast` applies.
    pub lossy_cast: bool,
    /// `missing-docs` applies.
    pub missing_docs: bool,
}

impl FileScope {
    /// No opt-in rules (only the global `no-todo-dbg` fires).
    pub const NONE: FileScope =
        FileScope { no_panic: false, naked_f64: false, lossy_cast: false, missing_docs: false };

    /// Every opt-in rule enabled.
    pub const ALL: FileScope =
        FileScope { no_panic: true, naked_f64: true, lossy_cast: true, missing_docs: true };

    /// Builds a scope from pragma rule names; unknown names are returned
    /// for the caller to report. `no-todo-dbg` is accepted but redundant
    /// (it is global).
    pub fn from_rule_names<'a>(
        names: impl IntoIterator<Item = &'a str>,
    ) -> (FileScope, Vec<String>) {
        let mut scope = FileScope::NONE;
        let mut unknown = Vec::new();
        for name in names {
            match name {
                "no-panic" => scope.no_panic = true,
                "naked-f64" => scope.naked_f64 = true,
                "lossy-cast" => scope.lossy_cast = true,
                "missing-docs" => scope.missing_docs = true,
                "no-todo-dbg" => {}
                other => unknown.push(other.to_string()),
            }
        }
        (scope, unknown)
    }

    /// Per-file adjustment of a crate-level scope: the units module is
    /// the one place bare floats are the API, so `naked-f64` is exempt
    /// there.
    pub fn for_file(self, rel: &str) -> FileScope {
        if rel.ends_with("/units.rs") || rel == "units.rs" {
            FileScope { naked_f64: false, ..self }
        } else {
            self
        }
    }
}

/// Extracts a crate root's `modelcheck:` pragma: the first inner-doc
/// line of the form `//! modelcheck: rule, rule, …`. Returns the
/// 0-based line index and the listed names.
pub fn parse_pragma(text: &str) -> Option<(usize, Vec<String>)> {
    for (i, line) in text.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("//!") else { continue };
        let Some(list) = rest.trim_start().strip_prefix("modelcheck:") else { continue };
        let names =
            list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        return Some((i, names));
    }
    None
}

/// True when `needle` occurs in `hay` with non-identifier characters (or
/// the string boundary) on both sides — so `f64` does not match inside
/// `f64_from_u64`.
fn contains_token(hay: &str, needle: &str) -> bool {
    find_token(hay, needle).is_some()
}

fn find_token(hay: &str, needle: &str) -> Option<usize> {
    token_positions(hay, needle).first().copied()
}

/// Every token-boundary occurrence of `needle` in `hay`.
fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let ok_before = start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = end >= bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            found.push(start);
        }
        from = start + 1;
    }
    found
}

/// The code part of a line: everything before the first `//` (which also
/// drops doc comments, so prose mentioning `panic!` is never flagged).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Per-line allow annotations: `allows[i]` is the rule name granted on
/// line `i` (0-based), if any.
fn collect_allows(lines: &[&str]) -> Vec<Option<String>> {
    lines
        .iter()
        .map(|line| {
            let marker = "modelcheck-allow:";
            let at = line.find(marker)?;
            let rest = line[at + marker.len()..].trim_start();
            let name: String =
                rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
            if name.is_empty() {
                None
            } else {
                Some(name)
            }
        })
        .collect()
}

/// True when line `i` (0-based) carries an allow for `rule`, either on
/// the line itself or on the line above.
fn allowed(allows: &[Option<String>], i: usize, rule: Rule) -> bool {
    let hit = |j: usize| allows[j].as_deref() == Some(rule.name());
    hit(i) || (i > 0 && hit(i - 1))
}

/// Marks every line inside a `#[cfg(test)]`-gated item by brace counting
/// from the attribute to the close of the block it opens.
fn cfg_test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for c in code_part(lines[j]).chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// A `pub fn` signature accumulated from its first line to the opening
/// `{` or terminating `;` (whichever comes first).
fn signature_text(lines: &[&str], start: usize) -> String {
    let mut sig = String::new();
    for line in lines.iter().skip(start) {
        let code = code_part(line);
        if let Some(stop) = code.find(['{', ';']) {
            sig.push_str(&code[..stop]);
            break;
        }
        sig.push_str(code);
        sig.push(' ');
    }
    sig
}

const PUB_ITEM_KEYWORDS: [&str; 9] =
    ["fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union"];

/// The item keyword of a public item declaration, if the trimmed code
/// line starts one (`pub fn`, `pub struct`, … — but not `pub use` or
/// `pub(crate)`, which `missing_docs` also skips).
fn pub_item_keyword(trimmed: &str) -> Option<&'static str> {
    let rest = trimmed.strip_prefix("pub ")?;
    let rest = rest.trim_start();
    // `pub async fn`, `pub unsafe fn`, `pub const fn` and stacks thereof.
    let rest = ["async ", "unsafe ", "const ", "extern \"C\" "]
        .iter()
        .fold(rest, |r, q| r.strip_prefix(q).unwrap_or(r).trim_start());
    PUB_ITEM_KEYWORDS
        .iter()
        .find(|kw| rest.strip_prefix(*kw).is_some_and(|after| after.starts_with([' ', '<', '('])))
        .copied()
}

/// True when the item declared on line `i` has a doc comment (or
/// `#[doc…]` attribute) directly above it, attributes skipped.
fn has_doc_above(lines: &[&str], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim_start();
        if t.starts_with("#[doc") || t.starts_with("///") || t.starts_with("//!") {
            return true;
        }
        if t.starts_with("#[") || t.starts_with("#!") || t.starts_with("//") {
            continue; // attributes and plain comments are trivia to rustdoc
        }
        return false;
    }
    false
}

/// Heuristic: the expression token just before an ` as ` cast is visibly
/// floating-point (a literal like `1.5`, or a `.floor()`-family call).
fn float_evidence_before(code: &str, as_pos: usize) -> bool {
    let before = code[..as_pos].trim_end();
    for suffix in [".floor()", ".ceil()", ".round()", ".trunc()"] {
        if before.ends_with(suffix) {
            return true;
        }
    }
    let token_start = before
        .rfind(|c: char| c.is_whitespace() || c == '(' || c == ',' || c == '=')
        .map_or(0, |p| p + 1);
    let token = &before[token_start..];
    // A float literal: a '.' immediately followed by a digit.
    token.as_bytes().windows(2).any(|w| w[0] == b'.' && w[1].is_ascii_digit())
}

const INT_CAST_TARGETS: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Scans one file's text under an explicit rule scope; `rel` is the
/// workspace-relative path used in diagnostics. ([`scan_workspace`]
/// derives the scope from the owning crate's root pragma.)
pub fn scan_file(rel: &str, text: &str, scope: FileScope) -> Vec<Diagnostic> {
    let scope = scope.for_file(rel);
    let lines: Vec<&str> = text.lines().collect();
    let allows = collect_allows(&lines);
    let test_mask = cfg_test_mask(&lines);
    let mut diags = Vec::new();
    let mut push = |line: usize, rule: Rule, message: String| {
        diags.push(Diagnostic { file: rel.to_string(), line: line + 1, rule, message });
    };

    // The scanner must not trip over its own rule patterns when scanning
    // this very file, hence the split literals.
    let todo_pat = concat!("to", "do!");
    let dbg_pat = concat!("d", "bg!");

    for (i, raw) in lines.iter().enumerate() {
        let code = code_part(raw);
        if code.trim().is_empty() {
            continue;
        }

        // no-todo-dbg: everywhere, including tests.
        if !allowed(&allows, i, Rule::NoTodoDbg) {
            for pat in [todo_pat, dbg_pat] {
                if contains_token(code, pat) {
                    push(i, Rule::NoTodoDbg, format!("`{pat}` must not ship"));
                }
            }
        }

        if test_mask[i] {
            continue;
        }

        if scope.no_panic && !allowed(&allows, i, Rule::NoPanic) {
            if code.contains(".unwrap()") {
                push(
                    i,
                    Rule::NoPanic,
                    "`.unwrap()` in model code — return a Result or `.expect` with an \
                     invariant message under an allow"
                        .to_string(),
                );
            }
            if code.contains(".expect(") {
                push(
                    i,
                    Rule::NoPanic,
                    "`.expect(` in model code — needs a `modelcheck-allow: no-panic` \
                     stating the invariant"
                        .to_string(),
                );
            }
            if contains_token(code, "panic!") {
                push(
                    i,
                    Rule::NoPanic,
                    "`panic!` in model code — encode the invariant as an `assert!` or \
                     return an error"
                        .to_string(),
                );
            }
        }

        if scope.naked_f64
            && pub_item_keyword(code.trim_start()) == Some("fn")
            && !allowed(&allows, i, Rule::NakedF64)
        {
            let sig = signature_text(&lines, i);
            for ty in ["f64", "f32"] {
                if contains_token(&sig, ty) {
                    push(
                        i,
                        Rule::NakedF64,
                        format!(
                            "bare `{ty}` in a public signature — use the `units` \
                             newtypes (Seconds, Prob, Slowdown, …)"
                        ),
                    );
                }
            }
        }

        if scope.lossy_cast && !allowed(&allows, i, Rule::LossyCast) {
            let target_is = |after: &str, ty: &str| {
                after.starts_with(ty)
                    && !after[ty.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
            };
            for pos in token_positions(code, "as") {
                let after = code[pos + 2..].trim_start();
                if let Some(ty) = ["f64", "f32"].iter().find(|ty| target_is(after, ty)) {
                    push(
                        i,
                        Rule::LossyCast,
                        format!(
                            "`as {ty}` cast — route through `units::f64_from_u64` \
                             (exact below 2⁵³) or add an allow with the bound"
                        ),
                    );
                } else if INT_CAST_TARGETS.iter().any(|ty| target_is(after, ty))
                    && float_evidence_before(code, pos)
                {
                    push(
                        i,
                        Rule::LossyCast,
                        "float → integer `as` cast truncates — justify with an allow".to_string(),
                    );
                }
            }
        }

        // An out-of-line `pub mod name;` carries its docs as the `//!`
        // header of the module file itself, which rustc accepts — so only
        // inline modules are checked at the declaration site.
        let out_of_line_mod = |kw| kw == "mod" && code.trim_end().ends_with(';');
        if scope.missing_docs
            && pub_item_keyword(code.trim_start()).is_some_and(|kw| !out_of_line_mod(kw))
            && !allowed(&allows, i, Rule::MissingDocs)
            && !has_doc_above(&lines, i)
        {
            push(i, Rule::MissingDocs, "public item without a doc comment".to_string());
        }
    }
    diags
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

fn walk_by<F: FnMut(&Path)>(dir: &Path, visit: &mut F) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                walk_by(&path, visit);
            }
        } else {
            visit(&path);
        }
    }
}

/// A discovered crate: its directory and the rules its root opted into.
#[derive(Debug, Clone)]
pub struct CrateScope {
    /// Crate directory, workspace-relative with `/` separators (empty
    /// for a package rooted at the workspace root).
    pub dir: String,
    /// Rules enabled by the crate root's pragma.
    pub scope: FileScope,
}

fn rel_of(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Discovers every crate under `root` (any directory with a
/// `Cargo.toml`, skip-dirs excluded) and reads its root pragma from
/// `src/lib.rs` (or `src/main.rs`). Returns the per-crate scopes plus
/// diagnostics for pragmas naming unknown rules.
pub fn discover_crates(root: &Path) -> (Vec<CrateScope>, Vec<Diagnostic>) {
    let mut manifest_dirs = Vec::new();
    walk_by(root, &mut |path| {
        if path.file_name().is_some_and(|n| n == "Cargo.toml") {
            if let Some(dir) = path.parent() {
                manifest_dirs.push(dir.to_path_buf());
            }
        }
    });
    let mut crates = Vec::new();
    let mut diags = Vec::new();
    for dir in manifest_dirs {
        let Some((crate_root, text)) = ["lib.rs", "main.rs"]
            .iter()
            .map(|f| dir.join("src").join(f))
            .find_map(|p| fs::read_to_string(&p).ok().map(|t| (p, t)))
        else {
            continue;
        };
        let Some((line, names)) = parse_pragma(&text) else {
            crates.push(CrateScope { dir: rel_of(&dir, root), scope: FileScope::NONE });
            continue;
        };
        let (scope, unknown) = FileScope::from_rule_names(names.iter().map(String::as_str));
        for name in unknown {
            diags.push(Diagnostic {
                file: rel_of(&crate_root, root),
                line: line + 1,
                rule: Rule::Pragma,
                message: format!("unknown rule {name:?} in modelcheck pragma"),
            });
        }
        crates.push(CrateScope { dir: rel_of(&dir, root), scope });
    }
    (crates, diags)
}

/// Scans every `.rs` file under `root` (skipping `vendor/`, `target/`,
/// `.git/`, and `fixtures/`), scoping each file by its owning crate's
/// root pragma, and returns all diagnostics ordered by path and line.
pub fn scan_workspace(root: &Path) -> Vec<Diagnostic> {
    let (crates, mut diags) = discover_crates(root);
    let mut files = Vec::new();
    walk_by(root, &mut |path| {
        if path.extension().is_some_and(|e| e == "rs") {
            files.push(path.to_path_buf());
        }
    });
    for path in files {
        let rel = rel_of(&path, root);
        // The owning crate is the one whose src/ tree contains the file;
        // the longest directory prefix wins for nested layouts.
        let scope = crates
            .iter()
            .filter(|c| {
                if c.dir.is_empty() {
                    rel.starts_with("src/")
                } else {
                    rel.starts_with(&format!("{}/src/", c.dir))
                }
            })
            .max_by_key(|c| c.dir.len())
            .map_or(FileScope::NONE, |c| c.scope);
        let Ok(text) = fs::read_to_string(&path) else { continue };
        diags.extend(scan_file(&rel, &text, scope));
    }
    diags.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_scan(body: &str) -> Vec<Diagnostic> {
        scan_file("crates/core/src/sample.rs", body, FileScope::ALL)
    }

    #[test]
    fn unwrap_flagged_under_scope_only() {
        let body = "fn f() { x.unwrap(); }\n";
        assert_eq!(core_scan(body).len(), 1);
        assert_eq!(core_scan(body)[0].rule, Rule::NoPanic);
        assert!(scan_file("crates/experiments/src/sample.rs", body, FileScope::NONE).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(core_scan("fn f() { x.unwrap_or(0.0); }\n").is_empty());
    }

    #[test]
    fn pragma_parses_rule_lists() {
        let text = "//! Crate docs.\n//!\n//! modelcheck: no-panic, lossy-cast\npub fn x() {}\n";
        let (line, names) = parse_pragma(text).unwrap();
        assert_eq!(line, 2);
        assert_eq!(names, vec!["no-panic".to_string(), "lossy-cast".to_string()]);
        assert_eq!(parse_pragma("//! Just docs.\n"), None);

        let (scope, unknown) = FileScope::from_rule_names(names.iter().map(String::as_str));
        assert!(scope.no_panic && scope.lossy_cast);
        assert!(!scope.naked_f64 && !scope.missing_docs);
        assert!(unknown.is_empty());
        let (_, unknown) = FileScope::from_rule_names(["no-panick"]);
        assert_eq!(unknown, vec!["no-panick".to_string()]);
    }

    #[test]
    fn allow_on_same_or_previous_line_suppresses() {
        let same = "fn f() { x.unwrap(); } // modelcheck-allow: no-panic — invariant\n";
        assert!(core_scan(same).is_empty());
        let above = "// modelcheck-allow: no-panic — invariant\nfn f() { x.unwrap(); }\n";
        assert!(core_scan(above).is_empty());
        let wrong_rule = "// modelcheck-allow: lossy-cast\nfn f() { x.unwrap(); }\n";
        assert_eq!(core_scan(wrong_rule).len(), 1);
    }

    #[test]
    fn cfg_test_blocks_are_exempt_from_panics() {
        let body = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(core_scan(body).is_empty());
    }

    #[test]
    fn naked_f64_spans_multiline_signatures() {
        let body = "pub fn f(\n    a: Seconds,\n    b: f64,\n) -> Words {\n    todo\n}\n";
        let d = core_scan(body);
        assert_eq!(d.len(), 2, "{d:?}"); // naked-f64 + missing-docs
        assert!(d.iter().any(|d| d.rule == Rule::NakedF64 && d.line == 1));
    }

    #[test]
    fn units_module_is_exempt_from_naked_f64() {
        let body = "/// Doc.\npub fn get(&self) -> f64 { self.0 }\n";
        assert!(scan_file("crates/core/src/units.rs", body, FileScope::ALL).is_empty());
    }

    #[test]
    fn f64_token_does_not_match_inside_identifiers() {
        let body = "/// Doc.\npub fn f(n: u64) -> Words { f64_from_u64(n); Words::new(n) }\n";
        assert!(core_scan(body).is_empty());
    }

    #[test]
    fn lossy_casts_need_an_allow() {
        assert_eq!(core_scan("fn f(n: u64) { let x = n as f64; }\n").len(), 1);
        assert!(core_scan(
            "fn f(n: u64) { let x = n as f64; } // modelcheck-allow: lossy-cast — bounded\n"
        )
        .is_empty());
        // Visible float → int truncation.
        assert_eq!(core_scan("fn f(x: f64) { let n = x.floor() as u64; }\n").len(), 1);
        assert_eq!(core_scan("fn f() { let n = 1.5 as u64; }\n").len(), 1);
        // Int → int is not modelcheck's business.
        assert!(core_scan("fn f(n: u64) { let x = n as usize; }\n").is_empty());
    }

    #[test]
    fn todo_and_dbg_flagged_even_in_tests_and_unscoped_files() {
        let pat = concat!("to", "do!()");
        let body = format!("#[cfg(test)]\nmod tests {{\n    fn f() {{ {pat}; }}\n}}\n");
        let d = scan_file("crates/experiments/src/sample.rs", &body, FileScope::NONE);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::NoTodoDbg);
    }

    #[test]
    fn missing_docs_sees_through_attributes() {
        let documented = "/// Doc.\n#[derive(Debug)]\npub struct S;\n";
        assert!(core_scan(documented).is_empty());
        let bare = "#[derive(Debug)]\npub struct S;\n";
        assert_eq!(core_scan(bare).len(), 1);
        assert_eq!(core_scan(bare)[0].rule, Rule::MissingDocs);
        // `pub use` re-exports and restricted visibility are skipped.
        assert!(core_scan("pub use crate::units::Seconds;\n").is_empty());
        assert!(core_scan("pub(crate) fn helper() {}\n").is_empty());
    }

    #[test]
    fn prose_in_comments_is_never_flagged() {
        let body = "/// Calling `.unwrap()` here would be wrong; `panic!` too.\n\
                    pub fn f() {}\n";
        assert!(core_scan(body).is_empty());
    }

    #[test]
    fn json_output_escapes_quotes() {
        let d = Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: Rule::NoPanic,
            message: "say \"no\"".into(),
        };
        assert_eq!(
            d.to_json(),
            "{\"file\":\"a.rs\",\"line\":3,\"rule\":\"no-panic\",\"message\":\"say \\\"no\\\"\"}"
        );
        assert_eq!(to_json(&[]), "[]");
    }
}
